//! Sharded-kernel property tests: the region-sharded executor against
//! the single-queue executor.
//!
//! The sharded kernel's contract is *bit identity*: for any workload and
//! any device-fault schedule whose outages recover before detection (so
//! orphans restart in place and the online placer stays out of play), the
//! sharded run's `SimOutcome` — task records, request finishes, fault
//! counters, and every f64 metric — equals the single-queue run's
//! exactly, for every shard count, windowed or not, parallel or serial.
//! Under full chaos (including link failures and re-placements) the
//! sharded run must still terminate, conserve tasks, and be
//! deterministic.
//!
//! The case count defaults low so PR builds stay fast; scheduled CI sets
//! `CONTINUUM_SHARD_CASES` to push the same properties much harder.

use continuum_core::prelude::*;
use continuum_net::{continuum_regions, RegionPartition};
use continuum_runtime::{simulate_stream_sharded, FaultSpec, ShardOpts};
use proptest::prelude::*;

fn shard_cases() -> u32 {
    std::env::var("CONTINUUM_SHARD_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn world() -> (Continuum, ContinuumSpec) {
    let spec = ContinuumSpec {
        fogs: 4,
        edges_per_fog: 2,
        sensors_per_edge: 2,
        clouds: 2,
        hpcs: 1,
        ..ContinuumSpec::default()
    };
    let scenario = Scenario {
        name: "shard-world",
        spec: spec.clone(),
    };
    (Continuum::build(&scenario), spec)
}

/// A request confined to the nodes of the given regions: external inputs
/// born at `source`, tasks round-robined over the regions' devices.
fn confined_request(
    world: &Continuum,
    regions: &[Vec<NodeId>],
    which: &[usize],
    source: NodeId,
    seed: u64,
    tasks: usize,
    arrival: SimTime,
) -> StreamRequest {
    let mut rng = Rng::new(seed);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks,
            source,
            // Heavy enough that generated crashes land mid-execution.
            work_mu: (1e11f64).ln(),
            ..LayeredSpec::default()
        },
    );
    let env = world.env();
    let devs: Vec<DeviceId> = which
        .iter()
        .flat_map(|&r| &regions[r])
        .flat_map(|&n| env.fleet.at_node(n).iter().copied())
        .collect();
    let assignment = (0..dag.len()).map(|i| devs[i % devs.len()]).collect();
    StreamRequest {
        dag,
        placement: Placement { assignment },
        arrival,
    }
}

/// A mixed workload over the fog subtrees: one request per fog, each
/// confined to its region, plus `spanning` requests that straddle two
/// fogs and the backbone.
fn workload(
    world: &Continuum,
    spec: &ContinuumSpec,
    seed: u64,
    spanning: usize,
) -> Vec<StreamRequest> {
    let regions = continuum_regions(spec);
    let mut rng = Rng::new(seed ^ 0x5eed);
    let mut reqs = Vec::new();
    for f in 1..regions.len() {
        let source = *regions[f].last().expect("fog region has a sensor");
        let tasks = 6 + (rng.next_u64() % 10) as usize;
        reqs.push(confined_request(
            world,
            &regions,
            &[f],
            source,
            rng.next_u64(),
            tasks,
            SimTime::from_millis(rng.next_u64() % 500),
        ));
    }
    for _ in 0..spanning {
        let a = 1 + (rng.next_u64() as usize) % (regions.len() - 1);
        let mut b = 1 + (rng.next_u64() as usize) % (regions.len() - 1);
        if b == a {
            b = 1 + a % (regions.len() - 1);
        }
        let source = *regions[a].last().expect("fog region has a sensor");
        let tasks = 6 + (rng.next_u64() % 10) as usize;
        reqs.push(confined_request(
            world,
            &regions,
            &[a, b, 0],
            source,
            rng.next_u64(),
            tasks,
            SimTime::from_millis(rng.next_u64() % 500),
        ));
    }
    reqs
}

/// Device-crash schedule whose outages all end before the detection
/// sweep, so orphans restart in place and no re-placement happens — the
/// regime where sharded execution is exact even though faults are flying.
fn restart_in_place_plane(world: &Continuum, seed: u64, crashes: usize) -> FaultPlane {
    let n_dev = world.env().fleet.len() as u64;
    let mut rng = Rng::new(seed ^ 0xfau64);
    let mut schedule = FaultSchedule::new();
    for _ in 0..crashes {
        let dev = (rng.next_u64() % n_dev) as u32;
        let at = SimTime::from_millis(rng.next_u64() % 60_000);
        let downtime = SimDuration::from_millis(1_000 + rng.next_u64() % 19_000);
        schedule.crash_and_recover(FaultKind::DeviceCrash, dev, at, downtime);
    }
    FaultPlane {
        schedule,
        // Longer than every outage above: sweeps always arrive stale.
        detection: SimDuration::from_secs(30),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: shard_cases(), ..ProptestConfig::default() })]

    /// The tentpole identity: for random workloads (confined + spanning
    /// requests), random restart-in-place crash schedules, and every
    /// sharding configuration, the sharded outcome is bit-identical to
    /// the single-queue executor — records, counters, and f64 metrics.
    #[test]
    fn sharded_matches_single_queue(
        seed in any::<u64>(),
        spanning in 0usize..3,
        crashes in 0usize..4,
        max_shards in 1usize..6,
        windowed in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let (world, spec) = world();
        let requests = workload(&world, &spec, seed, spanning);
        let plane = restart_in_place_plane(&world, seed, crashes);
        let partition =
            RegionPartition::new(world.topology(), continuum_regions(&spec), 0);
        let single =
            simulate_stream_chaos(world.env(), &requests, None, Some(&plane));
        let opts = ShardOpts { max_shards, windowed, parallel, ..ShardOpts::default() };
        let sharded = simulate_stream_sharded(
            world.env(), &requests, None, Some(&plane), &partition, &opts,
        );
        prop_assert_eq!(&sharded, &single);
        // Spell out the f64 fields so a future loosening of SimOutcome's
        // PartialEq cannot silently weaken this property.
        prop_assert!(sharded.metrics.makespan_s.to_bits() == single.metrics.makespan_s.to_bits());
        prop_assert!(sharded.metrics.energy_j.to_bits() == single.metrics.energy_j.to_bits());
        prop_assert!(sharded.metrics.cost_usd.to_bits() == single.metrics.cost_usd.to_bits());
        prop_assert!(
            sharded.trace.lost_work_s.to_bits() == single.trace.lost_work_s.to_bits()
        );
    }

    /// Task-retry faults (`FaultSpec`) layered on top: draws are
    /// counter-based, so verdicts — and the whole outcome — stay
    /// identical under sharding.
    #[test]
    fn sharded_matches_single_queue_with_retries(
        seed in any::<u64>(),
        fail_prob in 0.0f64..0.4,
        max_shards in 1usize..6,
    ) {
        let (world, spec) = world();
        let requests = workload(&world, &spec, seed, 1);
        let fs = FaultSpec {
            fail_prob,
            max_attempts: 20,
            retry_delay: SimDuration::from_millis(250),
            seed: seed ^ 0xdead,
        };
        let partition =
            RegionPartition::new(world.topology(), continuum_regions(&spec), 0);
        let single = simulate_stream_chaos(world.env(), &requests, Some(&fs), None);
        let sharded = simulate_stream_sharded(
            world.env(), &requests, Some(&fs), None, &partition,
            &ShardOpts { max_shards, ..ShardOpts::default() },
        );
        prop_assert_eq!(&sharded, &single);
    }

    /// Pinned-mode identity: for random spanning-heavy workloads — the
    /// regime where request confinement collapses to one shard — task
    /// pinning with envelope-carried boundary transfers yields an
    /// outcome bit-identical across 1, 2, 4, and 8 shards, serial or
    /// parallel, with and without counter-based task retries.
    #[test]
    fn pinned_matches_one_shard_for_every_shard_count(
        seed in any::<u64>(),
        fail_prob in 0.0f64..0.3,
        n_requests in 3usize..8,
    ) {
        let (world, spec) = world();
        let regions = continuum_regions(&spec);
        let mut rng = Rng::new(seed ^ 0x9e37_79b9);
        let mut requests = Vec::new();
        // Every request straddles two fogs plus the backbone.
        for _ in 0..n_requests {
            let a = 1 + (rng.next_u64() as usize) % (regions.len() - 1);
            let mut b = 1 + (rng.next_u64() as usize) % (regions.len() - 1);
            if b == a {
                b = 1 + a % (regions.len() - 1);
            }
            let source = *regions[a].last().expect("fog region has a sensor");
            let tasks = 6 + (rng.next_u64() % 8) as usize;
            requests.push(confined_request(
                &world,
                &regions,
                &[a, b, 0],
                source,
                rng.next_u64(),
                tasks,
                SimTime::from_millis(rng.next_u64() % 300),
            ));
        }
        let fs = FaultSpec {
            fail_prob,
            max_attempts: 20,
            retry_delay: SimDuration::from_millis(100),
            seed: seed ^ 0xbeef,
        };
        let faults = (fail_prob > 0.0).then_some(&fs);
        let partition = RegionPartition::new(world.topology(), regions.clone(), 0);
        let reference = simulate_stream_sharded(
            world.env(), &requests, faults, None, &partition, &ShardOpts::pinned(1),
        );
        for n in [2usize, 4, 8] {
            for parallel in [false, true] {
                let opts = ShardOpts { parallel, ..ShardOpts::pinned(n) };
                let got = simulate_stream_sharded(
                    world.env(), &requests, faults, None, &partition, &opts,
                );
                prop_assert_eq!(&got, &reference, "n={} parallel={}", n, parallel);
            }
        }
    }

    /// Under full chaos — device *and* link churn with short detection,
    /// so re-placements and detours do happen — the sharded run must
    /// still terminate and conserve work: every task succeeds exactly
    /// once, one extra record per killed attempt, dependencies respected.
    #[test]
    fn sharded_chaos_conserves_tasks(
        seed in any::<u64>(),
        mttf_s in 5.0f64..30.0,
        max_shards in 1usize..6,
    ) {
        let (world, spec) = world();
        let requests = workload(&world, &spec, seed, 2);
        let n_dev = world.env().fleet.len() as u32;
        let n_links = world.topology().links().len() as u32;
        let schedule = FaultSchedule::generate(
            &FaultScheduleSpec {
                horizon: SimDuration::from_secs(120),
                devices: FaultProcess { population: n_dev, mttf_s, mttr_s: 2.0 },
                links: FaultProcess { population: n_links, mttf_s: mttf_s * 2.0, mttr_s: 2.0 },
                endpoints: FaultProcess::OFF,
            },
            seed,
        );
        let plane = FaultPlane { schedule, detection: SimDuration::from_millis(500) };
        let partition =
            RegionPartition::new(world.topology(), continuum_regions(&spec), 0);
        let opts = ShardOpts { max_shards, ..ShardOpts::default() };
        let out = simulate_stream_sharded(
            world.env(), &requests, None, Some(&plane), &partition, &opts,
        );
        let total_tasks: usize = requests.iter().map(|r| r.dag.len()).sum();
        prop_assert_eq!(
            out.trace.records.len() as u64,
            total_tasks as u64 + out.trace.killed_attempts
        );
        let dags: Vec<&Dag> = {
            // Records carry global request ids; index dags the same way.
            requests.iter().map(|r| &r.dag).collect()
        };
        prop_assert!(out.trace.respects_dependencies(&dags));
        // Determinism: an identical second run reproduces the outcome.
        let again = simulate_stream_sharded(
            world.env(), &requests, None, Some(&plane), &partition, &opts,
        );
        prop_assert_eq!(&again, &out);
    }
}
