//! Property-based tests over the full placement + execution stack.

use continuum_core::prelude::*;
use continuum_placement::evaluate;
use continuum_sim::Rng;
use proptest::prelude::*;

fn small_world() -> Continuum {
    Continuum::build(&Scenario::default_continuum())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random layered DAG is valid, and HEFT schedules it with every
    /// dependency respected, in estimate and in simulation.
    #[test]
    fn random_dags_schedule_validly(seed in any::<u64>(), n in 5usize..60, width in 1usize..10) {
        let world = small_world();
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: n, width, ..Default::default() });
        prop_assert!(dag.validate().is_ok());
        let placement = world.place(&dag, &HeftPlacer::default());
        let (sched, metrics) = evaluate(world.env(), &dag, &placement);
        prop_assert!(sched.respects_dependencies(&dag));
        prop_assert!(metrics.makespan_s > 0.0);
        let report = world.run(&dag, &HeftPlacer::default());
        prop_assert!(report.trace.respects_dependencies(&[&dag]));
        prop_assert_eq!(report.trace.records.len(), dag.len());
    }

    /// Simulated makespan tracks the contention-free estimate from above
    /// (contention can only add time) — up to two small, legitimate
    /// sources of simulated *advantage*: the simulator's FIFO dispatch may
    /// order same-device tasks better than the estimator's rank-order
    /// insertion replay, and ECMP spreads concurrent flows over equal-cost
    /// paths the canonical-path estimator doesn't know about. Empirically
    /// these stay within a few percent; 10% is the alarm threshold.
    #[test]
    fn simulation_tracks_estimate_from_above(seed in any::<u64>()) {
        let world = small_world();
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 30, ..Default::default() });
        let placement = world.place(&dag, &DataAwarePlacer);
        let (_, est) = evaluate(world.env(), &dag, &placement);
        let report = world.run(&dag, &DataAwarePlacer);
        prop_assert!(
            report.simulated.makespan_s >= est.makespan_s * 0.90,
            "sim {} suspiciously below est {}", report.simulated.makespan_s, est.makespan_s
        );
    }

    /// Every task of a pipeline with a pinned capture stays feasible: the
    /// capture never leaves its sensor under any policy in the line-up.
    #[test]
    fn pinning_is_inviolable(policy_idx in 0usize..8, input_kb in 1u64..4096) {
        let world = small_world();
        let dag = analytics_pipeline(&PipelineSpec {
            source: world.sensors()[0],
            input_bytes: input_kb << 10,
            ..Default::default()
        });
        let lineup = continuum_placement::standard_lineup();
        let placer = &lineup[policy_idx % lineup.len()];
        let placement = world.place(&dag, placer.as_ref());
        let dev = placement.device(TaskId(0));
        prop_assert_eq!(world.env().node_of(dev), world.sensors()[0]);
    }

    /// Metrics are internally consistent: non-negative, and bytes_moved is
    /// zero iff no transfers were recorded.
    #[test]
    fn metrics_consistency(seed in any::<u64>()) {
        let world = small_world();
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 20, ..Default::default() });
        let report = world.run(&dag, &GreedyEftPlacer::default());
        let m = &report.simulated;
        prop_assert!(m.makespan_s >= 0.0 && m.energy_j >= 0.0 && m.cost_usd >= 0.0);
        prop_assert_eq!(m.bytes_moved == 0, report.trace.transfers == 0);
        prop_assert_eq!(m.bytes_moved, report.trace.bytes_moved);
    }
}
