//! Cross-crate integration tests: the full stack from scenario to
//! simulated execution.

use continuum_core::prelude::*;
use continuum_placement::standard_lineup;

/// Every policy in the standard line-up produces a schedule the contended
/// simulator can execute, with dependencies respected, on every scenario.
#[test]
fn standard_lineup_runs_on_every_scenario() {
    for scenario in [
        Scenario::default_continuum(),
        Scenario::smart_city(),
        Scenario::science_campus(),
    ] {
        let world = Continuum::build(&scenario);
        let dag = analytics_pipeline(&PipelineSpec {
            source: world.sensors()[0],
            ..Default::default()
        });
        for placer in standard_lineup() {
            let report = world.run(&dag, placer.as_ref());
            assert!(
                report.trace.respects_dependencies(&[&dag]),
                "{} on {}",
                placer.name(),
                scenario.name
            );
            assert!(report.simulated.makespan_s > 0.0);
            assert!(report.simulated.energy_j > 0.0);
        }
    }
}

/// The simulated (contended) makespan never beats the contention-free
/// estimate by more than rounding noise.
#[test]
fn contention_only_hurts() {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(3);
    for seed in 0..5u64 {
        let dag = layered_random(
            &mut rng.split(seed),
            &LayeredSpec {
                tasks: 60,
                ..Default::default()
            },
        );
        let report = world.run(&dag, &HeftPlacer::default());
        assert!(
            report.contention_factor() > 0.90,
            "seed {seed}: factor {}",
            report.contention_factor()
        );
    }
}

/// The scheduler ordering the experiments rely on: continuum-aware HEFT is
/// never beaten by the naive baselines on random layered DAGs (simulated,
/// not just estimated).
#[test]
fn heft_dominates_naive_baselines_simulated() {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut master = Rng::new(17);
    let mut heft_wins_vs_random = 0;
    let mut heft_wins_vs_rr = 0;
    const TRIALS: usize = 5;
    for s in 0..TRIALS {
        let dag = layered_random(
            &mut master.split(s as u64),
            &LayeredSpec {
                tasks: 100,
                ..Default::default()
            },
        );
        let heft = world.run(&dag, &HeftPlacer::default()).simulated.makespan_s;
        let rand = world
            .run(&dag, &RandomPlacer::new(s as u64))
            .simulated
            .makespan_s;
        let rr = world.run(&dag, &RoundRobinPlacer).simulated.makespan_s;
        if heft <= rand {
            heft_wins_vs_random += 1;
        }
        if heft <= rr {
            heft_wins_vs_rr += 1;
        }
    }
    assert_eq!(heft_wins_vs_random, TRIALS);
    assert_eq!(heft_wins_vs_rr, TRIALS);
}

/// F1's crossover precondition: on tiny inputs edge-only beats cloud-only;
/// on huge inputs cloud-only beats edge-only; HEFT at least matches the
/// better of the two at both extremes.
#[test]
fn edge_cloud_crossover_exists() {
    let world = Continuum::build(&Scenario::default_continuum());
    let run = |bytes: u64, placer: &dyn Placer| {
        let dag = analytics_pipeline(&PipelineSpec {
            source: world.sensors()[0],
            input_bytes: bytes,
            ..Default::default()
        });
        world.run(&dag, placer).simulated.makespan_s
    };
    // The analytic crossover for the default parameters sits near ~40 KB
    // (where the cloud's extra WAN latency equals the edge's extra compute
    // time); bracket it from both sides.
    let small = 8 << 10;
    let large = 256 << 20;
    let edge_small = run(small, &TierPlacer::edge_only());
    let cloud_small = run(small, &TierPlacer::cloud_only());
    let edge_large = run(large, &TierPlacer::edge_only());
    let cloud_large = run(large, &TierPlacer::cloud_only());
    assert!(
        edge_small < cloud_small,
        "edge {edge_small} !< cloud {cloud_small} at small input"
    );
    assert!(
        cloud_large < edge_large,
        "cloud {cloud_large} !< edge {edge_large} at large input"
    );
    let heft_small = run(small, &HeftPlacer::default());
    let heft_large = run(large, &HeftPlacer::default());
    assert!(heft_small <= edge_small * 1.01);
    assert!(heft_large <= cloud_large * 1.01);
}

/// Full-stack determinism: identical seeds produce identical simulated
/// metrics across independent reconstructions of everything.
#[test]
fn full_stack_deterministic() {
    let run = || {
        let world = Continuum::build(&Scenario::smart_city());
        let mut rng = Rng::new(123);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 80,
                ..Default::default()
            },
        );
        let report = world.run(&dag, &HeftPlacer::default());
        (
            report.placement,
            report.simulated.makespan_s,
            report.simulated.energy_j,
            report.simulated.bytes_moved,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Streaming through the facade: the online continuum policy's simulated
/// mean latency is no worse than both tier-locked baselines on a moderate
/// stream.
#[test]
fn online_continuum_tracks_best_tier() {
    let world = Continuum::build(&Scenario::default_continuum());
    let mk_stream = || {
        let mut rng = Rng::new(7);
        inference_stream(
            &mut rng,
            &StreamSpec {
                sensors: world.sensors().to_vec(),
                requests: 60,
                rate_hz: 5.0,
                ..Default::default()
            },
        )
    };
    let mean_latency = |mut placer: OnlinePlacer| {
        let stream = mk_stream();
        let placed: Vec<_> = stream
            .requests
            .into_iter()
            .map(|(arrival, dag)| {
                let (p, _) = placer.place_request(world.env(), &dag, arrival);
                (arrival, dag, p)
            })
            .collect();
        let trace = world.run_stream(placed);
        let l = trace.latencies_s();
        l.iter().sum::<f64>() / l.len() as f64
    };
    let continuum = mean_latency(OnlinePlacer::continuum(world.env()));
    let edge = mean_latency(OnlinePlacer::edge_only(world.env()));
    let cloud = mean_latency(OnlinePlacer::cloud_only(world.env()));
    assert!(
        continuum <= edge.min(cloud) * 1.25,
        "continuum {continuum} vs edge {edge} / cloud {cloud}"
    );
}
