//! Metrics-merge property tests.
//!
//! Shard cores, federation sites, and the health plane all build private
//! [`MetricsSnapshot`]s and fold them together at the end of a run. The
//! final numbers must not depend on *how* those snapshots were grouped
//! or ordered on the way in, or sharded runs would report different
//! telemetry than single-queue runs for the same execution. Three
//! algebraic properties pin that down:
//!
//! 1. **Associativity** — `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` over counters,
//!    labeled counters, histograms, *and* gauges (last-write-wins is
//!    associative: the rightmost writer survives either way).
//! 2. **Commutativity** — `a ⊕ b == b ⊕ a` over counters, labeled
//!    counters, and histograms. Gauges are deliberately excluded: they
//!    are last-write-wins by contract, so order matters and callers are
//!    required to merge in a deterministic order.
//! 3. **Homomorphism** — applying two op streams back-to-back on one
//!    snapshot equals applying them to separate snapshots and merging.
//!
//! Observed durations are capped well below `u64::MAX` so `sum_ns`'s
//! saturating add never engages — saturation is the one regime where
//! histogram merge is legitimately non-associative.

use continuum_obs::MetricsSnapshot;
use proptest::prelude::*;

fn metrics_cases() -> u32 {
    std::env::var("CONTINUUM_METRICS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// One mutation against a snapshot, mirroring the four recording APIs.
#[derive(Debug, Clone)]
enum Op {
    Count {
        name: &'static str,
        by: u64,
    },
    Labeled {
        name: &'static str,
        label: u32,
        by: u64,
    },
    Observe {
        name: &'static str,
        ns: u64,
    },
    Gauge {
        name: &'static str,
        value: f64,
    },
}

/// A small shared name pool so independently generated op streams
/// collide on keys — merges over disjoint key sets would prove nothing.
const NAMES: [&str; 4] = ["req.latency", "xfer.bytes", "queue.depth", "slo.burn"];

fn name() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(&NAMES[..])
}

fn op(with_gauges: bool) -> impl Strategy<Value = Op> {
    let base = prop_oneof![
        (name(), 0u64..1 << 32).prop_map(|(name, by)| Op::Count { name, by }),
        (name(), 0u32..4, 0u64..1 << 32).prop_map(|(name, label, by)| Op::Labeled {
            name,
            label,
            by
        }),
        // Bounded so a few hundred merged observations stay far from
        // `sum_ns` saturation.
        (name(), 0u64..1 << 40).prop_map(|(name, ns)| Op::Observe { name, ns }),
    ];
    if with_gauges {
        prop_oneof![
            base,
            (name(), -1e12f64..1e12).prop_map(|(name, value)| Op::Gauge { name, value }),
        ]
        .boxed()
    } else {
        base.boxed()
    }
}

fn ops(with_gauges: bool) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(with_gauges), 0..24)
}

fn apply_onto(snap: &mut MetricsSnapshot, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Count { name, by } => snap.record(name, by),
            Op::Labeled { name, label, by } => snap.inc_labeled(name, label, by),
            Op::Observe { name, ns } => snap.observe_ns(name, ns),
            Op::Gauge { name, value } => snap.set_gauge(name, value),
        }
    }
}

fn build(ops: &[Op]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    apply_onto(&mut snap, ops);
    snap
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: metrics_cases(), ..ProptestConfig::default() })]

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`, gauges included.
    #[test]
    fn merge_is_associative(a in ops(true), b in ops(true), c in ops(true)) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// `a ⊕ b == b ⊕ a` over counters, labeled counters, and histograms.
    /// Gauge-free by construction — gauges are last-write-wins.
    #[test]
    fn merge_is_commutative_without_gauges(a in ops(false), b in ops(false)) {
        let (a, b) = (build(&a), build(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Recording two op streams into one snapshot equals recording them
    /// into separate snapshots and merging — the property that lets
    /// shards record locally and fold at the barrier.
    #[test]
    fn merge_is_a_homomorphism(a in ops(true), b in ops(true)) {
        let mut sequential = build(&a);
        apply_onto(&mut sequential, &b);
        prop_assert_eq!(sequential, merged(&build(&a), &build(&b)));
    }
}
