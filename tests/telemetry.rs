//! Telemetry-plane integration tests.
//!
//! Two guarantees hold the observability layer honest:
//!
//! 1. **Telemetry never changes the run.** Executing under an ambient
//!    [`Telemetry`] — metrics and tracing both on — must produce a
//!    [`SimOutcome`] bit-identical (every trace record, every f64) to the
//!    same run with telemetry off. The plane observes; it never steers.
//! 2. **The Perfetto export is well-formed.** The exported JSON must
//!    parse, keep non-metadata events in non-decreasing timestamp order,
//!    and balance every `B` with an `E` on the same `(pid, tid)` track —
//!    the invariants ui.perfetto.dev needs to load the file at all.

use continuum_core::prelude::*;
use continuum_fabric::{
    endpoints_on, run_federation, sites_from_partition, FederationCfg, FunctionRegistry,
    Invocation, RoutingPolicy,
};
use continuum_net::{continuum_regions, RegionPartition};
use continuum_obs::{with_ambient, Telemetry};
use continuum_runtime::{
    simulate_open_loop_sharded, simulate_stream_pinned, OpenLoopOpts, OpenLoopReport, ShardOpts,
    StreamRequest,
};
use proptest::prelude::*;
use std::rc::Rc;

fn field<'v>(ev: &'v serde::Value, key: &str) -> Option<&'v serde::Value> {
    let serde::Value::Object(pairs) = ev else {
        panic!("event is not an object");
    };
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str(v: &serde::Value) -> &str {
    match v {
        serde::Value::Str(s) => s,
        _ => panic!("expected string"),
    }
}

fn as_f64(v: &serde::Value) -> f64 {
    match v {
        serde::Value::F64(x) => *x,
        serde::Value::U64(x) => *x as f64,
        serde::Value::I64(x) => *x as f64,
        _ => panic!("expected number"),
    }
}

/// Parse an exported trace string and return its `traceEvents` array.
fn trace_events(exported: &str) -> Vec<serde::Value> {
    let root = serde_json::parse(exported).expect("export is valid JSON");
    let serde::Value::Object(top) = root else {
        panic!("export root is not an object");
    };
    let events = top
        .into_iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let serde::Value::Array(events) = events else {
        panic!("traceEvents is not an array");
    };
    events
}

fn world() -> Continuum {
    Continuum::build(&Scenario::default_continuum())
}

fn requests(world: &Continuum, seed: u64, tasks: usize) -> Vec<StreamRequest> {
    let mut rng = Rng::new(seed);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks,
            work_mu: (1e11f64).ln(),
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());
    vec![StreamRequest {
        arrival: SimTime::ZERO,
        dag,
        placement,
    }]
}

fn churn_plane(world: &Continuum, seed: u64) -> FaultPlane {
    let n_dev = world.env().fleet.len() as u32;
    let n_links = world.env().topology.links().len() as u32;
    let schedule = FaultSchedule::generate(
        &FaultScheduleSpec {
            horizon: SimDuration::from_secs(40),
            devices: FaultProcess {
                population: n_dev,
                mttf_s: 6.0,
                mttr_s: 2.0,
            },
            links: FaultProcess {
                population: n_links,
                mttf_s: 10.0,
                mttr_s: 2.0,
            },
            ..Default::default()
        },
        seed ^ 0x0B5,
    );
    FaultPlane {
        schedule,
        detection: SimDuration::from_millis(250),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Running under full telemetry (metrics + tracing) yields an outcome
    /// bit-identical to running with telemetry off, under arbitrary
    /// chaos. `SimOutcome`'s `PartialEq` intentionally ignores the
    /// attached snapshot, so this compares exactly what the executor
    /// decided — makespan, every record, every counter in the trace.
    #[test]
    fn telemetry_on_is_bit_identical_to_off(seed in any::<u64>(), tasks in 10usize..40) {
        let world = world();
        let reqs = requests(&world, seed, tasks);
        let plane = churn_plane(&world, seed);

        let off = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));
        let tele = Rc::new(Telemetry::new(true));
        let on = with_ambient(&tele, || {
            simulate_stream_chaos(world.env(), &reqs, None, Some(&plane))
        });

        prop_assert_eq!(&off, &on, "telemetry changed the execution");
        // And the full traces agree field by field, not just the summary.
        prop_assert_eq!(&off.trace.records, &on.trace.records);
        prop_assert_eq!(off.trace.replacements, on.trace.replacements);
        prop_assert_eq!(off.trace.lost_work_s, on.trace.lost_work_s);
        // Off-run carries no snapshot; on-run always does.
        prop_assert!(off.telemetry.is_none());
        let snap = on.telemetry.as_ref().expect("ambient telemetry produces a snapshot");
        prop_assert_eq!(snap.counter("executor.runs"), 1);
        prop_assert_eq!(
            snap.counter("executor.replacements"),
            on.trace.replacements
        );
        prop_assert!(snap.gauge("route_cache.hit_rate").is_some());
    }
}

/// Golden test for the Perfetto/Chrome `trace_events` export: valid
/// JSON, the required top-level shape, non-decreasing timestamps after
/// the metadata block, and balanced `B`/`E` pairs per track.
#[test]
fn perfetto_export_is_well_formed() {
    let world = world();
    let reqs = requests(&world, 0x7E1E, 30);
    let plane = churn_plane(&world, 0x7E1E);
    let tele = Rc::new(Telemetry::new(true));
    let out = with_ambient(&tele, || {
        simulate_stream_chaos(world.env(), &reqs, None, Some(&plane))
    });

    let exported = tele.tracer.export_string();
    let events = trace_events(&exported);
    assert!(!events.is_empty(), "trace exported no events");
    assert_export_invariants(&events);

    // The chaos run actually put the interesting things on the timeline:
    // one span pair per request plus task slices.
    assert_eq!(out.trace.request_finish.len(), reqs.len());
    let ph_of = |e: &serde::Value| as_str(field(e, "ph").expect("ph")).to_string();
    let n_b = events.iter().filter(|e| ph_of(e) == "B").count();
    assert_eq!(n_b, reqs.len(), "one B span per request");
    let n_x = events.iter().filter(|e| ph_of(e) == "X").count();
    assert_eq!(n_x, out.trace.records.len(), "one X slice per task record");
}

/// The structural invariants ui.perfetto.dev needs: metadata first, then
/// non-decreasing timestamps; every `B` closed by an `E` on the same
/// `(pid, tid)` track; only known phases.
fn assert_export_invariants(events: &[serde::Value]) {
    let mut seen_non_meta = false;
    let mut last_ts = f64::MIN;
    let mut open: std::collections::HashMap<(u64, u64), i64> = std::collections::HashMap::new();
    for ev in events {
        let ph = as_str(field(ev, "ph").expect("ph"));
        if ph == "M" {
            assert!(!seen_non_meta, "metadata event after timed events");
            continue;
        }
        seen_non_meta = true;
        let ts = as_f64(field(ev, "ts").expect("ts"));
        assert!(ts >= last_ts, "timestamps regressed: {ts} after {last_ts}");
        last_ts = ts;
        let track = (
            as_f64(field(ev, "pid").expect("pid")) as u64,
            as_f64(field(ev, "tid").expect("tid")) as u64,
        );
        match ph {
            "B" => *open.entry(track).or_insert(0) += 1,
            "E" => {
                let depth = open.entry(track).or_insert(0);
                *depth -= 1;
                assert!(*depth >= 0, "E without matching B on {track:?}");
            }
            "X" => assert!(as_f64(field(ev, "dur").expect("dur")) >= 0.0),
            "i" | "C" | "b" | "e" | "t" => {}
            // Flow arrows carry a correlation id; the end additionally
            // binds to its enclosing slice.
            "s" => {
                assert!(field(ev, "id").is_some(), "flow start without id");
            }
            "f" => {
                assert!(field(ev, "id").is_some(), "flow end without id");
                assert_eq!(
                    as_str(field(ev, "bp").expect("bp")),
                    "e",
                    "flow end must bind to the enclosing slice"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(open.values().all(|&d| d == 0), "unclosed B spans: {open:?}");
}

/// The embedded snapshot carries the headline counters the experiment
/// harness and CI smoke step grep for — present even when zero.
#[test]
fn snapshot_carries_headline_keys() {
    let world = world();
    let reqs = requests(&world, 0xBEEF, 20);
    let tele = Rc::new(Telemetry::new(false));
    let out = with_ambient(&tele, || simulate_stream(world.env(), &reqs));
    let snap = out.telemetry.as_ref().expect("snapshot attached");
    let rendered = serde_json::to_string(snap).expect("snapshot serializes");
    for key in [
        "route_cache.hits",
        "route_cache.misses",
        "route_cache.hit_rate",
        "event_queue.compactions",
        "executor.replacements",
        "flow_engine.recomputes",
    ] {
        assert!(
            rendered.contains(&format!("\"{key}\"")),
            "snapshot missing {key}: {rendered}"
        );
    }
    // The ambient registry absorbed the same run.
    assert_eq!(tele.metrics.snapshot(), *snap.clone());
}

/// Requests spanning a fog subtree plus the backbone, so pinned-mode
/// sharding has real cross-shard envelope traffic to stitch.
fn spanning_requests(
    world: &Continuum,
    regions: &[Vec<NodeId>],
    count: usize,
) -> Vec<StreamRequest> {
    let env = world.env();
    let devs_of = |nodes: &[NodeId]| -> Vec<DeviceId> {
        nodes
            .iter()
            .flat_map(|&n| env.fleet.at_node(n).iter().copied())
            .collect()
    };
    let backbone = devs_of(&regions[0]);
    (0..count)
        .map(|i| {
            let f = 1 + (i % (regions.len() - 1));
            let fog = devs_of(&regions[f]);
            let source = *regions[f].last().expect("non-empty region");
            let mut rng = Rng::new(0x510 + i as u64);
            let dag = layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 8,
                    source,
                    work_mu: (1e11f64).ln(),
                    ..LayeredSpec::default()
                },
            );
            // Alternate fog and backbone devices so successive layers sit
            // in different regions and pinned mode must exchange envelopes.
            let assignment = (0..dag.len())
                .map(|k| {
                    if k % 2 == 0 {
                        fog[(k / 2) % fog.len()]
                    } else {
                        backbone[(k / 2) % backbone.len()]
                    }
                })
                .collect();
            StreamRequest {
                dag,
                placement: Placement { assignment },
                arrival: SimTime::from_millis(2 * i as u64),
            }
        })
        .collect()
}

/// A small federation fixture on the default continuum: one registered
/// function, fog + cloud endpoints, Poisson arrivals from the sensors.
fn federation_fixture(
    world: &Continuum,
    partition: &RegionPartition,
    sites_n: usize,
) -> (
    FunctionRegistry,
    Vec<continuum_fabric::Endpoint>,
    Vec<continuum_fabric::Site>,
    Vec<Invocation>,
) {
    let env = world.env();
    let mut registry = FunctionRegistry::new();
    let infer = registry.register("infer", 2e9, 10 << 10, 1 << 10);
    let mut devices = env.fleet.in_tier(Tier::Fog);
    devices.extend(env.fleet.in_tier(Tier::Cloud));
    let endpoints = endpoints_on(env, &devices);
    let sites = sites_from_partition(env, partition, &endpoints, sites_n);
    let mut rng = Rng::new(0xFED0);
    let mut t = 0.0;
    let invs: Vec<Invocation> = (0..150)
        .map(|i| {
            t += rng.exp(200.0);
            Invocation {
                arrival: SimTime::from_secs_f64(t),
                origin: world.sensors()[i % world.sensors().len()],
                function: infer,
            }
        })
        .collect();
    (registry, endpoints, sites, invs)
}

/// Golden test for causal trace stitching: one telemetry sink over a
/// pinned two-shard run and a two-site federation run exports a single
/// Perfetto file in which at least one cross-shard envelope hop and one
/// cross-site forwarder hop are connected by `s`/`f` flow arrows with a
/// shared correlation id, and the process/thread metadata names every
/// shard and site track.
#[test]
fn flow_events_stitch_cross_shard_and_cross_site_hops() {
    let world = world();
    let spec = Scenario::default_continuum().spec;
    let regions = continuum_regions(&spec);
    let partition = RegionPartition::new(world.topology(), regions.clone(), 0);
    let reqs = spanning_requests(&world, &regions, 6);
    let (registry, endpoints, sites, invs) = federation_fixture(&world, &partition, 2);
    assert!(sites.len() >= 2, "fixture must span sites");
    let mut cfg = FederationCfg::new(RoutingPolicy::RoundRobin);
    cfg.batch = 4;
    cfg.drain_every = SimDuration::from_millis(5);

    let tele = Rc::new(Telemetry::new(true));
    with_ambient(&tele, || {
        std::hint::black_box(simulate_stream_pinned(
            world.env(),
            &reqs,
            None,
            &partition,
            2,
        ));
        std::hint::black_box(run_federation(
            world.env(),
            &registry,
            &endpoints,
            &sites,
            &invs,
            &cfg,
        ));
    });

    let exported = tele.tracer.export_string();
    let events = trace_events(&exported);
    assert_export_invariants(&events);

    // Base pid is 1; shard tracks live at pid 1001 + s, site threads at
    // tid 200 + s, the forwarder at tid 1.
    const SHARD_PID_BASE: u64 = 1001;
    const SITE_TID_BASE: u64 = 200;

    // Satellite: the metadata block names every shard process and every
    // site/forwarder thread.
    let mut meta: Vec<(String, u64, u64, String)> = Vec::new();
    for ev in &events {
        if as_str(field(ev, "ph").expect("ph")) != "M" {
            continue;
        }
        let args = field(ev, "args").expect("metadata args");
        let name = as_str(field(args, "name").expect("metadata name")).to_string();
        meta.push((
            as_str(field(ev, "name").expect("key")).to_string(),
            as_f64(field(ev, "pid").expect("pid")) as u64,
            as_f64(field(ev, "tid").expect("tid")) as u64,
            name,
        ));
    }
    for s in 0..2u64 {
        assert!(
            meta.iter().any(|(k, pid, _, n)| k == "process_name"
                && *pid == SHARD_PID_BASE + s
                && n == &format!("shard {s}")),
            "process metadata names shard {s}: {meta:?}"
        );
        assert!(
            meta.iter().any(|(k, pid, tid, n)| k == "thread_name"
                && *pid == SHARD_PID_BASE + s
                && *tid == 1
                && n == "xfer"),
            "thread metadata names shard {s}'s xfer track"
        );
        assert!(
            meta.iter().any(|(k, pid, tid, n)| k == "thread_name"
                && *pid == 1
                && *tid == SITE_TID_BASE + s
                && n == &format!("site {s}")),
            "thread metadata names site {s}"
        );
    }
    assert!(
        meta.iter()
            .any(|(k, pid, tid, n)| k == "thread_name" && *pid == 1 && *tid == 1 && n == "fabric"),
        "thread metadata names the forwarder track"
    );

    // Collect flow endpoints by correlation id.
    let mut flows: std::collections::HashMap<String, Vec<(String, u64, u64)>> =
        std::collections::HashMap::new();
    for ev in &events {
        let ph = as_str(field(ev, "ph").expect("ph"));
        if !matches!(ph, "s" | "t" | "f") {
            continue;
        }
        flows
            .entry(as_str(field(ev, "id").expect("flow id")).to_string())
            .or_default()
            .push((
                ph.to_string(),
                as_f64(field(ev, "pid").expect("pid")) as u64,
                as_f64(field(ev, "tid").expect("tid")) as u64,
            ));
    }
    let pair = |v: &[(String, u64, u64)]| {
        let s = v.iter().find(|(p, _, _)| p == "s")?;
        let f = v.iter().find(|(p, _, _)| p == "f")?;
        Some(((s.1, s.2), (f.1, f.2)))
    };
    let cross_shard = flows
        .values()
        .filter_map(|v| pair(v))
        .any(|((sp, _), (fp, _))| sp >= SHARD_PID_BASE && fp >= SHARD_PID_BASE && sp != fp);
    assert!(
        cross_shard,
        "no cross-shard envelope hop stitched by a flow arrow: {flows:?}"
    );
    let cross_site = flows
        .values()
        .filter_map(|v| pair(v))
        .any(|((sp, st), (fp, ft))| sp == 1 && st == 1 && fp == 1 && ft >= SITE_TID_BASE);
    assert!(
        cross_site,
        "no cross-site forwarder hop stitched by a flow arrow: {flows:?}"
    );
}

/// Telemetry on (metrics + tracing) vs off is bit-identical for the
/// sharded open loop: every counter, every f64, every histogram bucket.
#[test]
fn open_loop_sharded_telemetry_on_is_bit_identical_to_off() {
    let world = world();
    let spec = Scenario::default_continuum().spec;
    let regions = continuum_regions(&spec);
    let partition = RegionPartition::new(world.topology(), regions.clone(), 0);
    let reqs = spanning_requests(&world, &regions, 40);
    let opts = OpenLoopOpts {
        max_live: 8,
        ..OpenLoopOpts::default()
    };
    let run = || {
        simulate_open_loop_sharded(
            world.env(),
            reqs.iter().cloned(),
            &partition,
            &opts,
            &ShardOpts::pinned(2),
        )
    };
    let off: OpenLoopReport = run();
    let tele = Rc::new(Telemetry::new(true));
    let on = with_ambient(&tele, run);
    assert_eq!(off, on, "telemetry changed the sharded open loop");
    assert!(off.completed > 0, "fixture actually completed work");
    // The observing run still published the utilization gauges.
    let snap = tele.metrics.snapshot();
    assert!(snap.gauge("shard.util.mean_events").is_some());
    assert!(snap.gauge("shard.util.imbalance").is_some());
}

/// Telemetry on vs off is bit-identical for the federation: the
/// oracle-comparable fabric report and every federation counter agree.
#[test]
fn federation_telemetry_on_is_bit_identical_to_off() {
    let world = world();
    let spec = Scenario::default_continuum().spec;
    let regions = continuum_regions(&spec);
    let partition = RegionPartition::new(world.topology(), regions.clone(), 0);
    let (registry, endpoints, sites, invs) = federation_fixture(&world, &partition, 2);
    let mut cfg = FederationCfg::new(RoutingPolicy::RoundRobin);
    cfg.batch = 4;
    cfg.drain_every = SimDuration::from_millis(5);
    let run = || run_federation(world.env(), &registry, &endpoints, &sites, &invs, &cfg);
    let off = run();
    let tele = Rc::new(Telemetry::new(true));
    let on = with_ambient(&tele, run);
    assert_eq!(off.fabric, on.fabric, "telemetry changed the federation");
    assert_eq!(
        serde::Serialize::to_value(&off.sites),
        serde::Serialize::to_value(&on.sites)
    );
    assert_eq!(off.takeovers, on.takeovers);
    assert_eq!(off.drains, on.drains);
    assert_eq!(off.batched, on.batched);
    assert_eq!(off.max_batch, on.max_batch);
    assert_eq!(off.route_hits, on.route_hits);
    assert_eq!(off.route_misses, on.route_misses);
    assert!(off.fabric.completed > 0, "fixture actually completed work");
}
