//! Telemetry-plane integration tests.
//!
//! Two guarantees hold the observability layer honest:
//!
//! 1. **Telemetry never changes the run.** Executing under an ambient
//!    [`Telemetry`] — metrics and tracing both on — must produce a
//!    [`SimOutcome`] bit-identical (every trace record, every f64) to the
//!    same run with telemetry off. The plane observes; it never steers.
//! 2. **The Perfetto export is well-formed.** The exported JSON must
//!    parse, keep non-metadata events in non-decreasing timestamp order,
//!    and balance every `B` with an `E` on the same `(pid, tid)` track —
//!    the invariants ui.perfetto.dev needs to load the file at all.

use continuum_core::prelude::*;
use continuum_obs::{with_ambient, Telemetry};
use continuum_runtime::StreamRequest;
use proptest::prelude::*;
use std::rc::Rc;

fn world() -> Continuum {
    Continuum::build(&Scenario::default_continuum())
}

fn requests(world: &Continuum, seed: u64, tasks: usize) -> Vec<StreamRequest> {
    let mut rng = Rng::new(seed);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks,
            work_mu: (1e11f64).ln(),
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());
    vec![StreamRequest {
        arrival: SimTime::ZERO,
        dag,
        placement,
    }]
}

fn churn_plane(world: &Continuum, seed: u64) -> FaultPlane {
    let n_dev = world.env().fleet.len() as u32;
    let n_links = world.env().topology.links().len() as u32;
    let schedule = FaultSchedule::generate(
        &FaultScheduleSpec {
            horizon: SimDuration::from_secs(40),
            devices: FaultProcess {
                population: n_dev,
                mttf_s: 6.0,
                mttr_s: 2.0,
            },
            links: FaultProcess {
                population: n_links,
                mttf_s: 10.0,
                mttr_s: 2.0,
            },
            ..Default::default()
        },
        seed ^ 0x0B5,
    );
    FaultPlane {
        schedule,
        detection: SimDuration::from_millis(250),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Running under full telemetry (metrics + tracing) yields an outcome
    /// bit-identical to running with telemetry off, under arbitrary
    /// chaos. `SimOutcome`'s `PartialEq` intentionally ignores the
    /// attached snapshot, so this compares exactly what the executor
    /// decided — makespan, every record, every counter in the trace.
    #[test]
    fn telemetry_on_is_bit_identical_to_off(seed in any::<u64>(), tasks in 10usize..40) {
        let world = world();
        let reqs = requests(&world, seed, tasks);
        let plane = churn_plane(&world, seed);

        let off = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));
        let tele = Rc::new(Telemetry::new(true));
        let on = with_ambient(&tele, || {
            simulate_stream_chaos(world.env(), &reqs, None, Some(&plane))
        });

        prop_assert_eq!(&off, &on, "telemetry changed the execution");
        // And the full traces agree field by field, not just the summary.
        prop_assert_eq!(&off.trace.records, &on.trace.records);
        prop_assert_eq!(off.trace.replacements, on.trace.replacements);
        prop_assert_eq!(off.trace.lost_work_s, on.trace.lost_work_s);
        // Off-run carries no snapshot; on-run always does.
        prop_assert!(off.telemetry.is_none());
        let snap = on.telemetry.as_ref().expect("ambient telemetry produces a snapshot");
        prop_assert_eq!(snap.counter("executor.runs"), 1);
        prop_assert_eq!(
            snap.counter("executor.replacements"),
            on.trace.replacements
        );
        prop_assert!(snap.gauge("route_cache.hit_rate").is_some());
    }
}

/// Golden test for the Perfetto/Chrome `trace_events` export: valid
/// JSON, the required top-level shape, non-decreasing timestamps after
/// the metadata block, and balanced `B`/`E` pairs per track.
#[test]
fn perfetto_export_is_well_formed() {
    let world = world();
    let reqs = requests(&world, 0x7E1E, 30);
    let plane = churn_plane(&world, 0x7E1E);
    let tele = Rc::new(Telemetry::new(true));
    let out = with_ambient(&tele, || {
        simulate_stream_chaos(world.env(), &reqs, None, Some(&plane))
    });

    let exported = tele.tracer.export_string();
    let root = serde_json::parse(&exported).expect("export is valid JSON");
    let serde::Value::Object(top) = &root else {
        panic!("export root is not an object");
    };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let serde::Value::Array(events) = events else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty(), "trace exported no events");

    fn field<'v>(ev: &'v serde::Value, key: &str) -> &'v serde::Value {
        let serde::Value::Object(pairs) = ev else {
            panic!("event is not an object");
        };
        &pairs
            .iter()
            .find(|(k, _)| k == key)
            .expect("missing field")
            .1
    }
    fn as_str(v: &serde::Value) -> &str {
        match v {
            serde::Value::Str(s) => s,
            _ => panic!("expected string"),
        }
    }
    fn as_f64(v: &serde::Value) -> f64 {
        match v {
            serde::Value::F64(x) => *x,
            serde::Value::U64(x) => *x as f64,
            serde::Value::I64(x) => *x as f64,
            _ => panic!("expected number"),
        }
    }

    // Metadata first, then non-decreasing timestamps; every B closed by
    // an E on the same (pid, tid) track, never unbalanced.
    let mut seen_non_meta = false;
    let mut last_ts = f64::MIN;
    let mut open: std::collections::HashMap<(u64, u64), i64> = std::collections::HashMap::new();
    for ev in events {
        let ph = as_str(field(ev, "ph"));
        if ph == "M" {
            assert!(!seen_non_meta, "metadata event after timed events");
            continue;
        }
        seen_non_meta = true;
        let ts = as_f64(field(ev, "ts"));
        assert!(ts >= last_ts, "timestamps regressed: {ts} after {last_ts}");
        last_ts = ts;
        let track = (
            as_f64(field(ev, "pid")) as u64,
            as_f64(field(ev, "tid")) as u64,
        );
        match ph {
            "B" => *open.entry(track).or_insert(0) += 1,
            "E" => {
                let depth = open.entry(track).or_insert(0);
                *depth -= 1;
                assert!(*depth >= 0, "E without matching B on {track:?}");
            }
            "X" => assert!(as_f64(field(ev, "dur")) >= 0.0),
            "i" | "C" | "b" | "e" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(open.values().all(|&d| d == 0), "unclosed B spans: {open:?}");

    // The chaos run actually put the interesting things on the timeline:
    // one span pair per request plus task slices.
    assert_eq!(out.trace.request_finish.len(), reqs.len());
    let n_b = events
        .iter()
        .filter(|e| as_str(field(e, "ph")) == "B")
        .count();
    assert_eq!(n_b, reqs.len(), "one B span per request");
    let n_x = events
        .iter()
        .filter(|e| as_str(field(e, "ph")) == "X")
        .count();
    assert_eq!(n_x, out.trace.records.len(), "one X slice per task record");
}

/// The embedded snapshot carries the headline counters the experiment
/// harness and CI smoke step grep for — present even when zero.
#[test]
fn snapshot_carries_headline_keys() {
    let world = world();
    let reqs = requests(&world, 0xBEEF, 20);
    let tele = Rc::new(Telemetry::new(false));
    let out = with_ambient(&tele, || simulate_stream(world.env(), &reqs));
    let snap = out.telemetry.as_ref().expect("snapshot attached");
    let rendered = serde_json::to_string(snap).expect("snapshot serializes");
    for key in [
        "route_cache.hits",
        "route_cache.misses",
        "route_cache.hit_rate",
        "event_queue.compactions",
        "executor.replacements",
        "flow_engine.recomputes",
    ] {
        assert!(
            rendered.contains(&format!("\"{key}\"")),
            "snapshot missing {key}: {rendered}"
        );
    }
    // The ambient registry absorbed the same run.
    assert_eq!(tele.metrics.snapshot(), *snap.clone());
}
