//! Serialization round-trips: workloads, topologies, placements, and
//! traces survive JSON persistence bit-for-bit. This is the record/replay
//! path: a workload + placement serialized today must simulate to the same
//! result when replayed later.

use continuum_core::prelude::*;
use continuum_runtime::simulate;

#[test]
fn dag_roundtrips_and_replays_identically() {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(77);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 60,
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());

    let dag_json = serde_json::to_string(&dag).expect("dag serializes");
    let placement_json = serde_json::to_string(&placement).expect("placement serializes");
    let dag2: Dag = serde_json::from_str(&dag_json).expect("dag deserializes");
    let placement2: Placement =
        serde_json::from_str(&placement_json).expect("placement deserializes");

    assert_eq!(dag.len(), dag2.len());
    assert_eq!(dag.total_work(), dag2.total_work());
    assert_eq!(dag.total_bytes(), dag2.total_bytes());
    assert!(dag2.validate().is_ok());
    assert_eq!(placement, placement2);

    // Replay: identical simulated outcome.
    let a = simulate(world.env(), &dag, &placement);
    let b = simulate(world.env(), &dag2, &placement2);
    assert_eq!(a.metrics.makespan_s, b.metrics.makespan_s);
    assert_eq!(a.metrics.bytes_moved, b.metrics.bytes_moved);
    assert_eq!(a.trace.records.len(), b.trace.records.len());
}

#[test]
fn topology_roundtrips() {
    let built = Scenario::smart_city().build();
    let json = serde_json::to_string(&*built.topology).expect("topology serializes");
    let topo2: Topology = serde_json::from_str(&json).expect("topology deserializes");
    assert_eq!(topo2.node_count(), built.topology.node_count());
    assert_eq!(topo2.link_count(), built.topology.link_count());
    assert!(topo2.is_connected());
    // Routing over the revived topology matches.
    let r1 = continuum_net::RouteTable::build(&built.topology);
    let r2 = continuum_net::RouteTable::build(&topo2);
    let a = built.sensors[0];
    let b = built.clouds[0];
    assert_eq!(r1.distance(a, b), r2.distance(a, b));
}

#[test]
fn execution_trace_roundtrips() {
    let world = Continuum::build(&Scenario::default_continuum());
    let dag = analytics_pipeline(&PipelineSpec {
        source: world.sensors()[0],
        ..Default::default()
    });
    let report = world.run(&dag, &HeftPlacer::default());
    let json = serde_json::to_string(&report.trace).expect("trace serializes");
    let trace2: continuum_runtime::ExecutionTrace =
        serde_json::from_str(&json).expect("trace deserializes");
    assert_eq!(trace2.records.len(), report.trace.records.len());
    assert_eq!(trace2.makespan(), report.trace.makespan());
    assert_eq!(trace2.bytes_moved, report.trace.bytes_moved);
}

#[test]
fn workload_specs_roundtrip() {
    let spec = PipelineSpec::default();
    let json = serde_json::to_string(&spec).expect("spec serializes");
    let spec2: PipelineSpec = serde_json::from_str(&json).expect("spec deserializes");
    assert_eq!(spec2.input_bytes, spec.input_bytes);

    let lspec = LayeredSpec::default();
    let json = serde_json::to_string(&lspec).expect("spec serializes");
    let l2: LayeredSpec = serde_json::from_str(&json).expect("spec deserializes");
    // Same spec + same seed -> identical workload.
    let g1 = layered_random(&mut Rng::new(5), &lspec);
    let g2 = layered_random(&mut Rng::new(5), &l2);
    assert_eq!(g1.total_work(), g2.total_work());
}
