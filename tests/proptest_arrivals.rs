//! Open-loop arrival-process property tests.
//!
//! The traffic plane's contract is threefold: generators are pure
//! functions of their seed (same seed, same stream, bit for bit), the
//! homogeneous Poisson process actually delivers its nominal rate, and
//! workloads drawn from the open-loop generators execute identically on
//! the sharded kernel and the single-queue kernel — arrivals are just
//! another workload, so PR-6's bit-identity contract must survive them.
//!
//! The case count defaults low so PR builds stay fast; scheduled CI sets
//! `CONTINUUM_ARRIVAL_CASES` to push the same properties much harder.

use continuum_core::prelude::*;
use continuum_net::{continuum_regions, RegionPartition};
use continuum_runtime::{simulate_stream_sharded, ShardOpts};
use continuum_workflow::{open_loop_arrivals, ArrivalProcess, OpenLoopSpec};
use proptest::prelude::*;

fn arrival_cases() -> u32 {
    std::env::var("CONTINUUM_ARRIVAL_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

/// Pick one of the three arrival processes from raw proptest draws.
fn process(which: u8, rate: f64) -> ArrivalProcess {
    match which % 3 {
        0 => ArrivalProcess::Poisson { rate_hz: rate },
        1 => ArrivalProcess::Diurnal {
            trough_hz: rate * 0.2,
            peak_hz: rate,
            period_s: 10.0,
        },
        _ => ArrivalProcess::FlashCrowd {
            base_hz: rate * 0.25,
            spike_hz: rate * 4.0,
            at_s: 1.0,
            len_s: 2.0,
        },
    }
}

/// A stable fingerprint of a generated stream: arrival nanos plus the
/// full serialized DAG, so any drift in times, sizes, shapes, or task
/// metadata shows up.
fn fingerprint(seed: u64, spec: &OpenLoopSpec) -> Vec<(u64, String)> {
    open_loop_arrivals(seed, spec)
        .map(|(t, dag)| {
            (
                t.since(SimTime::ZERO).0,
                serde_json::to_string(&dag).expect("dag serializes"),
            )
        })
        .collect()
}

fn world() -> (Continuum, ContinuumSpec) {
    let spec = ContinuumSpec {
        fogs: 3,
        edges_per_fog: 2,
        sensors_per_edge: 2,
        clouds: 1,
        hpcs: 0,
        ..ContinuumSpec::default()
    };
    let scenario = Scenario {
        name: "arrival-world",
        spec: spec.clone(),
    };
    (Continuum::build(&scenario), spec)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: arrival_cases(), ..ProptestConfig::default() })]

    /// Same seed, same spec: the generated stream is identical bit for
    /// bit — times, sizes, and DAG structure — across every arrival
    /// process and size distribution.
    #[test]
    fn generators_are_deterministic_per_seed(
        seed in any::<u64>(),
        which in any::<u8>(),
        rate in 1.0f64..200.0,
        heavy_tail in any::<bool>(),
    ) {
        let spec = OpenLoopSpec {
            requests: 64,
            process: process(which, rate),
            size_alpha: if heavy_tail { Some(1.5) } else { None },
            ..OpenLoopSpec::default()
        };
        prop_assert_eq!(fingerprint(seed, &spec), fingerprint(seed, &spec));
    }

    /// The homogeneous Poisson process delivers its nominal rate: over
    /// n = 4000 draws the empirical rate lands within 10% (the i.i.d.
    /// exponential sum has relative sd 1/sqrt(n) ~ 1.6%, so this bound
    /// has a wide margin without being vacuous).
    #[test]
    fn poisson_empirical_rate_matches_nominal(
        seed in any::<u64>(),
        rate in 1.0f64..500.0,
    ) {
        let n = 4000usize;
        let spec = OpenLoopSpec {
            requests: n,
            process: ArrivalProcess::Poisson { rate_hz: rate },
            ..OpenLoopSpec::default()
        };
        let last = open_loop_arrivals(seed, &spec)
            .last()
            .expect("non-empty stream")
            .0;
        let span_s = last.since(SimTime::ZERO).as_secs_f64();
        prop_assert!(span_s > 0.0);
        let empirical = n as f64 / span_s;
        prop_assert!(
            (empirical - rate).abs() <= 0.10 * rate,
            "empirical {} vs nominal {}", empirical, rate
        );
    }

    /// Open-loop workloads are ordinary workloads to the kernels: a
    /// stream drawn from the generators, placed online, runs
    /// bit-identically on the sharded and single-queue executors.
    #[test]
    fn open_loop_workload_shards_identically(
        seed in any::<u64>(),
        which in any::<u8>(),
        max_shards in 1usize..5,
        windowed in any::<bool>(),
    ) {
        let (world, spec) = world();
        let gen = OpenLoopSpec {
            sensors: world.sensors().to_vec(),
            requests: 40,
            process: process(which, 50.0),
            size_alpha: Some(1.5),
            ..OpenLoopSpec::default()
        };
        let mut placer = OnlinePlacer::continuum(world.env());
        let requests: Vec<StreamRequest> = open_loop_arrivals(seed, &gen)
            .map(|(arrival, dag)| {
                let (placement, _) = placer.place_request(world.env(), &dag, arrival);
                StreamRequest { dag, placement, arrival }
            })
            .collect();
        let partition =
            RegionPartition::new(world.topology(), continuum_regions(&spec), 0);
        let single = simulate_stream_chaos(world.env(), &requests, None, None);
        let opts = ShardOpts { max_shards, windowed, ..ShardOpts::default() };
        let sharded = simulate_stream_sharded(
            world.env(), &requests, None, None, &partition, &opts,
        );
        prop_assert_eq!(&sharded, &single);
    }
}
