//! Chaos property tests: the fault plane under randomly generated
//! crash/recover schedules.
//!
//! These are the correctness anchor for the fault plane: any schedule in
//! which every crash eventually recovers must leave the executor with a
//! terminating, conserving run — every task finishes exactly once, every
//! killed attempt is accounted for, and the empty schedule is
//! bit-identical to the fault-free executor.
//!
//! The case count defaults low so PR builds stay fast; scheduled CI sets
//! `CONTINUUM_CHAOS_CASES` to push the same properties much harder.

use continuum_core::prelude::*;
use continuum_runtime::StreamRequest;
use proptest::prelude::*;

fn chaos_cases() -> u32 {
    std::env::var("CONTINUUM_CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn world() -> Continuum {
    Continuum::build(&Scenario::default_continuum())
}

fn requests(world: &Continuum, seed: u64, tasks: usize) -> (Dag, Vec<StreamRequest>) {
    let mut rng = Rng::new(seed);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks,
            // Heavy enough that generated crashes land mid-execution.
            work_mu: (1e11f64).ln(),
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());
    let reqs = vec![StreamRequest {
        arrival: SimTime::ZERO,
        dag: dag.clone(),
        placement,
    }];
    (dag, reqs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: chaos_cases(), ..ProptestConfig::default() })]

    /// Termination and conservation under arbitrary always-recovering
    /// device/link churn: the run completes (the executor itself asserts
    /// no task is left unfinished), each task succeeds exactly once, and
    /// the trace carries one extra record per killed attempt — nothing
    /// lost, nothing double-counted.
    #[test]
    fn chaos_conserves_tasks(
        seed in any::<u64>(),
        tasks in 10usize..50,
        mttf_s in 2.0f64..30.0,
        mttr_s in 0.5f64..5.0,
        detection_ms in 20u64..2000,
    ) {
        let world = world();
        let (dag, reqs) = requests(&world, seed, tasks);
        let n_dev = world.env().fleet.len() as u32;
        let n_links = world.env().topology.links().len() as u32;
        let schedule = FaultSchedule::generate(
            &FaultScheduleSpec {
                horizon: SimDuration::from_secs(40),
                devices: FaultProcess { population: n_dev, mttf_s, mttr_s },
                links: FaultProcess { population: n_links, mttf_s: mttf_s * 2.0, mttr_s },
                ..Default::default()
            },
            seed ^ 0xC4A05,
        );
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(detection_ms),
        };
        let out = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));

        // One record per successful task plus one per killed attempt.
        prop_assert_eq!(
            out.trace.records.len() as u64,
            dag.len() as u64 + out.trace.killed_attempts,
            "records vs tasks+killed mismatch"
        );
        // Every task has exactly one *final* (successful) record, and the
        // final schedule still respects the DAG's dependencies.
        prop_assert!(out.trace.respects_dependencies(&[&dag]));
        prop_assert_eq!(out.trace.request_finish.len(), 1);
        prop_assert!(out.metrics.makespan_s > 0.0);
        prop_assert!(out.trace.lost_work_s >= 0.0);
        // Killed attempts and re-placements only exist under real faults.
        if out.trace.device_crashes == 0 {
            prop_assert_eq!(out.trace.killed_attempts, 0);
            prop_assert_eq!(out.trace.lost_work_s, 0.0);
        }
    }

    /// The empty fault schedule is not "approximately" the fault-free
    /// executor — it IS the fault-free executor, decision for decision.
    #[test]
    fn empty_schedule_is_bit_identical(seed in any::<u64>(), tasks in 5usize..40) {
        let world = world();
        let (_, reqs) = requests(&world, seed, tasks);
        let clean = simulate_stream(world.env(), &reqs);
        let plane = FaultPlane {
            schedule: FaultSchedule::new(),
            detection: SimDuration::from_millis(100),
        };
        let chaos = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));
        prop_assert_eq!(clean.metrics.makespan_s, chaos.metrics.makespan_s);
        prop_assert_eq!(clean.metrics.energy_j, chaos.metrics.energy_j);
        prop_assert_eq!(clean.metrics.cost_usd, chaos.metrics.cost_usd);
        prop_assert_eq!(clean.trace.bytes_moved, chaos.trace.bytes_moved);
        prop_assert_eq!(clean.trace.transfers, chaos.trace.transfers);
        prop_assert_eq!(clean.trace.request_finish, chaos.trace.request_finish);
    }

    /// Chaos runs are deterministic: the same schedule and workload give
    /// the same outcome, bit for bit.
    #[test]
    fn chaos_is_deterministic(seed in any::<u64>()) {
        let world = world();
        let (_, reqs) = requests(&world, seed, 25);
        let n_dev = world.env().fleet.len() as u32;
        let schedule = FaultSchedule::generate(
            &FaultScheduleSpec {
                horizon: SimDuration::from_secs(20),
                devices: FaultProcess { population: n_dev, mttf_s: 5.0, mttr_s: 2.0 },
                ..Default::default()
            },
            seed,
        );
        let plane = FaultPlane {
            schedule,
            detection: SimDuration::from_millis(200),
        };
        let a = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));
        let b = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));
        prop_assert_eq!(a.metrics.makespan_s, b.metrics.makespan_s);
        prop_assert_eq!(a.trace.records.len(), b.trace.records.len());
        prop_assert_eq!(a.trace.replacements, b.trace.replacements);
        prop_assert_eq!(a.trace.lost_work_s, b.trace.lost_work_s);
    }
}
