//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly and a poisoned mutex is
//! recovered rather than propagated (a panicking holder already
//! aborts the test that cared).

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard holding the lock; the `Option` lets [`Condvar::wait`] move
/// the underlying std guard out and back without unsafe code.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified; parking_lot-style in-place guard reborrow.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let held = guard.inner.take().expect("guard holds the lock");
        let held = self.inner.wait(held).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(held);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
