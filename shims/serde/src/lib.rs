//! Offline stand-in for `serde`.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the narrow slice of serde it actually uses: a JSON-shaped
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits defined
//! directly against it, and derive macros (re-exported from the
//! `serde_derive` shim) for plain structs and unit-variant enums.
//!
//! The encoding mirrors serde_json's defaults so existing derives keep
//! their on-disk shape: named structs become objects (field order
//! preserved), newtype structs are transparent, tuple structs become
//! arrays, unit enum variants become strings, `Option` is `null` or the
//! value, and maps become objects with stringified scalar keys.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A JSON value: the serialization data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without decimal point).
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating-point number (shortest round-trip formatting).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 if it is an unsigned (or non-negative signed)
    /// integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an f64 if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Compact JSON rendering; `serde_json` reuses this for `to_string`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::U64(u) => write!(f, "{u}"),
            Value::I64(i) => write!(f, "{i}"),
            Value::F64(v) => {
                if !v.is_finite() {
                    f.write_str("null")
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: integral floats keep a `.0`.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write_json_string(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escape and quote `s` as a JSON string.
fn write_json_string(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Deserialization failure: a human-readable path + expectation message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Shorthand used by generated code.
pub fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error(msg.into()))
}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let s = *self as i64;
                if s >= 0 { Value::U64(s as u64) } else { Value::I64(s) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| Error(format!("{u} out of i64 range")))?,
                    _ => return err(format!("expected integer, got {v:?}")),
                };
                <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => err(format!("expected bool, got {v:?}")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => err(format!("expected string, got {v:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => err(format!("expected array, got {v:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Arc<[T]> {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, Error> =
                    items.iter().map(Deserialize::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| Error(format!("expected array of {N}")))
            }
            _ => err(format!("expected array of {N}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let item = it.next().ok_or_else(|| {
                                    Error("tuple too short".into())
                                })?;
                                $t::from_value(item)?
                            },
                        )+);
                        if it.next().is_some() {
                            return err("tuple too long");
                        }
                        Ok(tuple)
                    }
                    _ => err(format!("expected array for tuple, got {v:?}")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Render a scalar value as an object key (serde_json stringifies integer
/// map keys the same way).
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be a scalar, got {other:?}"),
    }
}

/// Parse an object key back into a scalar value.
fn key_value(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        Value::U64(u)
    } else if let Ok(i) = s.parse::<i64>() {
        Value::I64(i)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by key.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_value(k))?, V::from_value(v)?)))
                .collect(),
            _ => err(format!("expected object for map, got {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u64), (3, 4)];
        let rt = Vec::<(u32, u64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, rt);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = HashMap::new();
        m.insert(7u64, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.get("7").and_then(Value::as_str), Some("x"));
        let rt = HashMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(rt, m);
    }
}
