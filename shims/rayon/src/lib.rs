//! Offline stand-in for `rayon`.
//!
//! Covers the subset this workspace uses: `par_iter`/`into_par_iter`
//! over slices, `Vec`s and integer ranges, `map`/`filter_map`/
//! `for_each`/`collect`, and `ThreadPoolBuilder`/`ThreadPool::install`.
//!
//! Work is executed on real OS threads via `std::thread::scope`, with
//! items handed out through an atomic cursor. `map` is eager (the
//! closure runs at the `map` call, not at `collect`), which is
//! observationally equivalent for the pure closures used here.
//! Results always come back in input order, so `collect` is
//! deterministic regardless of thread interleaving.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the current scope would use.
///
/// The `available_parallelism` fallback is cached: it reads cgroup and
/// affinity state from the OS, which costs microseconds per call —
/// far too slow for hot-path "should I fan out?" gates.
pub fn current_num_threads() -> usize {
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        *AVAILABLE.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Run `f(item)` over every item on `current_num_threads()` workers,
/// returning results in input order.
fn par_map_vec<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(item);
                *out[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled every slot")
        })
        .collect()
}

/// A "parallel iterator": a materialised item list whose `map` runs
/// across worker threads.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f).into_iter().flatten().collect(),
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`] (rayon's `into_par_iter`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// rayon's `par_iter()` entry point: any `&C` that converts.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Error from [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A configured worker count; `install` applies it for a closure.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing any parallel
    /// iterators it creates.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means "use all available cores".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0u64..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let out: Vec<usize> = pool.install(|| (0usize..10).into_par_iter().collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
