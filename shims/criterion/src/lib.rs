//! Offline stand-in for `criterion`.
//!
//! Implements the handful of entry points the workspace benches use:
//! `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a plain wall-clock median over `sample_size` samples —
//! enough to compare orders of magnitude, with none of criterion's
//! statistics. Each bench prints one `name ... median` line.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; ignored by the shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to every bench closure; routines register through it.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last routine run.
    last: Option<Duration>,
}

impl Bencher {
    fn run_samples(&mut self, mut sample: impl FnMut() -> Duration) {
        let mut times: Vec<Duration> = (0..self.samples).map(|_| sample()).collect();
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }

    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.run_samples(|| {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            t0.elapsed()
        });
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            t0.elapsed()
        });
    }
}

/// The bench context handed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        report(name, b.last);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// No-op: the shim reports as it goes.
    pub fn finish(self) {}
}

fn report(name: &str, median: Option<Duration>) {
    match median {
        Some(d) => println!("bench {name:<48} median {d:?}"),
        None => println!("bench {name:<48} (no routine)"),
    }
}

/// Re-export so `use criterion::black_box` works if a bench prefers it
/// over `std::hint::black_box`.
pub use std::hint::black_box;

/// Declare a named group of bench targets with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("spin_batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(3);
        targets = spin
    }

    #[test]
    fn harness_runs() {
        shim_group();
    }
}
