//! Offline stand-in for `serde_json`: renders and parses the `serde`
//! shim's [`Value`] model as JSON text.
//!
//! Floats are emitted with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` reproduces every `f64` bit-for-bit (the
//! property the record/replay tests rely on). Non-finite floats render as
//! `null`, matching serde_json.

pub use serde::{Error, Value};
use std::fmt::Write as _;

/// Serialize a value to compact JSON text.
///
/// Infallible for tree-shaped data; the `Result` mirrors serde_json's
/// signature so call sites keep their `?`/`expect`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return serde::err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

/// Build a [`Value`] literal: `json!({"id": "t1", "rows": rows})`.
///
/// Object values may be any `serde::Serialize` expression. Only the
/// object/array/expression forms this workspace uses are supported.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), ::serde::Serialize::to_value(&$val))),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $(::serde::Serialize::to_value(&$val)),*
        ])
    };
    ($val:expr) => { ::serde::Serialize::to_value(&$val) };
}

// ------------------------------------------------------------- rendering

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Match serde_json: integral floats keep a trailing `.0`.
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// `Display for Value` (compact JSON, what `println!("{json_rows}")`
// expects) lives in the serde shim next to the type itself.

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            serde::err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            serde::err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => serde::err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return serde::err(format!("bad escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                _ => return serde::err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return serde::err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return serde::err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::F64(1.5)),
            ("s".into(), Value::Str("x \"y\"\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_bits_survive() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 6.02e23, -0.0f64, 2.0] {
            let text = to_string(&Value::F64(x)).unwrap();
            match parse(&text).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
                Value::U64(u) => assert_eq!(x, u as f64),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1u64, 2, 3];
        let v = json!({"id": "t1", "rows": rows});
        assert_eq!(v.get("id").and_then(Value::as_str), Some("t1"));
        assert!(matches!(v.get("rows"), Some(Value::Array(a)) if a.len() == 3));
    }
}
