//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer backed by
//! `Arc<[u8]>`. Unlike the real crate, `from_static` copies its input
//! (no zero-copy static variant) — irrelevant for correctness.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([] as [u8; 0]),
        }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
        }
    }

    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Sub-range as a new buffer (copies; the real crate refcounts).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.data.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_slicing() {
        let b = Bytes::from("hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b[0], b'h');
        assert!(Bytes::new().is_empty());
    }
}
