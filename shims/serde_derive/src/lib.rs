//! Derive macros for the offline `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is walked directly and the impl is emitted as a string.
//! Supported shapes — the only ones this workspace uses:
//!
//! - named-field structs (object encoding, field order preserved)
//! - tuple structs (newtype: transparent; otherwise: array)
//! - unit structs (`null`)
//! - enums with unit variants only (string encoding)
//!
//! Generics and data-carrying enum variants are rejected with a
//! compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Skip one attribute (`#` already consumed: consume the bracket group).
fn skip_attr(iter: &mut impl Iterator<Item = TokenTree>) {
    if let Some(TokenTree::Group(g)) = iter.next() {
        debug_assert_eq!(g.delimiter(), Delimiter::Bracket);
    }
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    // Preamble: attributes and visibility up to `struct` / `enum`.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc.: the paren group (if any) is
                // consumed on the next loop turn only if it follows `pub`.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => return Err("no struct or enum found".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("derive shim does not support generics on `{name}`"));
        }
    }
    let shape = if kind == "enum" {
        let body = match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => return Err(format!("expected enum body, got {other:?}")),
        };
        Shape::Enum(parse_enum_variants(body.stream(), &name)?)
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("expected struct body, got {other:?}")),
        }
    };
    Ok(Parsed { name, shape })
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                        continue;
                    }
                    break Some(s);
                }
                Some(_) => {}
                None => break None,
            }
        };
        let Some(field) = field else { break };
        fields.push(field);
        // Skip `:` and the type, up to a comma outside angle brackets.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut pending = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

/// Variant names of a unit-variant enum body.
fn parse_enum_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let variant = id.to_string();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    return Err(format!(
                        "derive shim supports only unit variants; `{enum_name}::{variant}` carries data"
                    ));
                }
                variants.push(variant);
                // Skip any discriminant up to the next comma.
                for tok in iter.by_ref() {
                    if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(_) => {}
            None => break,
        }
    }
    Ok(variants)
}

/// `#[derive(Serialize)]`: emit a `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::with_capacity({n}); {pushes} \
                 ::serde::Value::Object(__fields)",
                n = fields.len()
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!("match *self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`: emit a `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __v.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match __v {{ ::serde::Value::Object(_) => Ok({name} {{ {} }}), \
                 _ => ::serde::err(concat!(\"expected object for \", {name:?})), }}",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{ ::serde::Value::Array(__items) if __items.len() == {n} => \
                 Ok({name}({})), \
                 _ => ::serde::err(concat!(\"expected {n}-array for \", {name:?})), }}",
                items.join(", ")
            )
        }
        Shape::Unit => format!(
            "match __v {{ ::serde::Value::Null => Ok({name}), \
             _ => ::serde::err(concat!(\"expected null for \", {name:?})), }}"
        ),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "match __v {{ ::serde::Value::Str(__s) => match __s.as_str() {{ {arms} \
                 __other => ::serde::err(format!(\
                 \"unknown variant {{__other:?}} for {name}\")), }}, \
                 _ => ::serde::err(concat!(\"expected string for \", {name:?})), }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
         {body} }} }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
