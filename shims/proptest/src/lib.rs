//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig { cases, .. }`,
//! `any::<T>()`, numeric-range and tuple strategies, and
//! `proptest::collection::vec`.
//!
//! Inputs are drawn from a splitmix64 stream seeded from the test's
//! module path and name, so every run of a given test sees the same
//! case sequence (reproducible without a persistence file). There is
//! no shrinking: on failure the harness prints the raw failing inputs
//! and re-raises the panic.

use std::ops::Range;

/// Test-run configuration. Only `cases` is honoured; the other fields
/// exist so call sites can use `..ProptestConfig::default()` syntax.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never persists failures.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic splitmix64 generator used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a), typically the test path.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift rejection-free mapping is fine for tests.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`], enabling heterogeneous
    /// composition (e.g. the arms of [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (proptest's `BoxedStrategy<T>`).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`prop_oneof!`]: each case picks one arm
/// uniformly at random, then draws from it.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased arms; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Uniform choice over strategies with a common value type
/// (proptest's unweighted `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing one element of a fixed pool per case.
    pub struct Select<T> {
        pool: Vec<T>,
    }

    /// Uniform choice from `pool`; the pool must be non-empty.
    pub fn select<T: Clone>(pool: &[T]) -> Select<T> {
        assert!(!pool.is_empty(), "select over an empty pool");
        Select {
            pool: pool.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.pool[rng.below(self.pool.len() as u64) as usize].clone()
        }
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide magnitude span.
        (rng.f64() * 2.0 - 1.0) * 1e12
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`: uniform over its representable values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// (the `#[test]` attribute is written by the caller, as with the real
/// proptest crate) runs `cases` random cases; on failure the generated
/// inputs are printed and the panic re-raised (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = ($(::std::clone::Clone::clone(&$arg),)+);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {}/{} with inputs {:?}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn macro_generates_cases(x in 1u64..100, v in collection::vec(0u8..4, 1..10)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }
}
