//! Umbrella crate for the `coding-the-continuum` reproduction.
//!
//! Re-exports the public API of all member crates. Most users should depend
//! on [`continuum_core`] directly; this crate exists to host the repository's
//! integration tests and runnable examples.

pub use continuum_core as core;
pub use continuum_data as data;
pub use continuum_fabric as fabric;
pub use continuum_model as model;
pub use continuum_net as net;
pub use continuum_placement as placement;
pub use continuum_runtime as runtime;
pub use continuum_sim as sim;
pub use continuum_workflow as workflow;
