//! Property-based tests for the placement engine's core structures.

use continuum_model::standard_fleet;
use continuum_net::{continuum, ContinuumSpec};
use continuum_placement::{
    evaluate, AnnealingPlacer, CpopPlacer, DeltaEvaluator, DeviceTimeline, Env, GreedyEftPlacer,
    HeftPlacer, PeftPlacer, Placement, Placer, WeightedObjective,
};
use continuum_sim::{Rng, SimDuration, SimTime};
use continuum_workflow::{layered_random, LayeredSpec, TaskId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// A DeviceTimeline never oversubscribes: any sequence of
    /// earliest_slot + reserve keeps the peak at or below the core count,
    /// in both insertion and append modes.
    #[test]
    fn timeline_never_oversubscribes(
        cores in 1u32..16,
        jobs in proptest::collection::vec((0u64..1000, 1u64..500, 1u32..8, any::<bool>()), 1..60),
    ) {
        let mut tl = DeviceTimeline::new(cores);
        for &(ready, dur_ms, need, insertion) in &jobs {
            let ready = SimTime::from_millis(ready);
            let dur = SimDuration::from_millis(dur_ms);
            let start = tl.earliest_slot(ready, dur, need, insertion);
            prop_assert!(start >= ready);
            // reserve() debug-asserts the capacity invariant internally.
            tl.reserve(start, dur, need);
        }
        // Accounting is exact.
        let expected: f64 = jobs
            .iter()
            .map(|&(_, d, n, _)| d as f64 / 1000.0 * n.min(cores) as f64)
            .sum();
        prop_assert!((tl.busy_core_seconds() - expected).abs() < 1e-6);
    }

    /// Insertion never starts later than append for the same query on the
    /// same timeline state.
    #[test]
    fn insertion_dominates_append(
        cores in 1u32..8,
        setup in proptest::collection::vec((0u64..500, 1u64..200, 1u32..4), 0..25),
        query in (0u64..500, 1u64..200, 1u32..4),
    ) {
        let mut tl = DeviceTimeline::new(cores);
        for &(ready, dur, need) in &setup {
            let s = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, true);
            tl.reserve(s, SimDuration::from_millis(dur), need);
        }
        let (ready, dur, need) = query;
        let ins = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, true);
        let app = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, false);
        prop_assert!(ins <= app, "insertion {ins:?} later than append {app:?}");
    }

    /// Every placement a policy emits is feasible (each task's device
    /// satisfies its constraints) and evaluates to a dependency-respecting
    /// schedule whose makespan is at least the biggest single task's
    /// execution time.
    #[test]
    fn policies_emit_feasible_schedules(seed in any::<u64>(), greedy in any::<bool>()) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 40, ..Default::default() });
        let placement: Placement = if greedy {
            GreedyEftPlacer::default().place(&env, &dag)
        } else {
            HeftPlacer::default().place(&env, &dag)
        };
        for task in dag.tasks() {
            let dev = placement.device(task.id);
            let feas = env.feasible_devices(task);
            prop_assert!(feas.contains(&dev), "infeasible device for {}", task.name);
        }
        let (sched, metrics) = evaluate(&env, &dag, &placement);
        prop_assert!(sched.respects_dependencies(&dag));
        // Lower bound: the slowest committed task alone.
        let mut longest = 0.0f64;
        for task in dag.tasks() {
            let dev = placement.device(task.id);
            let spec = &env.fleet.device(dev).spec;
            longest = longest.max(
                spec.compute_time_parallel(task.work_flops, task.parallelism).as_secs_f64(),
            );
        }
        prop_assert!(metrics.makespan_s >= longest * 0.999);
    }

    /// The sweep-line `earliest_slot` agrees with the seed's candidate
    /// scan on arbitrary timeline states, in both insertion and append
    /// modes — including queries against a timeline it did not build.
    #[test]
    fn sweep_slot_equals_scan_oracle(
        cores in 1u32..8,
        setup in proptest::collection::vec((0u64..500, 1u64..200, 1u32..4), 0..30),
        queries in proptest::collection::vec((0u64..700, 1u64..200, 1u32..4, any::<bool>()), 1..20),
    ) {
        let mut tl = DeviceTimeline::new(cores);
        for &(ready, dur, need) in &setup {
            let s = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, true);
            tl.reserve(s, SimDuration::from_millis(dur), need);
        }
        for &(ready, dur, need, insertion) in &queries {
            let ready = SimTime::from_millis(ready);
            let dur = SimDuration::from_millis(dur);
            prop_assert_eq!(
                tl.earliest_slot(ready, dur, need, insertion),
                tl.earliest_slot_scan(ready, dur, need, insertion),
                "ready={:?} dur={:?} need={} ins={}", ready, dur, need, insertion
            );
        }
    }
}

// Fewer cases for the properties that build a full continuum per case.
proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Parallel candidate scans pick the same device as the serial scan —
    /// the whole placement, not just the makespan, must be identical for
    /// HEFT, PEFT, and CPOP (ties are broken by a scan-order-independent
    /// total order, so rayon's scheduling cannot leak into the result).
    #[test]
    fn parallel_scans_match_serial(seed in any::<u64>()) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 40, ..Default::default() });
        prop_assert_eq!(
            HeftPlacer::default().place(&env, &dag),
            HeftPlacer::serial().place(&env, &dag)
        );
        prop_assert_eq!(
            PeftPlacer::default().place(&env, &dag),
            PeftPlacer::serial().place(&env, &dag)
        );
        prop_assert_eq!(
            CpopPlacer::default().place(&env, &dag),
            CpopPlacer::serial().place(&env, &dag)
        );
    }

    /// After any sequence of single-task moves — some snapshot-undone right
    /// after — the delta evaluator's schedule and metrics are bit-identical
    /// to a from-scratch replay of the same assignment.
    #[test]
    fn delta_evaluator_matches_full_replay(
        seed in any::<u64>(),
        moves in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..12),
    ) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 30, ..Default::default() });
        let init = HeftPlacer::default().place(&env, &dag);
        let mut de = DeltaEvaluator::new(&env, &dag, &init);
        for &(a, b, undo) in &moves {
            let t = TaskId(a % dag.len() as u32);
            if dag.task(t).constraints.pinned_node.is_some() {
                continue;
            }
            let feas = env.feasible_devices(dag.task(t));
            let dev = feas[b as usize % feas.len()];
            let was = de.assignment()[t.0 as usize];
            de.move_task(t, dev);
            if undo && dev != was {
                de.undo_last_move();
            }
        }
        let sched = de.schedule();
        let (oracle_sched, oracle_m) = evaluate(&env, &dag, &sched.placement);
        prop_assert_eq!(&sched.start, &oracle_sched.start);
        prop_assert_eq!(&sched.finish, &oracle_sched.finish);
        prop_assert_eq!(de.metrics(), oracle_m);
    }

    /// The delta-cost annealer and the clone-and-replay oracle walk the
    /// exact same Metropolis trajectory: identical final placements, for
    /// arbitrary objective weights and DAGs.
    #[test]
    fn anneal_delta_equals_full_recompute(
        seed in any::<u64>(),
        w_energy in 0u8..10,
        w_cost in 0u8..100,
    ) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 25, ..Default::default() });
        let delta = AnnealingPlacer {
            iters: 40,
            restarts: 2,
            seed,
            objective: WeightedObjective {
                w_time: 1.0,
                w_energy: w_energy as f64,
                w_cost: w_cost as f64,
            },
            ..Default::default()
        };
        let oracle = AnnealingPlacer { full_recompute: true, ..delta.clone() };
        prop_assert_eq!(delta.place(&env, &dag), oracle.place(&env, &dag));
    }

    /// The cached transfer matrix answers exactly what materializing the
    /// canonical route and asking it would — for every node pair.
    #[test]
    fn cached_transfer_times_match_paths(bytes in 0u64..(1 << 40)) {
        let built = continuum(&ContinuumSpec {
            fogs: 2,
            edges_per_fog: 2,
            sensors_per_edge: 2,
            ..Default::default()
        });
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let n = env.topology.node_count();
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let (src, dst) = (continuum_net::NodeId(s), continuum_net::NodeId(d));
                let via_path = env.path(src, dst).map(|p| p.transfer_time(bytes));
                prop_assert_eq!(env.transfer_time(src, dst, bytes), via_path);
            }
        }
    }
}
