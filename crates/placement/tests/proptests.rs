//! Property-based tests for the placement engine's core structures.

use continuum_model::standard_fleet;
use continuum_net::{continuum, ContinuumSpec};
use continuum_placement::{
    evaluate, DeviceTimeline, Env, GreedyEftPlacer, HeftPlacer, Placement, Placer,
};
use continuum_sim::{Rng, SimDuration, SimTime};
use continuum_workflow::{layered_random, LayeredSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// A DeviceTimeline never oversubscribes: any sequence of
    /// earliest_slot + reserve keeps the peak at or below the core count,
    /// in both insertion and append modes.
    #[test]
    fn timeline_never_oversubscribes(
        cores in 1u32..16,
        jobs in proptest::collection::vec((0u64..1000, 1u64..500, 1u32..8, any::<bool>()), 1..60),
    ) {
        let mut tl = DeviceTimeline::new(cores);
        for &(ready, dur_ms, need, insertion) in &jobs {
            let ready = SimTime::from_millis(ready);
            let dur = SimDuration::from_millis(dur_ms);
            let start = tl.earliest_slot(ready, dur, need, insertion);
            prop_assert!(start >= ready);
            // reserve() debug-asserts the capacity invariant internally.
            tl.reserve(start, dur, need);
        }
        // Accounting is exact.
        let expected: f64 = jobs
            .iter()
            .map(|&(_, d, n, _)| d as f64 / 1000.0 * n.min(cores) as f64)
            .sum();
        prop_assert!((tl.busy_core_seconds() - expected).abs() < 1e-6);
    }

    /// Insertion never starts later than append for the same query on the
    /// same timeline state.
    #[test]
    fn insertion_dominates_append(
        cores in 1u32..8,
        setup in proptest::collection::vec((0u64..500, 1u64..200, 1u32..4), 0..25),
        query in (0u64..500, 1u64..200, 1u32..4),
    ) {
        let mut tl = DeviceTimeline::new(cores);
        for &(ready, dur, need) in &setup {
            let s = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, true);
            tl.reserve(s, SimDuration::from_millis(dur), need);
        }
        let (ready, dur, need) = query;
        let ins = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, true);
        let app = tl.earliest_slot(SimTime::from_millis(ready), SimDuration::from_millis(dur), need, false);
        prop_assert!(ins <= app, "insertion {ins:?} later than append {app:?}");
    }

    /// Every placement a policy emits is feasible (each task's device
    /// satisfies its constraints) and evaluates to a dependency-respecting
    /// schedule whose makespan is at least the biggest single task's
    /// execution time.
    #[test]
    fn policies_emit_feasible_schedules(seed in any::<u64>(), greedy in any::<bool>()) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(seed);
        let dag = layered_random(&mut rng, &LayeredSpec { tasks: 40, ..Default::default() });
        let placement: Placement = if greedy {
            GreedyEftPlacer::default().place(&env, &dag)
        } else {
            HeftPlacer::default().place(&env, &dag)
        };
        for task in dag.tasks() {
            let dev = placement.device(task.id);
            let feas = env.feasible_devices(task);
            prop_assert!(feas.contains(&dev), "infeasible device for {}", task.name);
        }
        let (sched, metrics) = evaluate(&env, &dag, &placement);
        prop_assert!(sched.respects_dependencies(&dag));
        // Lower bound: the slowest committed task alone.
        let mut longest = 0.0f64;
        for task in dag.tasks() {
            let dev = placement.device(task.id);
            let spec = &env.fleet.device(dev).spec;
            longest = longest.max(
                spec.compute_time_parallel(task.work_flops, task.parallelism).as_secs_f64(),
            );
        }
        prop_assert!(metrics.makespan_s >= longest * 0.999);
    }
}
