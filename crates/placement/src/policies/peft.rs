//! PEFT: Predict Earliest Finish Time (Arabnejad & Barbosa, 2014).
//!
//! PEFT improves on HEFT with an *optimistic cost table* (OCT):
//! `oct[t][d]` is the best-case remaining path cost from task `t` to the
//! exit, assuming `t` runs on device `d` and every descendant takes its
//! own best choice. Tasks are prioritized by mean OCT, and each task is
//! committed to the device minimizing `EFT + OCT` — one step of lookahead
//! that HEFT lacks, at O(n·d) extra table cost.
//!
//! On continuum fleets with dozens of devices the full `n × d` table is
//! affordable and the lookahead pays when a locally-fast device strands a
//! task's descendants far from their next good home.

use super::Placer;
use crate::env::Env;
use crate::estimate::{Estimator, Placement};
use continuum_model::DeviceId;
use continuum_workflow::{Dag, TaskId};

/// The PEFT placement policy.
#[derive(Debug, Clone)]
pub struct PeftPlacer {
    /// Scan device candidates under rayon. Picks are bit-identical to the
    /// serial scan: candidate scores are scan-order independent and the
    /// reduction uses the same (score, device id) total order.
    pub parallel: bool,
}

impl Default for PeftPlacer {
    fn default() -> Self {
        PeftPlacer { parallel: true }
    }
}

impl PeftPlacer {
    /// Single-threaded candidate scans; the equivalence baseline.
    pub fn serial() -> Self {
        PeftPlacer { parallel: false }
    }
}

impl PeftPlacer {
    /// Compute the optimistic cost table: `oct[task][device]`, in seconds.
    ///
    /// Communication between tasks is charged at the mean bandwidth when
    /// the descendant runs on a *different* device (the standard PEFT
    /// approximation).
    pub fn oct(env: &Env, dag: &Dag) -> Vec<Vec<f64>> {
        let devices = env.fleet.devices();
        let n_dev = devices.len();
        let mean_bps = env.mean_bandwidth();
        let mut oct = vec![vec![0.0f64; n_dev]; dag.len()];
        // Reverse topological order: exits first.
        let order = dag.topo_order();
        for &t in order.iter().rev() {
            if dag.succs(t).is_empty() {
                continue; // exit tasks: all zeros
            }
            for d in 0..n_dev {
                let mut worst_succ = 0.0f64;
                for &s in dag.succs(t) {
                    // Bytes s consumes from t.
                    let bytes: u64 = dag
                        .task(s)
                        .inputs
                        .iter()
                        .filter(|&&x| dag.producer(x) == Some(t))
                        .map(|&x| dag.data(x).bytes)
                        .sum();
                    let mut best = f64::INFINITY;
                    for (w, dev_w) in devices.iter().enumerate() {
                        let task_s = dag.task(s);
                        let exec = dev_w
                            .spec
                            .compute_time_parallel(task_s.work_flops, task_s.parallelism)
                            .as_secs_f64();
                        let comm = if w == d { 0.0 } else { bytes as f64 / mean_bps };
                        let v = oct[s.0 as usize][w] + exec + comm;
                        if v < best {
                            best = v;
                        }
                    }
                    worst_succ = worst_succ.max(best);
                }
                oct[t.0 as usize][d] = worst_succ;
            }
        }
        oct
    }

    /// PEFT rank: mean OCT across devices, descending.
    fn rank_order(oct: &[Vec<f64>], dag: &Dag) -> Vec<TaskId> {
        let rank: Vec<f64> = oct
            .iter()
            .map(|row| row.iter().sum::<f64>() / row.len() as f64)
            .collect();
        let mut order: Vec<TaskId> = (0..dag.len() as u32).map(TaskId).collect();
        order.sort_by(|a, b| {
            rank[b.0 as usize]
                .partial_cmp(&rank[a.0 as usize])
                .expect("NaN rank")
                .then(a.0.cmp(&b.0))
        });
        order
    }
}

impl Placer for PeftPlacer {
    fn name(&self) -> &'static str {
        "peft"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let oct = Self::oct(env, dag);
        let mut est = Estimator::new(env, dag);
        // PEFT's mean-OCT rank is not guaranteed topological; process a
        // ready queue ordered by rank instead.
        let order = Self::rank_order(&oct, dag);
        let mut pos = vec![0usize; dag.len()];
        for (i, t) in order.iter().enumerate() {
            pos[t.0 as usize] = i;
        }
        let mut indeg: Vec<u32> = (0..dag.len())
            .map(|i| dag.preds(TaskId(i as u32)).len() as u32)
            .collect();
        let mut ready: Vec<TaskId> = (0..dag.len())
            .filter(|&i| indeg[i] == 0)
            .map(|i| TaskId(i as u32))
            .collect();
        while !ready.is_empty() {
            // Highest-rank ready task.
            let (k, _) = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| pos[t.0 as usize])
                .expect("ready non-empty");
            let t = ready.swap_remove(k);
            let feas = env.feasible_devices(dag.task(t));
            let score = |d: DeviceId| {
                let (_, fin) = est.eft(t, d, true);
                // Lookahead: add the optimistic remaining cost.
                (fin.as_secs_f64() + oct[t.0 as usize][d.0 as usize], d)
            };
            let scored: Vec<(f64, DeviceId)> =
                if self.parallel && feas.len() >= 16 && rayon::current_num_threads() > 1 {
                    use rayon::prelude::*;
                    feas.into_par_iter().map(score).collect()
                } else {
                    feas.into_iter().map(score).collect()
                };
            let best: DeviceId = scored
                .into_iter()
                .min_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("NaN score")
                        .then(a.1.cmp(&b.1))
                })
                .expect("feasible set non-empty")
                .1;
            est.commit(t, best, true);
            for &s in dag.succs(t) {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        est.into_schedule().placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::policies::{HeftPlacer, RandomPlacer};
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::Rng;
    use continuum_workflow::{layered_random, LayeredSpec};

    fn env() -> Env {
        let built = continuum(&ContinuumSpec::default());
        Env::new(built.topology.clone(), standard_fleet(&built))
    }

    #[test]
    fn oct_zero_at_exits_monotone_upstream() {
        let env = env();
        let mut g = Dag::new("chain");
        let src = env.fleet.devices()[0].node;
        let mut prev = g.add_input("in", 1 << 20, src);
        for i in 0..4 {
            let out = g.add_item(format!("d{i}"), 1 << 20);
            g.add_task(format!("t{i}"), 1e10, vec![prev], vec![out]);
            prev = out;
        }
        let oct = PeftPlacer::oct(&env, &g);
        // Exit row is all zeros.
        assert!(oct[3].iter().all(|&v| v == 0.0));
        // Upstream rows grow (more remaining work).
        let mean = |row: &Vec<f64>| row.iter().sum::<f64>() / row.len() as f64;
        assert!(mean(&oct[0]) > mean(&oct[1]));
        assert!(mean(&oct[1]) > mean(&oct[2]));
        assert!(mean(&oct[2]) > mean(&oct[3]));
    }

    #[test]
    fn peft_valid_and_competitive_with_heft() {
        let env = env();
        for seed in [3u64, 9, 27] {
            let mut rng = Rng::new(seed);
            let dag = layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 100,
                    ..Default::default()
                },
            );
            let placement = PeftPlacer::default().place(&env, &dag);
            let (sched, m_peft) = evaluate(&env, &dag, &placement);
            assert!(sched.respects_dependencies(&dag));
            let (_, m_heft) = evaluate(&env, &dag, &HeftPlacer::default().place(&env, &dag));
            let (_, m_rand) = evaluate(&env, &dag, &RandomPlacer::new(seed).place(&env, &dag));
            assert!(m_peft.makespan_s < m_rand.makespan_s);
            // PEFT and HEFT should be in the same league (within 2x).
            assert!(
                m_peft.makespan_s < m_heft.makespan_s * 2.0,
                "seed {seed}: peft {} vs heft {}",
                m_peft.makespan_s,
                m_heft.makespan_s
            );
        }
    }

    #[test]
    fn peft_deterministic() {
        let env = env();
        let mut rng = Rng::new(81);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 60,
                ..Default::default()
            },
        );
        assert_eq!(
            PeftPlacer::default().place(&env, &dag),
            PeftPlacer::default().place(&env, &dag)
        );
    }
}
