//! Min-Min and Max-Min batch heuristics (Ibarra & Kim lineage), adapted
//! to dependent tasks via a ready set.
//!
//! Both maintain the set of *ready* tasks (all predecessors committed).
//! Each round, every ready task's best (device, EFT) is computed; Min-Min
//! commits the task with the globally smallest EFT (clears small work
//! fast, risks starving the critical path), while Max-Min commits the
//! largest (prioritizes long tasks, often better makespan on heavy-tailed
//! workloads). Both are quadratic in the ready-set size — the price of
//! look-at-everything greediness HEFT's ranking avoids.

use super::baselines::best_eft_device;
use super::Placer;
use crate::env::Env;
use crate::estimate::{Estimator, Placement};
use continuum_workflow::{Dag, TaskId};

/// Whether a round commits the smallest or largest best-EFT task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    MinMin,
    MaxMin,
}

/// The Min-Min heuristic.
#[derive(Debug, Clone, Default)]
pub struct MinMinPlacer;

/// The Max-Min heuristic.
#[derive(Debug, Clone, Default)]
pub struct MaxMinPlacer;

fn place(env: &Env, dag: &Dag, flavor: Flavor) -> Placement {
    let mut est = Estimator::new(env, dag);
    let n = dag.len();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.preds(TaskId(i as u32)).len() as u32)
        .collect();
    let mut ready: Vec<TaskId> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| TaskId(i as u32))
        .collect();
    let mut committed = 0usize;
    while committed < n {
        assert!(!ready.is_empty(), "cycle in validated DAG?");
        // Best (EFT, device) per ready task.
        let mut best: Option<(continuum_sim::SimTime, TaskId, continuum_model::DeviceId)> = None;
        for &t in &ready {
            let dev = best_eft_device(&est, env, dag, t, None, true, false);
            let (_, fin) = est.eft(t, dev, true);
            let better = match (&best, flavor) {
                (None, _) => true,
                (Some((bf, bt, _)), Flavor::MinMin) => (fin, t) < (*bf, *bt),
                (Some((bf, bt, _)), Flavor::MaxMin) => fin > *bf || (fin == *bf && t < *bt),
            };
            if better {
                best = Some((fin, t, dev));
            }
        }
        let (_, t, dev) = best.expect("ready set non-empty");
        est.commit(t, dev, true);
        committed += 1;
        ready.retain(|&x| x != t);
        for &s in dag.succs(t) {
            indeg[s.0 as usize] -= 1;
            if indeg[s.0 as usize] == 0 {
                ready.push(s);
            }
        }
    }
    est.into_schedule().placement
}

impl Placer for MinMinPlacer {
    fn name(&self) -> &'static str {
        "min-min"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        place(env, dag, Flavor::MinMin)
    }
}

impl Placer for MaxMinPlacer {
    fn name(&self) -> &'static str {
        "max-min"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        place(env, dag, Flavor::MaxMin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::policies::RandomPlacer;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::Rng;
    use continuum_workflow::{layered_random, LayeredSpec};

    fn env() -> Env {
        let built = continuum(&ContinuumSpec::default());
        Env::new(built.topology.clone(), standard_fleet(&built))
    }

    #[test]
    fn both_flavors_valid_and_beat_random() {
        let env = env();
        let mut rng = Rng::new(51);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 80,
                ..Default::default()
            },
        );
        for placer in [&MinMinPlacer as &dyn Placer, &MaxMinPlacer] {
            let placement = placer.place(&env, &dag);
            assert_eq!(placement.assignment.len(), dag.len(), "{}", placer.name());
            let (sched, m) = evaluate(&env, &dag, &placement);
            assert!(sched.respects_dependencies(&dag), "{}", placer.name());
            let (_, m_rand) = evaluate(&env, &dag, &RandomPlacer::new(1).place(&env, &dag));
            assert!(m.makespan_s < m_rand.makespan_s, "{}", placer.name());
        }
    }

    #[test]
    fn flavors_differ_on_textbook_case() {
        // Two single-core devices, one fast and one slow; one big task and
        // two small ones, all independent. Min-Min packs everything onto
        // the fast device; Max-Min commits the big task there first, which
        // pushes a small task to the slow device.
        use continuum_model::{catalog, DeviceClass};
        let mut topo = continuum_net::Topology::new();
        let fast_n = topo.add_node("fast", continuum_net::Tier::Cloud);
        let slow_n = topo.add_node("slow", continuum_net::Tier::Edge);
        topo.add_link(
            fast_n,
            slow_n,
            continuum_sim::SimDuration::from_micros(10),
            1e9,
        );
        let mut fleet = continuum_model::Fleet::new();
        let mut fast = catalog::spec(DeviceClass::CloudVm);
        fast.cores = 1;
        fast.flops = 3.75e10;
        let mut slow = catalog::spec(DeviceClass::EdgeGateway);
        slow.cores = 1;
        slow.flops = 3e9;
        fleet.add(fast_n, fast);
        fleet.add(slow_n, slow);
        let env = Env::new(topo, fleet);

        let mut dag = Dag::new("textbook");
        let src = fast_n;
        for (i, work) in [6e10, 3e9, 3e9].into_iter().enumerate() {
            let input = dag.add_input(format!("in{i}"), 1, src);
            let out = dag.add_item(format!("out{i}"), 1);
            dag.add_task(format!("t{i}"), work, vec![input], vec![out]);
        }
        let a = MinMinPlacer.place(&env, &dag);
        let b = MaxMinPlacer.place(&env, &dag);
        assert_ne!(a, b, "min-min and max-min coincide on the textbook case");
        // Min-Min keeps everything on the fast device.
        assert!(a.assignment.iter().all(|d| d.0 == 0), "{a:?}");
        // Max-Min offloads at least one small task to the slow device.
        assert!(b.assignment.iter().any(|d| d.0 == 1), "{b:?}");
    }

    #[test]
    fn deterministic() {
        let env = env();
        let mut rng = Rng::new(57);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 40,
                ..Default::default()
            },
        );
        assert_eq!(
            MinMinPlacer.place(&env, &dag),
            MinMinPlacer.place(&env, &dag)
        );
        assert_eq!(
            MaxMinPlacer.place(&env, &dag),
            MaxMinPlacer.place(&env, &dag)
        );
    }
}
