//! Data-gravity placement: run work where *data arrival + compute* is
//! cheapest, ignoring queues.
//!
//! For each task (topological order) the policy ranks feasible devices by
//! `ready_time + execution_time` — the completion a task would see on an
//! idle device — and breaks ties by true earliest finish time. Unlike
//! greedy EFT it is blind to backlog, so on wide DAGs it piles work onto
//! the device nearest the data; on data-intensive workflows it matches
//! HEFT at a fraction of the decision cost. Experiment F1/F3 show both
//! sides of that trade-off.

use super::Placer;
use crate::env::Env;
use crate::estimate::{Estimator, Placement};
use continuum_workflow::Dag;

/// The data-gravity policy.
#[derive(Debug, Clone, Default)]
pub struct DataAwarePlacer;

impl Placer for DataAwarePlacer {
    fn name(&self) -> &'static str {
        "data-aware"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let mut est = Estimator::new(env, dag);
        for t in dag.topo_order() {
            let feas = env.feasible_devices(dag.task(t));
            let best = feas
                .into_iter()
                .map(|d| {
                    // Queue-blind completion: data arrival plus compute on
                    // an idle device.
                    let idle_finish = est.ready_time(t, d) + est.exec_time(t, d);
                    let (_, finish) = est.eft(t, d, true);
                    (idle_finish, finish, d)
                })
                .min()
                .expect("feasible set non-empty")
                .2;
            est.commit(t, best, true);
        }
        est.into_schedule().placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::policies::RandomPlacer;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_workflow::{analytics_pipeline, PipelineSpec};

    #[test]
    fn data_aware_moves_fewer_bytes_than_random() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        // Data-heavy, compute-light pipeline.
        let dag = analytics_pipeline(&PipelineSpec {
            source: built.sensors[0],
            input_bytes: 500 << 20,
            work_per_byte: 1.0,
            ..Default::default()
        });
        let (_, m_da) = evaluate(&env, &dag, &DataAwarePlacer.place(&env, &dag));
        let (_, m_rand) = evaluate(&env, &dag, &RandomPlacer::new(5).place(&env, &dag));
        assert!(
            m_da.bytes_moved <= m_rand.bytes_moved,
            "data-aware {} vs random {}",
            m_da.bytes_moved,
            m_rand.bytes_moved
        );
    }

    #[test]
    fn schedule_valid() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let dag = analytics_pipeline(&PipelineSpec {
            source: built.sensors[0],
            ..Default::default()
        });
        let placement = DataAwarePlacer.place(&env, &dag);
        let (sched, _) = evaluate(&env, &dag, &placement);
        assert!(sched.respects_dependencies(&dag));
    }
}
