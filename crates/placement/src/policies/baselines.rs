//! Baseline policies: random, round-robin, tier-restricted, and greedy EFT.
//!
//! These answer "where should I compute?" the ways the keynote argues
//! against: ignore the network (random/round-robin), or hard-code a tier
//! ("everything at the edge", "everything in the cloud"). Greedy EFT is the
//! strongest myopic baseline: locally optimal, no look-ahead.

use super::Placer;
use crate::env::Env;
use crate::estimate::{Estimator, Placement};
use continuum_model::DeviceId;
use continuum_net::Tier;
use continuum_sim::Rng;
use continuum_workflow::Dag;

/// Uniformly random feasible device per task.
#[derive(Debug, Clone)]
pub struct RandomPlacer {
    seed: u64,
}

impl RandomPlacer {
    /// Random placer with a fixed seed (deterministic).
    pub fn new(seed: u64) -> Self {
        RandomPlacer { seed }
    }
}

impl Placer for RandomPlacer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let mut rng = Rng::new(self.seed);
        let assignment = dag
            .tasks()
            .iter()
            .map(|t| {
                let feas = env.feasible_devices(t);
                *rng.choose(&feas)
            })
            .collect();
        Placement { assignment }
    }
}

/// Cycle through feasible devices in id order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPlacer;

impl Placer for RoundRobinPlacer {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let mut next = 0usize;
        let assignment = dag
            .tasks()
            .iter()
            .map(|t| {
                let feas = env.feasible_devices(t);
                let d = feas[next % feas.len()];
                next += 1;
                d
            })
            .collect();
        Placement { assignment }
    }
}

/// Greedy earliest-finish-time list scheduling in topological order.
#[derive(Debug, Clone)]
pub struct GreedyEftPlacer {
    /// Consider gaps between reservations (insertion-based slots).
    pub insertion: bool,
}

impl Default for GreedyEftPlacer {
    fn default() -> Self {
        GreedyEftPlacer { insertion: true }
    }
}

impl Placer for GreedyEftPlacer {
    fn name(&self) -> &'static str {
        if self.insertion {
            "greedy-eft"
        } else {
            "greedy-eft-append"
        }
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let mut est = Estimator::new(env, dag);
        for t in dag.topo_order() {
            let best = best_eft_device(&est, env, dag, t, None, self.insertion, false);
            est.commit(t, best, self.insertion);
        }
        est.into_schedule().placement
    }
}

/// Keep all unpinned work within a tier range, greedy EFT inside it.
///
/// Pinned tasks always run at their pinned node regardless of tier (a
/// capture task cannot move to the cloud — only its successors can).
#[derive(Debug, Clone)]
pub struct TierPlacer {
    lo: Tier,
    hi: Tier,
    label: &'static str,
}

impl TierPlacer {
    /// "Everything at the edge": sensors and edge gateways only.
    pub fn edge_only() -> Self {
        TierPlacer {
            lo: Tier::Sensor,
            hi: Tier::Edge,
            label: "edge-only",
        }
    }

    /// "Everything in the cloud": cloud VMs only.
    pub fn cloud_only() -> Self {
        TierPlacer {
            lo: Tier::Cloud,
            hi: Tier::Cloud,
            label: "cloud-only",
        }
    }

    /// Custom range with a label.
    pub fn range(lo: Tier, hi: Tier, label: &'static str) -> Self {
        TierPlacer { lo, hi, label }
    }
}

impl Placer for TierPlacer {
    fn name(&self) -> &'static str {
        self.label
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let mut est = Estimator::new(env, dag);
        for t in dag.topo_order() {
            let task = dag.task(t);
            let restrict = if task.constraints.pinned_node.is_some() {
                None // pinned tasks ignore the tier restriction
            } else {
                Some((self.lo, self.hi))
            };
            let best = best_eft_device(&est, env, dag, t, restrict, true, false);
            est.commit(t, best, true);
        }
        est.into_schedule().placement
    }
}

/// Candidate pools smaller than this are always scanned serially: the
/// fork/join overhead outweighs a handful of EFT probes.
const PAR_SCAN_MIN: usize = 16;

/// Minimum-EFT feasible device for `t`, optionally restricted to a tier
/// range (falling back to the unrestricted feasible set if the restriction
/// empties it). Ties break toward the lower device id.
///
/// With `parallel`, the candidate probes run under rayon; each candidate's
/// `(finish, device)` score is independent of scan order and the winner is
/// reduced with the same total order as the serial scan, so the pick is
/// bit-identical either way (proptested in `tests/proptests.rs`).
pub(crate) fn best_eft_device(
    est: &Estimator<'_>,
    env: &Env,
    dag: &Dag,
    t: continuum_workflow::TaskId,
    tier_range: Option<(Tier, Tier)>,
    insertion: bool,
    parallel: bool,
) -> DeviceId {
    let task = dag.task(t);
    let feas = env.feasible_devices(task);
    // Both arms borrow: the restriction (when active and non-empty) is the
    // only allocation; the seed cloned the whole feasible set on the
    // unrestricted arm of every scan.
    let restricted: Option<Vec<DeviceId>> = tier_range.and_then(|(lo, hi)| {
        let r: Vec<DeviceId> = feas
            .iter()
            .copied()
            .filter(|&d| {
                let tier = env.fleet.device(d).spec.tier;
                tier >= lo && tier <= hi
            })
            .collect();
        (!r.is_empty()).then_some(r)
    });
    let cands: &[DeviceId] = restricted.as_deref().unwrap_or(&feas);
    let score = |d: DeviceId| (est.eft(t, d, insertion).1, d);
    // A single-threaded pool would pay the materialization overhead with
    // no upside; stay on the allocation-free serial scan there.
    if parallel && cands.len() >= PAR_SCAN_MIN && rayon::current_num_threads() > 1 {
        use rayon::prelude::*;
        let scored: Vec<(continuum_sim::SimTime, DeviceId)> =
            cands.into_par_iter().map(|&d| score(d)).collect();
        scored.into_iter().min()
    } else {
        cands.iter().map(|&d| score(d)).min()
    }
    .expect("feasible set is non-empty")
    .1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_workflow::{analytics_pipeline, PipelineSpec};

    fn env_and_dag() -> (Env, Dag) {
        let built = continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        let spec = PipelineSpec {
            source: built.sensors[0],
            ..Default::default()
        };
        let dag = analytics_pipeline(&spec);
        (Env::new(built.topology, fleet), dag)
    }

    #[test]
    fn all_baselines_produce_valid_schedules() {
        let (env, dag) = env_and_dag();
        let placers: Vec<Box<dyn Placer>> = vec![
            Box::new(RandomPlacer::new(1)),
            Box::new(RoundRobinPlacer),
            Box::new(GreedyEftPlacer::default()),
            Box::new(TierPlacer::edge_only()),
            Box::new(TierPlacer::cloud_only()),
        ];
        for p in placers {
            let placement = p.place(&env, &dag);
            assert_eq!(placement.assignment.len(), dag.len(), "{}", p.name());
            let (sched, m) = evaluate(&env, &dag, &placement);
            assert!(sched.respects_dependencies(&dag), "{}", p.name());
            assert!(m.makespan_s > 0.0, "{}", p.name());
        }
    }

    #[test]
    fn pinned_capture_stays_pinned_everywhere() {
        let (env, dag) = env_and_dag();
        let pinned_node = dag
            .task(continuum_workflow::TaskId(0))
            .constraints
            .pinned_node
            .unwrap();
        for p in [
            &TierPlacer::cloud_only() as &dyn Placer,
            &TierPlacer::edge_only(),
            &GreedyEftPlacer::default(),
        ] {
            let placement = p.place(&env, &dag);
            let dev = placement.device(continuum_workflow::TaskId(0));
            assert_eq!(env.node_of(dev), pinned_node, "{}", p.name());
        }
    }

    #[test]
    fn tier_placers_respect_their_tier() {
        let (env, dag) = env_and_dag();
        let placement = TierPlacer::cloud_only().place(&env, &dag);
        for (i, &dev) in placement.assignment.iter().enumerate() {
            let task = dag.task(continuum_workflow::TaskId(i as u32));
            if task.constraints.pinned_node.is_none() {
                assert_eq!(env.fleet.device(dev).spec.tier, Tier::Cloud);
            }
        }
    }

    #[test]
    fn greedy_beats_random_on_pipeline() {
        let (env, dag) = env_and_dag();
        let (_, greedy) = evaluate(&env, &dag, &GreedyEftPlacer::default().place(&env, &dag));
        let (_, random) = evaluate(&env, &dag, &RandomPlacer::new(17).place(&env, &dag));
        assert!(
            greedy.makespan_s <= random.makespan_s,
            "greedy {} vs random {}",
            greedy.makespan_s,
            random.makespan_s
        );
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (env, dag) = env_and_dag();
        let a = RandomPlacer::new(9).place(&env, &dag);
        let b = RandomPlacer::new(9).place(&env, &dag);
        assert_eq!(a, b);
    }
}
