//! Placement policies: baselines and continuum-aware schedulers.

mod anneal;
mod baselines;
mod cpop;
mod data_aware;
mod heft;
mod minmax;
mod peft;

pub use anneal::AnnealingPlacer;
pub use baselines::{GreedyEftPlacer, RandomPlacer, RoundRobinPlacer, TierPlacer};
pub use cpop::CpopPlacer;
pub use data_aware::DataAwarePlacer;
pub use heft::HeftPlacer;
pub use minmax::{MaxMinPlacer, MinMinPlacer};
pub use peft::PeftPlacer;

use crate::env::Env;
use crate::estimate::Placement;
use continuum_workflow::Dag;

/// A placement policy: maps (environment, workflow) to an assignment.
///
/// Implementations must be deterministic for a fixed configuration — the
/// stochastic ones take explicit seeds.
///
/// ```
/// use continuum_model::standard_fleet;
/// use continuum_net::{continuum, ContinuumSpec};
/// use continuum_placement::{evaluate, Env, HeftPlacer, Placer};
/// use continuum_workflow::{analytics_pipeline, PipelineSpec};
///
/// let built = continuum(&ContinuumSpec::default());
/// let env = Env::new(built.topology.clone(), standard_fleet(&built));
/// let dag = analytics_pipeline(&PipelineSpec {
///     source: built.sensors[0],
///     ..Default::default()
/// });
/// let placement = HeftPlacer::default().place(&env, &dag);
/// let (schedule, metrics) = evaluate(&env, &dag, &placement);
/// assert!(schedule.respects_dependencies(&dag));
/// assert!(metrics.makespan_s > 0.0);
/// ```
pub trait Placer: Sync {
    /// Stable identifier used in experiment output rows.
    fn name(&self) -> &'static str;

    /// Produce a placement for every task of `dag`.
    fn place(&self, env: &Env, dag: &Dag) -> Placement;
}

/// The standard policy line-up compared throughout the experiments.
pub fn standard_lineup() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(RandomPlacer::new(0xC0FFEE)),
        Box::new(RoundRobinPlacer),
        Box::new(TierPlacer::edge_only()),
        Box::new(TierPlacer::cloud_only()),
        Box::new(GreedyEftPlacer::default()),
        Box::new(DataAwarePlacer),
        Box::new(MinMinPlacer),
        Box::new(MaxMinPlacer),
        Box::new(CpopPlacer::default()),
        Box::new(PeftPlacer::default()),
        Box::new(HeftPlacer::default()),
    ]
}
