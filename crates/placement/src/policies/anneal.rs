//! Simulated-annealing refinement for multi-objective placement.
//!
//! Starts from the HEFT assignment and explores single-task reassignments
//! under a Metropolis acceptance rule on a [`WeightedObjective`] score.
//! Restarts run in parallel with rayon (each with an independent seeded
//! RNG), and the best result is selected deterministically. This is the
//! engine behind the Pareto-front experiment (F6): sweeping the weights
//! traces the makespan/energy/cost trade-off surface.
//!
//! Moves are scored through a [`DeltaEvaluator`]: a reassignment
//! re-schedules only the tasks it can affect (the moved task, the later
//! tasks on the two touched devices, and downstream ripples) instead of
//! replaying the whole DAG. Rejected moves are undone from a snapshot
//! (plain copies, no re-propagation). The delta path is exact — scores,
//! and therefore the Metropolis
//! decisions and the final placement, are bit-identical to the
//! clone-and-replay oracle retained behind
//! [`AnnealingPlacer::full_recompute`].

use super::{HeftPlacer, Placer};
use crate::delta::DeltaEvaluator;
use crate::env::Env;
use crate::estimate::Placement;
use crate::objective::{evaluate, Metrics, WeightedObjective};
use continuum_sim::Rng;
use continuum_workflow::{Dag, TaskId};
use rayon::prelude::*;

/// Simulated-annealing placement refiner.
#[derive(Debug, Clone)]
pub struct AnnealingPlacer {
    /// Scalarization of (time, energy, cost).
    pub objective: WeightedObjective,
    /// Moves per restart.
    pub iters: u32,
    /// Independent restarts (parallelized).
    pub restarts: u32,
    /// Base seed; restart `i` uses `seed + i`.
    pub seed: u64,
    /// Score every move by re-simulating the whole placement instead of
    /// delta re-scoring. Slow; kept as the equivalence oracle (the two
    /// modes produce identical placements).
    pub full_recompute: bool,
}

impl Default for AnnealingPlacer {
    fn default() -> Self {
        AnnealingPlacer {
            objective: WeightedObjective::makespan(),
            iters: 400,
            restarts: 4,
            seed: 0xA11EA1,
            full_recompute: false,
        }
    }
}

impl AnnealingPlacer {
    /// Anneal from `init`, returning the best placement and score found.
    fn run_one(&self, env: &Env, dag: &Dag, init: &Placement, seed: u64) -> (Placement, f64) {
        let mut rng = Rng::new(seed);
        let mut cur = init.clone();
        let mut delta = (!self.full_recompute).then(|| DeltaEvaluator::new(env, dag, init));
        let m0 = match &delta {
            Some(d) => d.metrics(),
            None => evaluate(env, dag, &cur).1,
        };
        let mut cur_score = self.objective.score(&m0);
        let mut best = cur.clone();
        let mut best_score = cur_score;

        // Geometric cooling from 10% of the initial score to ~0.01%.
        let t0 = (cur_score * 0.10).max(f64::MIN_POSITIVE);
        let t_end = (cur_score * 1e-4).max(f64::MIN_POSITIVE);
        let alpha = (t_end / t0).powf(1.0 / self.iters.max(1) as f64);
        let mut temp = t0;

        // Movable tasks: anything not pinned.
        let movable: Vec<u32> = dag
            .tasks()
            .iter()
            .filter(|t| t.constraints.pinned_node.is_none())
            .map(|t| t.id.0)
            .collect();
        if movable.is_empty() {
            return (cur, cur_score);
        }

        for _ in 0..self.iters {
            let ti = movable[rng.index(movable.len())];
            let task = dag.task(continuum_workflow::TaskId(ti));
            let feas = env.feasible_devices(task);
            let new_dev = *rng.choose(&feas);
            let old_dev = cur.assignment[ti as usize];
            if new_dev == old_dev {
                temp *= alpha;
                continue;
            }
            cur.assignment[ti as usize] = new_dev;
            let score = match &mut delta {
                Some(d) => {
                    d.move_task(TaskId(ti), new_dev);
                    self.objective.score(&d.metrics())
                }
                None => self.objective.score(&evaluate(env, dag, &cur).1),
            };
            let accept = score <= cur_score || rng.f64() < ((cur_score - score) / temp).exp();
            if accept {
                cur_score = score;
                if score < best_score {
                    best_score = score;
                    best = cur.clone();
                }
            } else {
                cur.assignment[ti as usize] = old_dev;
                if let Some(d) = &mut delta {
                    d.undo_last_move();
                }
            }
            temp *= alpha;
        }
        (best, best_score)
    }

    /// Place and also return the metrics of the chosen placement.
    pub fn place_with_metrics(&self, env: &Env, dag: &Dag) -> (Placement, Metrics) {
        let placement = self.place(env, dag);
        let (_, m) = evaluate(env, dag, &placement);
        (placement, m)
    }
}

impl Placer for AnnealingPlacer {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let init = HeftPlacer::default().place(env, dag);
        let results: Vec<(u32, Placement, f64)> = (0..self.restarts)
            .into_par_iter()
            .map(|i| {
                let (p, s) = self.run_one(env, dag, &init, self.seed.wrapping_add(i as u64));
                (i, p, s)
            })
            .collect();
        // Deterministic winner: best score, lowest restart index on ties.
        results
            .into_iter()
            .min_by(|a, b| {
                a.2.partial_cmp(&b.2)
                    .expect("NaN score")
                    .then(a.0.cmp(&b.0))
            })
            .map(|(_, p, _)| p)
            .expect("at least one restart")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_workflow::{layered_random, LayeredSpec};

    fn setup() -> (Env, Dag) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(31);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 40,
                ..Default::default()
            },
        );
        (env, dag)
    }

    #[test]
    fn anneal_never_worse_than_heft_on_its_objective() {
        let (env, dag) = setup();
        let annealer = AnnealingPlacer {
            iters: 150,
            restarts: 2,
            ..Default::default()
        };
        let (_, m_anneal) = annealer.place_with_metrics(&env, &dag);
        let (_, m_heft) = evaluate(&env, &dag, &HeftPlacer::default().place(&env, &dag));
        let obj = WeightedObjective::makespan();
        assert!(
            obj.score(&m_anneal) <= obj.score(&m_heft) + 1e-9,
            "anneal {} vs heft {}",
            obj.score(&m_anneal),
            obj.score(&m_heft)
        );
    }

    #[test]
    fn energy_weight_changes_choice() {
        let (env, dag) = setup();
        let time_only = AnnealingPlacer {
            iters: 200,
            restarts: 2,
            objective: WeightedObjective {
                w_time: 1.0,
                w_energy: 0.0,
                w_cost: 0.0,
            },
            ..Default::default()
        };
        let energy_heavy = AnnealingPlacer {
            iters: 200,
            restarts: 2,
            objective: WeightedObjective {
                w_time: 0.001,
                w_energy: 100.0,
                w_cost: 0.0,
            },
            ..Default::default()
        };
        let (_, m_t) = time_only.place_with_metrics(&env, &dag);
        let (_, m_e) = energy_heavy.place_with_metrics(&env, &dag);
        // The energy-weighted run must not spend more energy than the
        // time-weighted run spends (it optimizes for it directly).
        assert!(
            m_e.energy_j <= m_t.energy_j * 1.001,
            "{} vs {}",
            m_e.energy_j,
            m_t.energy_j
        );
    }

    #[test]
    fn delta_matches_full_recompute_oracle() {
        // The delta path must make bit-identical Metropolis decisions, so
        // the placements (not just the scores) agree exactly — including
        // under a multi-term objective where every metric matters.
        let (env, dag) = setup();
        let fast = AnnealingPlacer {
            iters: 80,
            restarts: 2,
            objective: WeightedObjective {
                w_time: 1.0,
                w_energy: 5.0,
                w_cost: 50.0,
            },
            ..Default::default()
        };
        let slow = AnnealingPlacer {
            full_recompute: true,
            ..fast.clone()
        };
        assert_eq!(fast.place(&env, &dag), slow.place(&env, &dag));
    }

    #[test]
    fn anneal_deterministic() {
        let (env, dag) = setup();
        let a = AnnealingPlacer {
            iters: 60,
            restarts: 3,
            ..Default::default()
        };
        assert_eq!(a.place(&env, &dag), a.place(&env, &dag));
    }

    #[test]
    fn pinned_tasks_never_move() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let dag = continuum_workflow::analytics_pipeline(&continuum_workflow::PipelineSpec {
            source: built.sensors[0],
            ..Default::default()
        });
        let a = AnnealingPlacer {
            iters: 100,
            restarts: 2,
            ..Default::default()
        };
        let p = a.place(&env, &dag);
        let dev = p.device(continuum_workflow::TaskId(0));
        assert_eq!(env.node_of(dev), built.sensors[0]);
    }
}
