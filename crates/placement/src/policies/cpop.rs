//! CPOP: Critical-Path-on-a-Processor (Topcuoglu et al., 2002).
//!
//! Tasks are prioritized by upward + downward rank; the tasks on the
//! critical path are all bound to the single feasible device that executes
//! the whole path fastest, and everything else is scheduled by earliest
//! finish time from a priority-ordered ready queue.

use super::Placer;
use crate::env::Env;
use crate::estimate::{Estimator, Placement};
use continuum_model::DeviceId;
use continuum_workflow::{Dag, TaskId};
use std::collections::BinaryHeap;

/// The CPOP placement policy.
#[derive(Debug, Clone)]
pub struct CpopPlacer {
    /// Scan device candidates under rayon. Picks are bit-identical to the
    /// serial scan (total-order tie-break on finish then device id).
    pub parallel: bool,
}

impl Default for CpopPlacer {
    fn default() -> Self {
        CpopPlacer { parallel: true }
    }
}

impl CpopPlacer {
    /// Single-threaded candidate scans; the equivalence baseline.
    pub fn serial() -> Self {
        CpopPlacer { parallel: false }
    }
}

impl CpopPlacer {
    /// Downward ranks: longest mean-cost path from an entry task to `t`
    /// (excluding `t`'s own work).
    fn downward_ranks(env: &Env, dag: &Dag) -> Vec<f64> {
        let mean_flops = env.mean_core_flops();
        let mean_bps = env.mean_bandwidth();
        let order = dag.topo_order();
        let mut rank = vec![0.0f64; dag.len()];
        for &t in &order {
            for &p in dag.preds(t) {
                let bytes: u64 = dag
                    .task(t)
                    .inputs
                    .iter()
                    .filter(|&&d| dag.producer(d) == Some(p))
                    .map(|&d| dag.data(d).bytes)
                    .sum();
                let c = bytes as f64 / mean_bps;
                let w_p = dag.task(p).work_flops / mean_flops;
                let via = rank[p.0 as usize] + w_p + c;
                if via > rank[t.0 as usize] {
                    rank[t.0 as usize] = via;
                }
            }
        }
        rank
    }
}

impl Placer for CpopPlacer {
    fn name(&self) -> &'static str {
        "cpop"
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        let up = dag.upward_ranks(env.mean_core_flops(), env.mean_bandwidth());
        let down = Self::downward_ranks(env, dag);
        let prio: Vec<f64> = up.iter().zip(&down).map(|(u, d)| u + d).collect();
        let cp_len = prio.iter().cloned().fold(0.0f64, f64::max);
        let eps = 1e-9 * cp_len.max(1.0);

        // Walk the critical path from an entry task.
        let mut cp: Vec<TaskId> = Vec::new();
        let mut cur = dag
            .sources()
            .into_iter()
            .find(|t| (prio[t.0 as usize] - cp_len).abs() <= eps);
        while let Some(t) = cur {
            cp.push(t);
            cur = dag
                .succs(t)
                .iter()
                .copied()
                .find(|s| (prio[s.0 as usize] - cp_len).abs() <= eps);
        }

        // The CP device: feasible for every CP task, fastest per core.
        let cp_device: Option<DeviceId> = {
            let mut common: Option<Vec<DeviceId>> = None;
            for &t in &cp {
                let feas = env.feasible_devices(dag.task(t));
                common = Some(match common {
                    None => feas,
                    Some(prev) => prev.into_iter().filter(|d| feas.contains(d)).collect(),
                });
            }
            common.and_then(|c| {
                c.into_iter().max_by(|a, b| {
                    env.fleet
                        .device(*a)
                        .spec
                        .flops_per_core()
                        .partial_cmp(&env.fleet.device(*b).spec.flops_per_core())
                        .expect("NaN flops")
                        .then(b.0.cmp(&a.0))
                })
            })
        };
        let on_cp = {
            let mut v = vec![false; dag.len()];
            for &t in &cp {
                v[t.0 as usize] = true;
            }
            v
        };

        // Priority-ordered ready queue (max-heap on priority, id tiebreak).
        let mut est = Estimator::new(env, dag);
        let mut indeg: Vec<u32> = (0..dag.len())
            .map(|i| dag.preds(TaskId(i as u32)).len() as u32)
            .collect();

        // Wrapper for f64 ordering in the heap.
        #[derive(PartialEq, PartialOrd)]
        struct P(f64);
        impl Eq for P {}
        #[allow(clippy::derive_ord_xor_partial_ord)]
        impl Ord for P {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.partial_cmp(other).expect("NaN priority")
            }
        }
        // (priority, reverse id) so higher priority first, lower id on tie.
        let mut ready: BinaryHeap<(P, std::cmp::Reverse<u32>)> = BinaryHeap::new();
        for (i, &d) in indeg.iter().enumerate() {
            if d == 0 {
                ready.push((P(prio[i]), std::cmp::Reverse(i as u32)));
            }
        }
        while let Some((_, std::cmp::Reverse(ti))) = ready.pop() {
            let t = TaskId(ti);
            let device = if on_cp[ti as usize] {
                match cp_device {
                    Some(d) => d,
                    None => super::baselines::best_eft_device(
                        &est,
                        env,
                        dag,
                        t,
                        None,
                        true,
                        self.parallel,
                    ),
                }
            } else {
                super::baselines::best_eft_device(&est, env, dag, t, None, true, self.parallel)
            };
            est.commit(t, device, true);
            for &s in dag.succs(t) {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    ready.push((P(prio[s.0 as usize]), std::cmp::Reverse(s.0)));
                }
            }
        }
        est.into_schedule().placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::policies::RandomPlacer;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::Rng;
    use continuum_workflow::{layered_random, LayeredSpec};

    fn env() -> Env {
        let built = continuum(&ContinuumSpec::default());
        Env::new(built.topology.clone(), standard_fleet(&built))
    }

    #[test]
    fn cpop_valid_and_beats_random() {
        let env = env();
        let mut rng = Rng::new(13);
        let g = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 120,
                ..Default::default()
            },
        );
        let placement = CpopPlacer::default().place(&env, &g);
        assert_eq!(placement.assignment.len(), g.len());
        let (sched, m) = evaluate(&env, &g, &placement);
        assert!(sched.respects_dependencies(&g));
        let (_, m_rand) = evaluate(&env, &g, &RandomPlacer::new(3).place(&env, &g));
        assert!(m.makespan_s <= m_rand.makespan_s);
    }

    #[test]
    fn cp_tasks_share_a_device_on_a_chain() {
        // A pure chain IS the critical path; CPOP should co-locate it.
        let env = env();
        let mut g = Dag::new("chain");
        let src = env.fleet.devices()[0].node;
        let mut prev = g.add_input("in", 1 << 20, src);
        for i in 0..6 {
            let out = g.add_item(format!("d{i}"), 1 << 20);
            g.add_task(format!("t{i}"), 1e10, vec![prev], vec![out]);
            prev = out;
        }
        let placement = CpopPlacer::default().place(&env, &g);
        let first = placement.assignment[0];
        assert!(placement.assignment.iter().all(|&d| d == first));
    }

    #[test]
    fn cpop_deterministic() {
        let env = env();
        let mut rng = Rng::new(21);
        let g = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 60,
                ..Default::default()
            },
        );
        assert_eq!(
            CpopPlacer::default().place(&env, &g),
            CpopPlacer::default().place(&env, &g)
        );
    }
}
