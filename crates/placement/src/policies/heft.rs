//! HEFT: Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002),
//! adapted to the continuum.
//!
//! Tasks are prioritized by *upward rank* (critical-path distance to exit,
//! under mean compute speed and mean bandwidth) and assigned, in rank
//! order, to the feasible device that minimizes earliest finish time with
//! insertion-based slot search. This is the reference continuum-aware
//! policy of the reproduction.

use super::baselines::best_eft_device;
use super::Placer;
use crate::env::Env;
use crate::estimate::{Estimator, Placement};
use continuum_workflow::{Dag, TaskId};

/// The HEFT placement policy.
#[derive(Debug, Clone)]
pub struct HeftPlacer {
    /// Insertion-based slot search (the ablation flag; `true` is standard).
    pub insertion: bool,
    /// Scan device candidates under rayon. Picks are bit-identical to the
    /// serial scan (total-order tie-break on finish then device id).
    pub parallel: bool,
}

impl Default for HeftPlacer {
    fn default() -> Self {
        HeftPlacer {
            insertion: true,
            parallel: true,
        }
    }
}

impl HeftPlacer {
    /// Single-threaded candidate scans; the equivalence baseline.
    pub fn serial() -> Self {
        HeftPlacer {
            parallel: false,
            ..Default::default()
        }
    }
}

impl HeftPlacer {
    /// Rank-ordered task list: upward rank descending, id ascending on ties.
    pub fn rank_order(env: &Env, dag: &Dag) -> Vec<TaskId> {
        let ranks = dag.upward_ranks(env.mean_core_flops(), env.mean_bandwidth());
        let mut order: Vec<TaskId> = (0..dag.len() as u32).map(TaskId).collect();
        order.sort_by(|a, b| {
            ranks[b.0 as usize]
                .partial_cmp(&ranks[a.0 as usize])
                .expect("NaN rank")
                .then(a.0.cmp(&b.0))
        });
        order
    }
}

impl HeftPlacer {
    /// The full internal schedule HEFT committed to (assignment plus the
    /// start/finish times its slot search produced). Exposed so ablations
    /// can compare slot-search variants on the schedule each actually
    /// built, not on a re-replayed one.
    pub fn schedule(&self, env: &Env, dag: &Dag) -> crate::estimate::EstimatedSchedule {
        let mut est = Estimator::new(env, dag);
        for t in Self::rank_order(env, dag) {
            let best = best_eft_device(&est, env, dag, t, None, self.insertion, self.parallel);
            est.commit(t, best, self.insertion);
        }
        est.into_schedule()
    }
}

impl Placer for HeftPlacer {
    fn name(&self) -> &'static str {
        if self.insertion {
            "heft"
        } else {
            "heft-append"
        }
    }

    fn place(&self, env: &Env, dag: &Dag) -> Placement {
        self.schedule(env, dag).placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::policies::{RandomPlacer, RoundRobinPlacer};
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::Rng;
    use continuum_workflow::{layered_random, LayeredSpec};

    fn env() -> Env {
        let built = continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        Env::new(built.topology, fleet)
    }

    fn dag(seed: u64, n: usize) -> Dag {
        let mut rng = Rng::new(seed);
        layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: n,
                ..Default::default()
            },
        )
    }

    #[test]
    fn rank_order_is_topological() {
        let env = env();
        let g = dag(5, 120);
        let order = HeftPlacer::rank_order(&env, &g);
        let mut pos = vec![0usize; g.len()];
        for (i, t) in order.iter().enumerate() {
            pos[t.0 as usize] = i;
        }
        for t in g.tasks() {
            for p in g.preds(t.id) {
                assert!(
                    pos[p.0 as usize] < pos[t.id.0 as usize],
                    "pred {} not before {}",
                    p,
                    t.id
                );
            }
        }
    }

    #[test]
    fn heft_valid_and_competitive() {
        let env = env();
        let g = dag(7, 150);
        let heft = HeftPlacer::default();
        let (sched, m_heft) = evaluate(&env, &g, &heft.place(&env, &g));
        assert!(sched.respects_dependencies(&g));
        let (_, m_rand) = evaluate(&env, &g, &RandomPlacer::new(3).place(&env, &g));
        let (_, m_rr) = evaluate(&env, &g, &RoundRobinPlacer.place(&env, &g));
        assert!(m_heft.makespan_s <= m_rand.makespan_s);
        assert!(m_heft.makespan_s <= m_rr.makespan_s);
    }

    #[test]
    fn insertion_no_worse_than_append() {
        let env = env();
        for seed in [1u64, 2, 3] {
            let g = dag(seed, 100);
            let (_, with_ins) = evaluate(
                &env,
                &g,
                &HeftPlacer {
                    insertion: true,
                    ..Default::default()
                }
                .place(&env, &g),
            );
            let (_, without) = evaluate(
                &env,
                &g,
                &HeftPlacer {
                    insertion: false,
                    ..Default::default()
                }
                .place(&env, &g),
            );
            // Insertion only adds candidate slots; allow a sliver of noise
            // from evaluation replaying with insertion in both cases.
            assert!(
                with_ins.makespan_s <= without.makespan_s * 1.05,
                "seed {seed}: insertion {} vs append {}",
                with_ins.makespan_s,
                without.makespan_s
            );
        }
    }

    #[test]
    fn heft_deterministic() {
        let env = env();
        let g = dag(11, 80);
        let a = HeftPlacer::default().place(&env, &g);
        let b = HeftPlacer::default().place(&env, &g);
        assert_eq!(a, b);
    }
}
