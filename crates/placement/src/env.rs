//! The placement environment: topology + routes + fleet, bundled.

use continuum_model::{DeviceId, Fleet};
use continuum_net::{NodeId, Path, RouteTable, Topology, TransferMatrix};
use continuum_sim::{SimDuration, SimTime};
use continuum_workflow::Task;
use std::sync::Arc;

/// Everything a placement policy may consult: the network, precomputed
/// routes, the transfer-cost cache, and the device fleet.
#[derive(Debug)]
pub struct Env {
    /// The continuum network, shared (cheap to clone out of a
    /// `BuiltContinuum` without copying the arenas).
    pub topology: Arc<Topology>,
    /// All-pairs latency-shortest routes over `topology`.
    pub routes: RouteTable,
    /// Dense node-pair transfer-cost cache over the canonical routes;
    /// planners query this instead of materializing paths per probe.
    pub xfer: TransferMatrix,
    /// Devices deployed on the topology.
    pub fleet: Fleet,
}

impl Env {
    /// Bundle a topology and fleet, computing the route table and the
    /// transfer-cost cache. Accepts an owned `Topology` or a shared
    /// `Arc<Topology>` (e.g. `built.topology.clone()`).
    ///
    /// # Panics
    /// If any device references a node outside the topology.
    pub fn new(topology: impl Into<Arc<Topology>>, fleet: Fleet) -> Env {
        let topology = topology.into();
        for d in fleet.devices() {
            assert!(
                (d.node.0 as usize) < topology.node_count(),
                "device {} at unknown node {}",
                d.id,
                d.node
            );
        }
        let routes = RouteTable::build(&topology);
        let xfer = routes.transfer_matrix(&topology);
        Env {
            topology,
            routes,
            xfer,
            fleet,
        }
    }

    /// Cached contention-free transfer time for `bytes` from `src` to
    /// `dst` along the canonical route (`None` if disconnected).
    /// Bit-identical to materializing [`Env::path`] and calling
    /// [`Path::transfer_time`], without the pred-walk or allocation.
    pub fn transfer_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> Option<SimDuration> {
        self.xfer.transfer_time(src, dst, bytes)
    }

    /// Cached absolute arrival time of a transfer started at `start`
    /// (`None` if disconnected); see [`Env::transfer_time`].
    pub fn arrival(&self, src: NodeId, dst: NodeId, start: SimTime, bytes: u64) -> Option<SimTime> {
        self.xfer.arrival(src, dst, start, bytes)
    }

    /// The node a device sits at.
    pub fn node_of(&self, device: DeviceId) -> NodeId {
        self.fleet.device(device).node
    }

    /// Canonical shortest path between two nodes (`None` if disconnected).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        self.routes.path(&self.topology, src, dst)
    }

    /// One of the equal-cost shortest paths, chosen by `salt` (ECMP). The
    /// executors use per-flow salts to spread concurrent transfers across
    /// parallel links; the estimator sticks to the canonical path, exactly
    /// as a real scheduler that cannot predict flow hashing would.
    pub fn path_ecmp(&self, src: NodeId, dst: NodeId, salt: u64) -> Option<Path> {
        self.routes.path_ecmp(&self.topology, src, dst, salt)
    }

    /// Devices on which `task` may legally run: honors pinning, tier range,
    /// and memory floor.
    ///
    /// # Panics
    /// If no device satisfies the constraints — that is a workload/fleet
    /// mismatch the caller should fix, not a schedulable state.
    pub fn feasible_devices(&self, task: &Task) -> Vec<DeviceId> {
        let c = &task.constraints;
        let out: Vec<DeviceId> = self
            .fleet
            .devices()
            .iter()
            .filter(|d| {
                if let Some(pin) = c.pinned_node {
                    if d.node != pin {
                        return false;
                    }
                }
                if let Some((lo, hi)) = c.tier_range {
                    if d.spec.tier < lo || d.spec.tier > hi {
                        return false;
                    }
                }
                d.spec.mem_bytes >= c.min_mem_bytes
            })
            .map(|d| d.id)
            .collect();
        assert!(
            !out.is_empty(),
            "task '{}' has no feasible device (pin={:?}, tiers={:?}, mem>={})",
            task.name,
            c.pinned_node,
            c.tier_range,
            c.min_mem_bytes
        );
        out
    }

    /// Mean per-core compute speed across the fleet (flop/s), used by
    /// rank computations.
    pub fn mean_core_flops(&self) -> f64 {
        let fleet = &self.fleet;
        let total: f64 = fleet
            .devices()
            .iter()
            .map(|d| d.spec.flops_per_core())
            .sum();
        total / fleet.len() as f64
    }

    /// Mean link bandwidth across the topology (bytes/s).
    pub fn mean_bandwidth(&self) -> f64 {
        let links = self.topology.links();
        if links.is_empty() {
            return f64::INFINITY;
        }
        links.iter().map(|l| l.bandwidth_bps).sum::<f64>() / links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec, Tier};
    use continuum_workflow::{Constraints, TaskId};

    fn small_env() -> Env {
        let built = continuum(&ContinuumSpec::default());
        let fleet = standard_fleet(&built);
        Env::new(built.topology, fleet)
    }

    fn task_with(constraints: Constraints) -> Task {
        Task {
            id: TaskId(0),
            name: "t".into(),
            work_flops: 1.0,
            parallelism: 1,
            inputs: vec![],
            outputs: vec![],
            constraints,
        }
    }

    #[test]
    fn unconstrained_task_runs_anywhere() {
        let env = small_env();
        let t = task_with(Constraints::none());
        assert_eq!(env.feasible_devices(&t).len(), env.fleet.len());
    }

    #[test]
    fn tier_range_filters() {
        let env = small_env();
        let t = task_with(Constraints::tiers(Tier::Cloud, Tier::Cloud));
        let devs = env.feasible_devices(&t);
        assert!(!devs.is_empty());
        for d in devs {
            assert_eq!(env.fleet.device(d).spec.tier, Tier::Cloud);
        }
    }

    #[test]
    fn memory_floor_filters_motes() {
        let env = small_env();
        let t = task_with(Constraints {
            min_mem_bytes: 1 << 30,
            ..Default::default()
        });
        let devs = env.feasible_devices(&t);
        for d in devs {
            assert!(env.fleet.device(d).spec.mem_bytes >= 1 << 30);
        }
    }

    #[test]
    fn pinned_task_stays_home() {
        let env = small_env();
        let node = env.fleet.devices()[0].node;
        let t = task_with(Constraints::pinned(node));
        let devs = env.feasible_devices(&t);
        for d in devs {
            assert_eq!(env.node_of(d), node);
        }
    }

    #[test]
    #[should_panic(expected = "no feasible device")]
    fn infeasible_task_panics() {
        let env = small_env();
        let t = task_with(Constraints {
            min_mem_bytes: u64::MAX,
            ..Default::default()
        });
        env.feasible_devices(&t);
    }

    #[test]
    fn means_positive() {
        let env = small_env();
        assert!(env.mean_core_flops() > 0.0);
        assert!(env.mean_bandwidth() > 0.0);
    }
}
