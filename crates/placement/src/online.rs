//! Online placement for streams of small request workflows (experiment F4).
//!
//! Unlike the batch policies, the online placer keeps state between
//! requests: a per-core availability estimate for every device. Each
//! arriving request (a small DAG, e.g. `capture -> preprocess -> infer`) is
//! placed greedily to minimize its predicted completion given the current
//! backlog — the continuum answer to "where should I compute *this one,
//! right now*?". Tier-restricted variants provide the cloud-only and
//! edge-only baselines under identical queue modeling.

use crate::env::Env;
use crate::estimate::Placement;
use continuum_net::Tier;
use continuum_sim::SimTime;
use continuum_workflow::Dag;

/// Stateful online scheduler.
#[derive(Debug, Clone)]
pub struct OnlinePlacer {
    /// Per device, per core-lane: the time the lane frees up. Each
    /// device's lane vector is kept **sorted ascending**, so the k-th
    /// earliest lane is `lanes[d][k - 1]` — candidate probes are O(1)
    /// where the seed cloned and sorted the vector per candidate.
    lanes: Vec<Vec<SimTime>>,
    tier_range: Option<(Tier, Tier)>,
    label: &'static str,
}

impl OnlinePlacer {
    /// Continuum-wide online placement.
    pub fn continuum(env: &Env) -> Self {
        Self::with_tiers(env, None, "online-continuum")
    }

    /// Online placement restricted to cloud devices.
    pub fn cloud_only(env: &Env) -> Self {
        Self::with_tiers(env, Some((Tier::Cloud, Tier::Cloud)), "online-cloud")
    }

    /// Online placement restricted to the edge (sensor + edge tiers).
    pub fn edge_only(env: &Env) -> Self {
        Self::with_tiers(env, Some((Tier::Sensor, Tier::Edge)), "online-edge")
    }

    /// Custom tier restriction.
    pub fn with_tiers(env: &Env, tier_range: Option<(Tier, Tier)>, label: &'static str) -> Self {
        OnlinePlacer {
            lanes: env
                .fleet
                .devices()
                .iter()
                .map(|d| vec![SimTime::ZERO; d.spec.cores as usize])
                .collect(),
            tier_range,
            label,
        }
    }

    /// Policy label for experiment rows.
    pub fn name(&self) -> &'static str {
        self.label
    }

    /// When the `need` earliest lanes of `dev` are all free (the sorted
    /// invariant makes this a direct index).
    fn queue_free(&self, dev: continuum_model::DeviceId, need: u32) -> SimTime {
        self.lanes[dev.0 as usize][(need - 1) as usize]
    }

    /// Occupy the `need` earliest lanes of `dev` until `fin`, preserving
    /// the sorted invariant: drop the `need` smallest entries and splice
    /// `fin` copies back in at their sorted position.
    fn occupy(&mut self, dev: continuum_model::DeviceId, need: u32, fin: SimTime) {
        let lanes = &mut self.lanes[dev.0 as usize];
        lanes.drain(..need as usize);
        let at = lanes.partition_point(|&x| x <= fin);
        lanes.splice(at..at, std::iter::repeat_n(fin, need as usize));
    }

    /// Place one arriving request with a latency deadline, escalating up
    /// the continuum only as far as needed: for each task, the lowest tier
    /// predicted to finish the *whole request* within `deadline` wins
    /// (keeping fast upstream capacity free for requests that need it);
    /// if no tier meets the deadline, fall back to the global
    /// minimum-finish choice.
    ///
    /// Returns the placement, the predicted completion, and whether the
    /// prediction already misses the deadline.
    pub fn place_request_deadline(
        &mut self,
        env: &Env,
        dag: &Dag,
        arrival: SimTime,
        deadline: continuum_sim::SimDuration,
    ) -> (Placement, SimTime, bool) {
        let deadline_abs = arrival + deadline;
        // Mean remaining work (flops) after each task in topo order, used
        // to budget per-task slack.
        let order = dag.topo_order();
        let mut remaining_after = vec![0.0f64; dag.len()];
        let mut acc = 0.0;
        for &t in order.iter().rev() {
            remaining_after[t.0 as usize] = acc;
            acc += dag.task(t).work_flops;
        }
        let mean_flops = env.mean_core_flops();

        let n = dag.len();
        let mut assignment = vec![continuum_model::DeviceId(0); n];
        let mut finish = vec![SimTime::ZERO; n];
        let mut location = vec![continuum_net::NodeId(0); n];
        let mut last_finish = arrival;

        for &t in &order {
            let task = dag.task(t);
            let feas = env.feasible_devices(task);
            // Predicted finish per candidate (same model as place_request).
            let mut cands: Vec<(SimTime, continuum_model::DeviceId, u32, Tier)> = Vec::new();
            for d in feas {
                let node = env.node_of(d);
                let mut ready = arrival;
                for &inp in &task.inputs {
                    let item = dag.data(inp);
                    let (src, avail) = match dag.producer(inp) {
                        None => (item.home.expect("validated dag"), arrival),
                        Some(p) => (location[p.0 as usize], finish[p.0 as usize]),
                    };
                    let arrives = env
                        .arrival(src, node, avail, item.bytes)
                        .expect("disconnected topology");
                    ready = ready.max(arrives);
                }
                let spec = &env.fleet.device(d).spec;
                let need = task.occupancy(spec.cores);
                let start = ready.max(self.queue_free(d, need)).max(arrival);
                let fin = start + spec.compute_time_parallel(task.work_flops, task.parallelism);
                cands.push((fin, d, need, spec.tier));
            }
            // Slack check: finishing this task at `fin` must leave room
            // for the mean-speed remainder of the request.
            let slack_ok = |fin: SimTime| {
                let tail = continuum_sim::SimDuration::from_secs_f64(
                    remaining_after[t.0 as usize] / mean_flops,
                );
                fin + tail <= deadline_abs
            };
            // Lowest tier with a deadline-feasible device; within it, the
            // earliest finish.
            let pick = Tier::ALL
                .iter()
                .find_map(|&tier| {
                    cands
                        .iter()
                        .filter(|(fin, _, _, tr)| *tr == tier && slack_ok(*fin))
                        .min_by_key(|(fin, d, _, _)| (*fin, *d))
                        .copied()
                })
                .unwrap_or_else(|| {
                    *cands
                        .iter()
                        .min_by_key(|(fin, d, _, _)| (*fin, *d))
                        .expect("candidate set non-empty")
                });
            let (fin, dev, need, _) = pick;
            self.occupy(dev, need, fin);
            assignment[t.0 as usize] = dev;
            finish[t.0 as usize] = fin;
            location[t.0 as usize] = env.node_of(dev);
            last_finish = last_finish.max(fin);
        }
        let miss = last_finish > deadline_abs;
        (Placement { assignment }, last_finish, miss)
    }

    /// Re-place one orphaned task onto a surviving device.
    ///
    /// Used by the fault plane: when a device crashes, its queued and
    /// running tasks must move somewhere that is still up. `inputs` gives
    /// the *current* location, availability time, and size of each input
    /// (the caller knows where data actually lives mid-run, which the
    /// request-level placement predictions do not). `alive[d]` gates the
    /// candidate set; `None` means no feasible live device exists right
    /// now (e.g. the task is pinned to the dead device) and the caller
    /// should park the task until something recovers.
    ///
    /// Returns the chosen device and its predicted finish, and books the
    /// device's core lanes exactly like [`OnlinePlacer::place_request`].
    pub fn place_task(
        &mut self,
        env: &Env,
        task: &continuum_workflow::Task,
        inputs: &[(continuum_net::NodeId, SimTime, u64)],
        now: SimTime,
        alive: &[bool],
    ) -> Option<(continuum_model::DeviceId, SimTime)> {
        let mut best: Option<(SimTime, continuum_model::DeviceId, u32)> = None;
        for d in env.feasible_devices(task) {
            if !alive.get(d.0 as usize).copied().unwrap_or(false) {
                continue;
            }
            let node = env.node_of(d);
            let mut ready = now;
            for &(src, avail, bytes) in inputs {
                let arrives = env
                    .arrival(src, node, avail.max(now), bytes)
                    .expect("disconnected topology");
                ready = ready.max(arrives);
            }
            let spec = &env.fleet.device(d).spec;
            let need = task.occupancy(spec.cores);
            let start = ready.max(self.queue_free(d, need));
            let fin = start + spec.compute_time_parallel(task.work_flops, task.parallelism);
            if best.map(|(bf, bd, _)| (fin, d) < (bf, bd)).unwrap_or(true) {
                best = Some((fin, d, need));
            }
        }
        let (fin, dev, need) = best?;
        self.occupy(dev, need, fin);
        Some((dev, fin))
    }

    /// Place one arriving request; returns the placement and the predicted
    /// completion time of the request's last task.
    pub fn place_request(
        &mut self,
        env: &Env,
        dag: &Dag,
        arrival: SimTime,
    ) -> (Placement, SimTime) {
        let n = dag.len();
        let mut assignment = vec![continuum_model::DeviceId(0); n];
        let mut finish = vec![SimTime::ZERO; n];
        let mut location = vec![continuum_net::NodeId(0); n];
        let mut last_finish = arrival;

        for t in dag.topo_order() {
            let task = dag.task(t);
            let feas = env.feasible_devices(task);
            let candidates: Vec<_> = match self.tier_range {
                Some((lo, hi)) if task.constraints.pinned_node.is_none() => {
                    let r: Vec<_> = feas
                        .iter()
                        .copied()
                        .filter(|&d| {
                            let tier = env.fleet.device(d).spec.tier;
                            tier >= lo && tier <= hi
                        })
                        .collect();
                    if r.is_empty() {
                        feas
                    } else {
                        r
                    }
                }
                _ => feas,
            };

            let mut best: Option<(SimTime, SimTime, continuum_model::DeviceId, u32)> = None;
            for d in candidates {
                let node = env.node_of(d);
                // Data readiness at this node.
                let mut ready = arrival;
                for &inp in &task.inputs {
                    let item = dag.data(inp);
                    let (src, avail) = match dag.producer(inp) {
                        None => (item.home.expect("validated dag"), arrival),
                        Some(p) => (location[p.0 as usize], finish[p.0 as usize]),
                    };
                    let arrives = env
                        .arrival(src, node, avail, item.bytes)
                        .expect("disconnected topology");
                    ready = ready.max(arrives);
                }
                let spec = &env.fleet.device(d).spec;
                let need = task.occupancy(spec.cores);
                // k-th earliest lane on this device (sorted invariant).
                let start = ready.max(self.queue_free(d, need)).max(arrival);
                let fin = start + spec.compute_time_parallel(task.work_flops, task.parallelism);
                if best
                    .map(|(bf, _, _, _)| (fin, d) < (bf, best.unwrap().2))
                    .unwrap_or(true)
                {
                    best = Some((fin, start, d, need));
                }
            }
            let (fin, start, dev, need) = best.expect("candidate set non-empty");
            // Occupy the `need` earliest lanes until `fin`.
            self.occupy(dev, need, fin);
            let _ = start;
            assignment[t.0 as usize] = dev;
            finish[t.0 as usize] = fin;
            location[t.0 as usize] = env.node_of(dev);
            last_finish = last_finish.max(fin);
        }
        (Placement { assignment }, last_finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::Rng;
    use continuum_workflow::TaskId;
    use continuum_workflow::{inference_stream, StreamSpec};

    fn setup() -> (Env, Vec<(SimTime, Dag)>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(41);
        let spec = StreamSpec {
            sensors: built.sensors.clone(),
            requests: 40,
            rate_hz: 5.0,
            ..Default::default()
        };
        (env, inference_stream(&mut rng, &spec).requests)
    }

    #[test]
    fn requests_complete_after_arrival() {
        let (env, reqs) = setup();
        let mut placer = OnlinePlacer::continuum(&env);
        for (arrival, dag) in &reqs {
            let (placement, fin) = placer.place_request(&env, dag, *arrival);
            assert_eq!(placement.assignment.len(), dag.len());
            assert!(fin > *arrival);
        }
    }

    #[test]
    fn lanes_stay_sorted_and_sized() {
        let (env, reqs) = setup();
        let mut placer = OnlinePlacer::continuum(&env);
        for (arrival, dag) in &reqs {
            placer.place_request(&env, dag, *arrival);
        }
        for (lanes, d) in placer.lanes.iter().zip(env.fleet.devices()) {
            assert_eq!(lanes.len(), d.spec.cores as usize);
            assert!(lanes.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn capture_stays_pinned_even_cloud_only() {
        let (env, reqs) = setup();
        let mut placer = OnlinePlacer::cloud_only(&env);
        for (arrival, dag) in reqs.iter().take(10) {
            let (placement, _) = placer.place_request(&env, dag, *arrival);
            let pinned = dag.task(TaskId(0)).constraints.pinned_node.unwrap();
            assert_eq!(env.node_of(placement.device(TaskId(0))), pinned);
            // The inference task must be in the cloud.
            let infer_dev = placement.device(TaskId(2));
            assert_eq!(env.fleet.device(infer_dev).spec.tier, Tier::Cloud);
        }
    }

    #[test]
    fn backlog_builds_under_load() {
        let (env, reqs) = setup();
        // Edge-only on a heavy stream should queue: later predicted
        // completions drift above the zero-queue service time.
        let mut placer = OnlinePlacer::edge_only(&env);
        let mut latencies = Vec::new();
        for (arrival, dag) in &reqs {
            let (_, fin) = placer.place_request(&env, dag, *arrival);
            latencies.push(fin.since(*arrival).as_secs_f64());
        }
        let first = latencies.first().copied().unwrap();
        let worst = latencies.iter().cloned().fold(0.0, f64::max);
        assert!(worst >= first, "no queueing effect at all?");
    }

    #[test]
    fn place_task_respects_alive_mask() {
        let (env, reqs) = setup();
        let mut placer = OnlinePlacer::continuum(&env);
        let (arrival, dag) = &reqs[0];
        // The preprocess task (id 1) is unpinned: placeable anywhere.
        let task = dag.task(TaskId(1));
        let inputs: Vec<_> = task
            .inputs
            .iter()
            .map(|&inp| {
                let item = dag.data(inp);
                (
                    item.home
                        .unwrap_or(env.node_of(continuum_model::DeviceId(0))),
                    *arrival,
                    item.bytes,
                )
            })
            .collect();
        let n_dev = env.fleet.devices().len();
        let all_alive = vec![true; n_dev];
        let (dev, fin) = placer
            .place_task(&env, task, &inputs, *arrival, &all_alive)
            .expect("live fleet places anything");
        assert!(fin > *arrival);
        // Killing the chosen device forces a different (live) choice.
        let mut mask = all_alive.clone();
        mask[dev.0 as usize] = false;
        let (dev2, _) = placer
            .place_task(&env, task, &inputs, *arrival, &mask)
            .expect("other devices survive");
        assert_ne!(dev2, dev);
        // Nothing alive: nothing placeable.
        assert!(placer
            .place_task(&env, task, &inputs, *arrival, &vec![false; n_dev])
            .is_none());
    }

    #[test]
    fn continuum_no_worse_than_edge_only_prediction() {
        let (env, reqs) = setup();
        let mut cont = OnlinePlacer::continuum(&env);
        let mut edge = OnlinePlacer::edge_only(&env);
        let mut sum_c = 0.0;
        let mut sum_e = 0.0;
        for (arrival, dag) in &reqs {
            let (_, fc) = cont.place_request(&env, dag, *arrival);
            let (_, fe) = edge.place_request(&env, dag, *arrival);
            sum_c += fc.since(*arrival).as_secs_f64();
            sum_e += fe.since(*arrival).as_secs_f64();
        }
        assert!(sum_c <= sum_e * 1.001, "continuum {sum_c} vs edge {sum_e}");
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::{Rng, SimDuration};
    use continuum_workflow::{inference_stream, StreamSpec};

    fn setup() -> (Env, Vec<(SimTime, Dag)>) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(61);
        let spec = StreamSpec {
            sensors: built.sensors.clone(),
            requests: 30,
            rate_hz: 4.0,
            infer_flops: 1e8,
            ..Default::default()
        };
        (env, inference_stream(&mut rng, &spec).requests)
    }

    #[test]
    fn loose_deadline_keeps_work_low_in_the_continuum() {
        let (env, reqs) = setup();
        let mut eager = OnlinePlacer::continuum(&env);
        let mut lazy = OnlinePlacer::continuum(&env);
        let mut eager_high_tier = 0usize;
        let mut lazy_high_tier = 0usize;
        let mut total = 0usize;
        for (arrival, dag) in &reqs {
            let (p_eager, _) = eager.place_request(&env, dag, *arrival);
            let (p_lazy, _, miss) =
                lazy.place_request_deadline(&env, dag, *arrival, SimDuration::from_secs(30));
            assert!(!miss, "a 30s deadline must be met in prediction");
            for task in dag.tasks() {
                if task.constraints.pinned_node.is_some() {
                    continue;
                }
                total += 1;
                if env.fleet.device(p_eager.device(task.id)).spec.tier >= Tier::Fog {
                    eager_high_tier += 1;
                }
                if env.fleet.device(p_lazy.device(task.id)).spec.tier >= Tier::Fog {
                    lazy_high_tier += 1;
                }
            }
        }
        assert!(total > 0);
        // With slack to burn, the deadline-aware placer keeps more work at
        // the low tiers than the eager minimum-latency placer.
        assert!(
            lazy_high_tier <= eager_high_tier,
            "deadline-aware escalated more ({lazy_high_tier}) than eager ({eager_high_tier})"
        );
    }

    #[test]
    fn tight_deadline_behaves_like_eager() {
        let (env, reqs) = setup();
        let mut eager = OnlinePlacer::continuum(&env);
        let mut tight = OnlinePlacer::continuum(&env);
        for (arrival, dag) in &reqs {
            let (_, fin_eager) = eager.place_request(&env, dag, *arrival);
            let (_, fin_tight, _) =
                tight.place_request_deadline(&env, dag, *arrival, SimDuration::from_nanos(1));
            // Impossible deadline -> fall back to min-finish: same
            // prediction as the eager policy.
            assert_eq!(fin_eager, fin_tight);
        }
    }

    #[test]
    fn predicted_miss_flag_consistent() {
        let (env, reqs) = setup();
        let mut placer = OnlinePlacer::continuum(&env);
        let (arrival, dag) = &reqs[0];
        let (_, fin, miss) =
            placer.place_request_deadline(&env, dag, *arrival, SimDuration::from_nanos(1));
        assert_eq!(miss, fin > *arrival + SimDuration::from_nanos(1));
        assert!(miss, "nanosecond deadline cannot be met");
    }
}
