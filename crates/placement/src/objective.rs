//! Objectives: scoring a placement on time, energy, dollars, and data
//! movement.
//!
//! [`evaluate`] replays a fixed placement through the shared estimator
//! (topological order, insertion slots) and derives the four metrics every
//! experiment reports. [`WeightedObjective`] scalarizes them for the
//! annealing policy and the Pareto experiment (F6).

use crate::env::Env;
use crate::estimate::{EstimatedSchedule, Estimator, Placement};
use continuum_model::{CostMeter, EnergyMeter};
use continuum_sim::SimDuration;
use continuum_workflow::Dag;
use serde::{Deserialize, Serialize};

/// The metrics a schedule is judged on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// End-to-end completion time, seconds.
    pub makespan_s: f64,
    /// Total energy (busy + idle of used devices), joules.
    pub energy_j: f64,
    /// Total dollars (occupancy + egress).
    pub cost_usd: f64,
    /// Bytes moved across non-local links.
    pub bytes_moved: u64,
}

/// Replay `placement` in topological order and compute its metrics.
///
/// # Panics
/// If the placement violates a constraint (wrong pinned node, etc.) the
/// schedule is still produced — constraint checking is the placer's job —
/// but a missing route or unplaced producer panics.
pub fn evaluate(env: &Env, dag: &Dag, placement: &Placement) -> (EstimatedSchedule, Metrics) {
    assert_eq!(
        placement.assignment.len(),
        dag.len(),
        "placement size mismatch"
    );
    let mut est = Estimator::new(env, dag);
    for t in dag.topo_order() {
        est.commit(t, placement.device(t), true);
    }
    let schedule = est.into_schedule();
    let metrics = metrics_of(env, dag, &schedule);
    (schedule, metrics)
}

/// Derive metrics from a committed schedule.
pub fn metrics_of(env: &Env, dag: &Dag, schedule: &EstimatedSchedule) -> Metrics {
    metrics_from_parts(
        env,
        dag,
        &schedule.placement.assignment,
        &schedule.start,
        &schedule.finish,
    )
}

/// [`metrics_of`] over raw schedule arrays. The delta-cost annealer keeps
/// its schedule as bare arrays and scores through this same function, so
/// its scores are bit-identical to a full [`evaluate`] whenever the arrays
/// agree.
pub fn metrics_from_parts(
    env: &Env,
    dag: &Dag,
    assignment: &[continuum_model::DeviceId],
    start: &[continuum_sim::SimTime],
    finish: &[continuum_sim::SimTime],
) -> Metrics {
    let fleet = &env.fleet;
    let mut energy = EnergyMeter::new(fleet);
    let mut cost = CostMeter::new(fleet);
    let mut bytes_moved: u64 = 0;

    for task in dag.tasks() {
        let ti = task.id.0 as usize;
        let dev = assignment[ti];
        let spec = &fleet.device(dev).spec;
        let dur = finish[ti].since(start[ti]);
        let cores = task.occupancy(spec.cores);
        energy.record_busy(fleet, dev, cores, dur);
        cost.record_occupancy(fleet, dev, cores, dur);

        // Charge transfers for each input that crosses nodes.
        let dst = env.node_of(dev);
        for &d in &task.inputs {
            let item = dag.data(d);
            let src = match dag.producer(d) {
                Some(p) => env.node_of(assignment[p.0 as usize]),
                None => item.home.expect("external item has home"),
            };
            if src != dst {
                bytes_moved += item.bytes;
                // Egress billed to the first billing device at the source
                // node (if any).
                if let Some(&src_dev) = fleet.at_node(src).first() {
                    cost.record_egress(fleet, src_dev, item.bytes);
                }
            }
        }
    }

    let makespan = finish
        .iter()
        .copied()
        .max()
        .unwrap_or(continuum_sim::SimTime::ZERO)
        .since(continuum_sim::SimTime::ZERO);
    Metrics {
        makespan_s: makespan.as_secs_f64(),
        energy_j: energy.used_devices_joules(fleet, makespan),
        cost_usd: cost.total_usd(),
        bytes_moved,
    }
}

/// Linear scalarization of [`Metrics`] for search-based policies.
///
/// Weights are in "per unit" terms: seconds, kilojoules, dollars. The
/// defaults optimize makespan only.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WeightedObjective {
    /// Weight on makespan (per second).
    pub w_time: f64,
    /// Weight on energy (per kilojoule).
    pub w_energy: f64,
    /// Weight on dollars (per USD).
    pub w_cost: f64,
}

impl Default for WeightedObjective {
    fn default() -> Self {
        WeightedObjective {
            w_time: 1.0,
            w_energy: 0.0,
            w_cost: 0.0,
        }
    }
}

impl WeightedObjective {
    /// Makespan-only objective.
    pub fn makespan() -> Self {
        Self::default()
    }

    /// Scalar score (lower is better).
    pub fn score(&self, m: &Metrics) -> f64 {
        self.w_time * m.makespan_s + self.w_energy * m.energy_j / 1e3 + self.w_cost * m.cost_usd
    }
}

/// True if `a` Pareto-dominates `b` on (makespan, energy, cost).
pub fn dominates(a: &Metrics, b: &Metrics) -> bool {
    let le = a.makespan_s <= b.makespan_s && a.energy_j <= b.energy_j && a.cost_usd <= b.cost_usd;
    let lt = a.makespan_s < b.makespan_s || a.energy_j < b.energy_j || a.cost_usd < b.cost_usd;
    le && lt
}

/// Filter a set of metrics down to its Pareto front (stable order).
pub fn pareto_front(points: &[Metrics]) -> Vec<Metrics> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .copied()
        .collect()
}

/// A makespan expressed as a [`SimDuration`], for callers that want virtual
/// time rather than seconds.
pub fn makespan_duration(m: &Metrics) -> SimDuration {
    SimDuration::from_secs_f64(m.makespan_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(t: f64, e: f64, c: f64) -> Metrics {
        Metrics {
            makespan_s: t,
            energy_j: e,
            cost_usd: c,
            bytes_moved: 0,
        }
    }

    #[test]
    fn domination_rules() {
        assert!(dominates(&m(1.0, 1.0, 1.0), &m(2.0, 2.0, 2.0)));
        assert!(dominates(&m(1.0, 2.0, 2.0), &m(2.0, 2.0, 2.0)));
        assert!(!dominates(&m(1.0, 3.0, 1.0), &m(2.0, 2.0, 2.0)));
        // Equal points do not dominate each other.
        assert!(!dominates(&m(1.0, 1.0, 1.0), &m(1.0, 1.0, 1.0)));
    }

    #[test]
    fn pareto_front_filters_dominated() {
        let pts = vec![
            m(1.0, 5.0, 5.0),
            m(5.0, 1.0, 5.0),
            m(5.0, 5.0, 1.0),
            m(6.0, 6.0, 6.0),
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 3);
        assert!(!front.iter().any(|p| p.makespan_s == 6.0));
    }

    #[test]
    fn weighted_score_linear() {
        let obj = WeightedObjective {
            w_time: 2.0,
            w_energy: 1.0,
            w_cost: 10.0,
        };
        let s = obj.score(&m(3.0, 2000.0, 0.5));
        assert!((s - (6.0 + 2.0 + 5.0)).abs() < 1e-12);
    }
}
