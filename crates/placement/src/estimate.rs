//! Schedule estimation: the contention-free performance model shared by
//! every placement policy.
//!
//! The estimator maintains a capacity profile per device (busy intervals ×
//! cores) and the location/availability of every data item, and answers
//! earliest-finish-time queries. Policies use it to *choose* placements;
//! [`crate::objective::evaluate`] uses it to score a fixed placement; the
//! simulated executor in `continuum-runtime` then charges the *contended*
//! truth (link sharing, queueing) for the chosen placement.

use crate::env::Env;
use continuum_model::DeviceId;
use continuum_sim::{SimDuration, SimTime};
use continuum_workflow::{Dag, DataId, TaskId};
use serde::{Deserialize, Serialize};

/// A placement: one device per task, indexed by `TaskId`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// `assignment[t]` is the device task `t` runs on.
    pub assignment: Vec<DeviceId>,
}

impl Placement {
    /// Device assigned to a task.
    pub fn device(&self, t: TaskId) -> DeviceId {
        self.assignment[t.0 as usize]
    }
}

/// One reserved busy interval on a device.
#[derive(Debug, Clone, Copy)]
struct Busy {
    start: SimTime,
    end: SimTime,
    cores: u32,
}

/// Capacity profile of one device.
///
/// Alongside the raw interval list, the timeline maintains a sweep-line
/// index: the sorted distinct endpoint times, the piecewise-constant core
/// usage after each endpoint, and a suffix maximum of that usage. Peak
/// queries then cost a binary search plus a walk of the endpoints inside
/// the window (`peak_usage`) or O(log B) flat (`peak_usage_from`) — the
/// seed recomputed usage from every interval at every candidate point,
/// O(B²) per query and O(B³) per `earliest_slot`.
#[derive(Debug, Clone)]
pub struct DeviceTimeline {
    cores: u32,
    busy: Vec<Busy>, // kept sorted by start
    /// Sorted distinct endpoint times of `busy`.
    times: Vec<SimTime>,
    /// Net core delta at `times[i]` (starts positive, ends negative).
    /// Ends and starts sharing a timestamp merge, which encodes the
    /// half-open `[start, end)` semantics: a task ending at T never
    /// overlaps one starting at T.
    delta: Vec<i64>,
    /// Cores in use during `[times[i], times[i+1])`.
    usage: Vec<u32>,
    /// `max(usage[i..])`, for open-ended peak queries.
    suffix_max: Vec<u32>,
}

impl DeviceTimeline {
    /// Empty timeline for a device with `cores` cores.
    pub fn new(cores: u32) -> Self {
        DeviceTimeline {
            cores,
            busy: Vec::new(),
            times: Vec::new(),
            delta: Vec::new(),
            usage: Vec::new(),
            suffix_max: Vec::new(),
        }
    }

    /// Index of the first endpoint strictly after `t`; `usage[idx - 1]`
    /// (or 0) is the core usage at `t` itself.
    fn sweep_index(&self, t: SimTime) -> usize {
        self.times.partition_point(|&x| x <= t)
    }

    fn usage_at_index(&self, idx: usize) -> u32 {
        if idx == 0 {
            0
        } else {
            self.usage[idx - 1]
        }
    }

    /// Maximum concurrent core usage over the window `[t, t + dur)`.
    fn peak_usage(&self, t: SimTime, dur: SimDuration) -> u32 {
        let end = t + dur;
        let idx = self.sweep_index(t);
        let mut peak = self.usage_at_index(idx);
        for i in idx..self.times.len() {
            if self.times[i] >= end {
                break;
            }
            peak = peak.max(self.usage[i]);
        }
        peak
    }

    /// Maximum concurrent usage anywhere in `[t, ∞)`.
    fn peak_usage_from(&self, t: SimTime) -> u32 {
        let idx = self.sweep_index(t);
        let later = self.suffix_max.get(idx).copied().unwrap_or(0);
        self.usage_at_index(idx).max(later)
    }

    /// Add `d` cores at endpoint `t`, keeping `times` sorted, unique, and
    /// free of net-zero entries (so every entry is a real usage change —
    /// the gap search below relies on that).
    fn insert_event(&mut self, t: SimTime, d: i64) {
        match self.times.binary_search(&t) {
            Ok(i) => {
                self.delta[i] += d;
                if self.delta[i] == 0 {
                    self.times.remove(i);
                    self.delta.remove(i);
                }
            }
            Err(i) => {
                self.times.insert(i, t);
                self.delta.insert(i, d);
            }
        }
    }

    /// Recompute running usage and its suffix maximum from the deltas.
    fn rebuild_sweep(&mut self) {
        let n = self.times.len();
        self.usage.resize(n, 0);
        self.suffix_max.resize(n, 0);
        let mut run = 0i64;
        for i in 0..n {
            run += self.delta[i];
            debug_assert!(run >= 0, "sweep usage went negative");
            self.usage[i] = run as u32;
        }
        let mut peak = 0u32;
        for i in (0..n).rev() {
            peak = peak.max(self.usage[i]);
            self.suffix_max[i] = peak;
        }
    }

    /// Earliest start `>= ready` at which `need` cores are free for `dur`.
    ///
    /// With `insertion`, gaps between reserved intervals are considered;
    /// without it, the task is appended after the last time the device is
    /// too busy (classic list scheduling, the ablation baseline).
    ///
    /// Implemented as a single sweep over the endpoint index: start at
    /// `ready`, and whenever a segment inside the trial window exceeds
    /// the spare capacity, jump the candidate to the next usage drop
    /// below the threshold. The candidate index only moves forward, so a
    /// query costs O(log B) for the initial binary search plus one walk
    /// of the endpoints it crosses — versus the seed's candidate ×
    /// peak-scan product, O(B²) ([`DeviceTimeline::earliest_slot_scan`],
    /// kept as the equivalence oracle). Append mode is a binary search on
    /// the non-increasing suffix maximum, O(log B).
    pub fn earliest_slot(
        &self,
        ready: SimTime,
        dur: SimDuration,
        need: u32,
        insertion: bool,
    ) -> SimTime {
        let need = need.min(self.cores);
        let spare = self.cores - need; // max tolerable concurrent usage
        if insertion {
            let mut c = ready;
            let mut i = self.sweep_index(ready);
            if self.usage_at_index(i) > spare {
                // Busy at `ready` itself: the candidate must move to the
                // first later segment with room. A usage drop is always an
                // interval end, so this lands on a seed-candidate point.
                let j = self.next_fit(i, spare);
                c = self.times[j];
                i = j + 1;
            }
            loop {
                if i >= self.times.len() || self.suffix_max[i] <= spare {
                    return c; // nothing later can violate the window
                }
                if self.times[i] >= c + dur {
                    return c; // window scanned clean
                }
                if self.usage[i] > spare {
                    let j = self.next_fit(i, spare);
                    c = self.times[j];
                    i = j + 1;
                } else {
                    i += 1;
                }
            }
        } else {
            // Append mode: the earliest start from which the device can
            // *permanently* spare `need` cores — no gap between existing
            // reservations is ever used.
            if self.peak_usage_from(ready) <= spare {
                return ready;
            }
            let idx = self.sweep_index(ready);
            let off = self.suffix_max[idx..].partition_point(|&m| m > spare);
            // In-range by construction: usage after the last endpoint is
            // zero, so the suffix maximum always drops to `spare` or less.
            self.times[idx + off]
        }
    }

    /// First endpoint index `>= i` whose segment usage fits under `spare`.
    /// Exists because usage after the last endpoint is zero.
    fn next_fit(&self, i: usize, spare: u32) -> usize {
        (i..self.times.len())
            .find(|&j| self.usage[j] <= spare)
            .expect("a slot always exists after the last busy interval")
    }

    /// Seed-era `earliest_slot`: collect candidate starts (ready + every
    /// busy end) and probe each with a peak query, O(B²) per call. Kept
    /// as the oracle the sweep implementation is proptested against.
    pub fn earliest_slot_scan(
        &self,
        ready: SimTime,
        dur: SimDuration,
        need: u32,
        insertion: bool,
    ) -> SimTime {
        let need = need.min(self.cores);
        let mut candidates: Vec<SimTime> = vec![ready];
        for b in &self.busy {
            if b.end > ready {
                candidates.push(b.end);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        if insertion {
            for c in candidates {
                if self.peak_usage(c, dur) + need <= self.cores {
                    return c;
                }
            }
            unreachable!("a slot always exists after the last busy interval");
        } else {
            for c in candidates {
                if self.peak_usage_from(c) + need <= self.cores {
                    return c;
                }
            }
            unreachable!("the device is idle after its last reservation");
        }
    }

    /// Reserve `need` cores over `[start, start + dur)`.
    pub fn reserve(&mut self, start: SimTime, dur: SimDuration, need: u32) {
        let need = need.min(self.cores);
        debug_assert!(
            self.peak_usage(start, dur) + need <= self.cores,
            "over-reserving device"
        );
        let b = Busy {
            start,
            end: start + dur,
            cores: need,
        };
        let pos = self.busy.partition_point(|x| x.start <= start);
        self.busy.insert(pos, b);
        self.insert_event(b.start, i64::from(need));
        self.insert_event(b.end, -i64::from(need));
        self.rebuild_sweep();
    }

    /// Release a reservation previously made with [`DeviceTimeline::reserve`]
    /// (same `start`/`dur`/`need`). The delta-cost annealer uses this to
    /// retract and re-place individual tasks without rebuilding the
    /// timeline.
    ///
    /// # Panics
    /// If no matching reservation exists.
    pub fn unreserve(&mut self, start: SimTime, dur: SimDuration, need: u32) {
        let need = need.min(self.cores);
        let end = start + dur;
        let lo = self.busy.partition_point(|x| x.start < start);
        let idx = self.busy[lo..]
            .iter()
            .position(|b| b.start == start && b.end == end && b.cores == need)
            .map(|i| lo + i)
            .expect("unreserve: no matching reservation");
        self.busy.remove(idx);
        self.remove_event(start, i64::from(need));
        self.remove_event(end, -i64::from(need));
        self.rebuild_sweep();
    }

    /// Undo one `insert_event(t, d)` contribution, restoring the
    /// no-net-zero-entries invariant.
    fn remove_event(&mut self, t: SimTime, d: i64) {
        match self.times.binary_search(&t) {
            Ok(i) => {
                self.delta[i] -= d;
                if self.delta[i] == 0 {
                    self.times.remove(i);
                    self.delta.remove(i);
                }
            }
            Err(i) => {
                // The endpoint had canceled to net zero and was dropped;
                // removing one side's contribution revives the other.
                self.times.insert(i, t);
                self.delta.insert(i, -d);
            }
        }
    }

    /// Total reserved core-seconds.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy
            .iter()
            .map(|b| b.end.since(b.start).as_secs_f64() * b.cores as f64)
            .sum()
    }

    /// End of the last reservation (time zero if none).
    pub fn horizon(&self) -> SimTime {
        self.busy
            .iter()
            .map(|b| b.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// A fully committed estimated schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimatedSchedule {
    /// The placement that was scheduled.
    pub placement: Placement,
    /// Start time per task.
    pub start: Vec<SimTime>,
    /// Finish time per task.
    pub finish: Vec<SimTime>,
}

impl EstimatedSchedule {
    /// Latest finish across tasks (zero for an empty DAG).
    pub fn makespan(&self) -> SimDuration {
        self.finish
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO)
    }

    /// Check that the schedule respects dependencies: every task starts at
    /// or after each predecessor's finish. Used by tests.
    pub fn respects_dependencies(&self, dag: &Dag) -> bool {
        dag.tasks().iter().all(|t| {
            dag.preds(t.id)
                .iter()
                .all(|p| self.finish[p.0 as usize] <= self.start[t.id.0 as usize])
        })
    }
}

/// Incremental schedule builder over an environment and DAG.
pub struct Estimator<'e> {
    pub(crate) env: &'e Env,
    pub(crate) dag: &'e Dag,
    pub(crate) timelines: Vec<DeviceTimeline>,
    pub(crate) assigned: Vec<Option<DeviceId>>,
    pub(crate) start: Vec<SimTime>,
    pub(crate) finish: Vec<Option<SimTime>>,
}

impl<'e> Estimator<'e> {
    /// Fresh estimator: all devices idle, no tasks placed.
    pub fn new(env: &'e Env, dag: &'e Dag) -> Self {
        Estimator {
            env,
            dag,
            timelines: env
                .fleet
                .devices()
                .iter()
                .map(|d| DeviceTimeline::new(d.spec.cores))
                .collect(),
            assigned: vec![None; dag.len()],
            start: vec![SimTime::ZERO; dag.len()],
            finish: vec![None; dag.len()],
        }
    }

    /// When data item `d` can be fully present at node `dst`, given current
    /// commitments. External items are available at their home at time 0.
    ///
    /// # Panics
    /// If the item's producer has not been committed yet, or no route
    /// exists.
    pub fn data_arrival(&self, d: DataId, dst: continuum_net::NodeId) -> SimTime {
        let item = self.dag.data(d);
        let (src, avail) = match self.dag.producer(d) {
            None => {
                let home = item
                    .home
                    .expect("validated DAG has homes for external items");
                (home, SimTime::ZERO)
            }
            Some(p) => {
                let dev = self.assigned[p.0 as usize].expect("producer not committed");
                let f = self.finish[p.0 as usize].expect("producer not committed");
                (self.env.node_of(dev), f)
            }
        };
        // O(1) cached lookup, bit-identical to materializing the
        // canonical path and asking it — which the seed did per probe.
        self.env
            .arrival(src, dst, avail, item.bytes)
            .expect("disconnected topology")
    }

    /// Earliest time all inputs of `t` can be present at `device`'s node.
    pub fn ready_time(&self, t: TaskId, device: DeviceId) -> SimTime {
        let node = self.env.node_of(device);
        self.dag
            .task(t)
            .inputs
            .iter()
            .map(|&d| self.data_arrival(d, node))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Execution time of `t` on `device`.
    pub fn exec_time(&self, t: TaskId, device: DeviceId) -> SimDuration {
        let task = self.dag.task(t);
        let spec = &self.env.fleet.device(device).spec;
        spec.compute_time_parallel(task.work_flops, task.parallelism)
    }

    /// Hypothetical (start, finish) of `t` on `device` without committing.
    pub fn eft(&self, t: TaskId, device: DeviceId, insertion: bool) -> (SimTime, SimTime) {
        let ready = self.ready_time(t, device);
        let dur = self.exec_time(t, device);
        let task = self.dag.task(t);
        let need = task.occupancy(self.env.fleet.device(device).spec.cores);
        let start = self.timelines[device.0 as usize].earliest_slot(ready, dur, need, insertion);
        (start, start + dur)
    }

    /// Commit `t` to `device`; returns (start, finish).
    ///
    /// # Panics
    /// If any predecessor of `t` is uncommitted.
    pub fn commit(&mut self, t: TaskId, device: DeviceId, insertion: bool) -> (SimTime, SimTime) {
        let (start, fin) = self.eft(t, device, insertion);
        let dur = self.exec_time(t, device);
        let need = self
            .dag
            .task(t)
            .occupancy(self.env.fleet.device(device).spec.cores);
        self.timelines[device.0 as usize].reserve(start, dur, need);
        self.assigned[t.0 as usize] = Some(device);
        self.start[t.0 as usize] = start;
        self.finish[t.0 as usize] = Some(fin);
        (start, fin)
    }

    /// Finalize into a schedule.
    ///
    /// # Panics
    /// If any task is uncommitted.
    pub fn into_schedule(self) -> EstimatedSchedule {
        let assignment: Vec<DeviceId> = self
            .assigned
            .into_iter()
            .map(|a| a.expect("uncommitted task"))
            .collect();
        let finish: Vec<SimTime> = self
            .finish
            .into_iter()
            .map(|f| f.expect("uncommitted task"))
            .collect();
        EstimatedSchedule {
            placement: Placement { assignment },
            start: self.start,
            finish,
        }
    }

    /// Busy core-seconds accumulated so far per device.
    pub fn busy_core_seconds(&self) -> Vec<f64> {
        self.timelines
            .iter()
            .map(|t| t.busy_core_seconds())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_sim::SimDuration;

    #[test]
    fn timeline_single_core_serializes() {
        let mut tl = DeviceTimeline::new(1);
        let d = SimDuration::from_secs(10);
        let s1 = tl.earliest_slot(SimTime::ZERO, d, 1, true);
        assert_eq!(s1, SimTime::ZERO);
        tl.reserve(s1, d, 1);
        let s2 = tl.earliest_slot(SimTime::ZERO, d, 1, true);
        assert_eq!(s2, SimTime::from_secs(10));
    }

    #[test]
    fn timeline_multicore_overlaps() {
        let mut tl = DeviceTimeline::new(4);
        let d = SimDuration::from_secs(10);
        for _ in 0..4 {
            let s = tl.earliest_slot(SimTime::ZERO, d, 1, true);
            assert_eq!(s, SimTime::ZERO);
            tl.reserve(s, d, 1);
        }
        // Fifth task must wait.
        let s = tl.earliest_slot(SimTime::ZERO, d, 1, true);
        assert_eq!(s, SimTime::from_secs(10));
    }

    #[test]
    fn insertion_finds_gap_append_does_not() {
        let mut tl = DeviceTimeline::new(1);
        // Busy [0, 10) and [20, 30): a 10s gap at [10, 20).
        tl.reserve(SimTime::ZERO, SimDuration::from_secs(10), 1);
        tl.reserve(SimTime::from_secs(20), SimDuration::from_secs(10), 1);
        let gap = tl.earliest_slot(SimTime::ZERO, SimDuration::from_secs(5), 1, true);
        assert_eq!(gap, SimTime::from_secs(10));
        let append = tl.earliest_slot(SimTime::ZERO, SimDuration::from_secs(5), 1, false);
        assert_eq!(append, SimTime::from_secs(30));
    }

    #[test]
    fn insertion_skips_too_small_gap() {
        let mut tl = DeviceTimeline::new(1);
        tl.reserve(SimTime::ZERO, SimDuration::from_secs(10), 1);
        tl.reserve(SimTime::from_secs(12), SimDuration::from_secs(10), 1);
        // 2s gap cannot fit 5s task.
        let s = tl.earliest_slot(SimTime::ZERO, SimDuration::from_secs(5), 1, true);
        assert_eq!(s, SimTime::from_secs(22));
    }

    #[test]
    fn need_clamped_to_cores() {
        let mut tl = DeviceTimeline::new(2);
        let s = tl.earliest_slot(SimTime::ZERO, SimDuration::from_secs(1), 100, true);
        assert_eq!(s, SimTime::ZERO);
        tl.reserve(s, SimDuration::from_secs(1), 100);
        assert!((tl.busy_core_seconds() - 2.0).abs() < 1e-9);
    }

    /// Brute-force peak over `[t, end)` straight from the interval list,
    /// the semantics the sweep-line index must reproduce.
    fn brute_peak(tl: &DeviceTimeline, t: SimTime, end: SimTime) -> u32 {
        let mut points: Vec<SimTime> = vec![t];
        points.extend(
            tl.busy
                .iter()
                .map(|b| b.start)
                .filter(|&s| s > t && s < end),
        );
        points
            .iter()
            .map(|&p| {
                tl.busy
                    .iter()
                    .filter(|b| b.start <= p && b.end > p)
                    .map(|b| b.cores)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn sweep_line_matches_brute_force() {
        let mut tl = DeviceTimeline::new(64);
        // Deterministic pseudo-random reservations, including shared
        // endpoints and zero-length gaps.
        let mut x = 0x1234_5678u64;
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = SimTime::from_secs((x >> 33) % 50);
            let dur = SimDuration::from_secs((x >> 21) % 7 + 1);
            let cores = ((x >> 11) % 3 + 1) as u32;
            tl.busy.push(Busy {
                start,
                end: start + dur,
                cores,
            });
            tl.insert_event(start, i64::from(cores));
            tl.insert_event(start + dur, -i64::from(cores));
        }
        tl.busy.sort_unstable_by_key(|b| b.start);
        tl.rebuild_sweep();
        for t in 0..60u64 {
            for d in 1..8u64 {
                let (from, dur) = (SimTime::from_secs(t), SimDuration::from_secs(d));
                assert_eq!(
                    tl.peak_usage(from, dur),
                    brute_peak(&tl, from, from + dur),
                    "window [{t}, {}s)",
                    t + d
                );
            }
            let far = SimTime::from_secs(1_000_000);
            assert_eq!(
                tl.peak_usage_from(SimTime::from_secs(t)),
                brute_peak(&tl, SimTime::from_secs(t), far)
            );
        }
    }

    fn lcg(x: u64) -> u64 {
        x.wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
    }

    #[test]
    fn sweep_slot_matches_scan_oracle() {
        // Random probe/commit interleavings at several core widths; the
        // sweep `earliest_slot` must agree with the seed scan everywhere.
        let mut x = 0x9E37_79B9u64;
        for cores in [1u32, 2, 3, 8] {
            let mut tl = DeviceTimeline::new(cores);
            for _ in 0..60 {
                x = lcg(x);
                let ready = SimTime::from_secs((x >> 33) % 40);
                x = lcg(x);
                let dur = SimDuration::from_secs((x >> 21) % 6 + 1);
                x = lcg(x);
                let need = ((x >> 11) % u64::from(cores) + 1) as u32;
                x = lcg(x);
                let insertion = x & 1 == 0;
                let got = tl.earliest_slot(ready, dur, need, insertion);
                let want = tl.earliest_slot_scan(ready, dur, need, insertion);
                assert_eq!(
                    got, want,
                    "cores={cores} ready={ready:?} dur={dur:?} need={need} ins={insertion}"
                );
                if x & 2 == 0 {
                    tl.reserve(got, dur, need);
                }
            }
        }
    }

    #[test]
    fn unreserve_restores_timeline() {
        let mut tl = DeviceTimeline::new(4);
        tl.reserve(SimTime::ZERO, SimDuration::from_secs(10), 2);
        tl.reserve(SimTime::from_secs(10), SimDuration::from_secs(5), 4);
        tl.reserve(SimTime::from_secs(4), SimDuration::from_secs(2), 1);
        let times = tl.times.clone();
        let delta = tl.delta.clone();
        let usage = tl.usage.clone();
        // This reservation's end lands on the shared endpoint at t=10.
        tl.reserve(SimTime::from_secs(2), SimDuration::from_secs(8), 1);
        tl.unreserve(SimTime::from_secs(2), SimDuration::from_secs(8), 1);
        assert_eq!(tl.times, times);
        assert_eq!(tl.delta, delta);
        assert_eq!(tl.usage, usage);
        assert_eq!(tl.busy.len(), 3);
    }

    #[test]
    fn unreserve_revives_canceled_endpoint() {
        // An end (-1) and a start (+1) meeting at t=10 cancel to net zero
        // and drop the endpoint entry; retracting one side revives the
        // other's contribution.
        let mut tl = DeviceTimeline::new(2);
        tl.reserve(SimTime::ZERO, SimDuration::from_secs(10), 1);
        tl.reserve(SimTime::from_secs(10), SimDuration::from_secs(5), 1);
        assert!(!tl.times.contains(&SimTime::from_secs(10)));
        tl.unreserve(SimTime::ZERO, SimDuration::from_secs(10), 1);
        assert_eq!(
            tl.earliest_slot(SimTime::ZERO, SimDuration::from_secs(20), 2, true),
            SimTime::from_secs(15)
        );
        assert_eq!(
            tl.earliest_slot(SimTime::ZERO, SimDuration::from_secs(5), 1, true),
            SimTime::ZERO
        );
    }

    #[test]
    fn horizon_tracks_latest_end() {
        let mut tl = DeviceTimeline::new(2);
        assert_eq!(tl.horizon(), SimTime::ZERO);
        tl.reserve(SimTime::from_secs(5), SimDuration::from_secs(3), 1);
        assert_eq!(tl.horizon(), SimTime::from_secs(8));
    }
}
