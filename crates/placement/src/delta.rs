//! Delta-cost schedule evaluation for move-based search.
//!
//! [`crate::policies::AnnealingPlacer`] explores single-task reassignments.
//! The seed scored every move by cloning the placement and replaying the
//! *entire* DAG through a fresh [`Estimator`] — O(n) route lookups and slot
//! searches per move even when the move perturbs two devices. A
//! [`DeltaEvaluator`] keeps the committed schedule (per-device timelines,
//! start/finish arrays) alive across moves and re-schedules only the tasks a
//! move can actually affect.
//!
//! # Exactness
//!
//! The evaluator maintains the invariant that its state equals what
//! [`crate::objective::evaluate`] would produce for the current assignment
//! — not approximately, but bit-for-bit. `evaluate` commits tasks in
//! topological order, so a task's (start, finish) depends on exactly two
//! things: its predecessors' finish times (and nodes), and the reservations
//! of earlier-committed tasks on its own device. A move therefore dirties
//!
//! 1. the moved task itself,
//! 2. every task on the *old* and *new* device with a later topological
//!    position (their slot search saw a timeline that has now changed), and
//! 3. transitively, the successors of any task whose (start, finish)
//!    actually changed — plus their own device suffixes, per rule 2.
//!
//! Dirty tasks are unreserved up front, then recomputed in ascending
//! topological position: when task `u` is recomputed, every earlier task is
//! final and every later task on `u`'s device has been retracted, so the
//! slot search sees exactly the timeline the full replay would have shown
//! it. Clean tasks are untouched by construction. Scoring goes through
//! [`crate::objective::metrics_from_parts`] — the same code path a full
//! evaluation uses — so scores (and hence annealing accept/reject
//! decisions) are identical to the clone-and-replay oracle. The proptests
//! in `tests/proptests.rs` check both equivalences on random move
//! sequences.
//!
//! Every move also journals the state it overwrites — the dirtied tasks'
//! schedule entries and a clone of each touched timeline — so a rejected
//! move is reverted by [`DeltaEvaluator::undo_last_move`] with plain
//! copies instead of a second propagation pass.

use crate::env::Env;
use crate::estimate::{DeviceTimeline, EstimatedSchedule, Estimator, Placement};
use crate::objective::{metrics_from_parts, Metrics};
use continuum_model::DeviceId;
use continuum_sim::SimTime;
use continuum_workflow::{Dag, TaskId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ascending-topological-position work queue for the recompute loop. Each
/// task is pushed at most once per move (the dirty stamp guards inserts),
/// so a plain binary heap needs no deduplication.
type Agenda = BinaryHeap<Reverse<u32>>;

/// Incremental re-scheduler: apply single-task moves and re-score without
/// replaying the whole DAG.
pub struct DeltaEvaluator<'e> {
    env: &'e Env,
    dag: &'e Dag,
    timelines: Vec<DeviceTimeline>,
    assignment: Vec<DeviceId>,
    start: Vec<SimTime>,
    finish: Vec<SimTime>,
    /// Cores reserved per task (as committed; needed to unreserve).
    need: Vec<u32>,
    /// Topological order `evaluate` commits in.
    order: Vec<TaskId>,
    /// `pos[t]` is `t`'s index in `order`.
    pos: Vec<u32>,
    /// Tasks per device, sorted by topological position.
    on_dev: Vec<Vec<u32>>,
    /// Epoch-stamped dirty flags (one epoch per move; no per-move clears).
    dirty: Vec<u64>,
    epoch: u64,
    /// Undo log for the last move: `(task, start, finish, need)` of every
    /// task dirtied, captured before its state changed.
    saved_tasks: Vec<(u32, SimTime, SimTime, u32)>,
    /// Undo log: pre-move clones of every timeline the move mutated.
    saved_timelines: Vec<(u32, DeviceTimeline)>,
    /// Epoch stamp per device: timeline already snapshotted this move.
    tl_saved: Vec<u64>,
    /// `(task, old device)` of the last state-changing move.
    last_move: Option<(u32, DeviceId)>,
    /// Tasks recomputed across all moves so far (work counter for benches).
    pub recomputed: u64,
}

impl<'e> DeltaEvaluator<'e> {
    /// Build the evaluator by committing `placement` exactly as
    /// [`crate::objective::evaluate`] does, then adopting the estimator's
    /// timelines and schedule arrays.
    pub fn new(env: &'e Env, dag: &'e Dag, placement: &Placement) -> Self {
        assert_eq!(
            placement.assignment.len(),
            dag.len(),
            "placement size mismatch"
        );
        let order = dag.topo_order();
        let mut est = Estimator::new(env, dag);
        for &t in &order {
            est.commit(t, placement.device(t), true);
        }

        let n = dag.len();
        let mut pos = vec![0u32; n];
        for (i, t) in order.iter().enumerate() {
            pos[t.0 as usize] = i as u32;
        }
        let mut on_dev: Vec<Vec<u32>> = vec![Vec::new(); env.fleet.len()];
        for &t in &order {
            on_dev[placement.device(t).0 as usize].push(t.0);
        }
        let need: Vec<u32> = (0..n)
            .map(|i| {
                let t = dag.task(TaskId(i as u32));
                t.occupancy(env.fleet.device(placement.assignment[i]).spec.cores)
            })
            .collect();

        DeltaEvaluator {
            env,
            dag,
            timelines: est.timelines,
            assignment: placement.assignment.clone(),
            start: est.start,
            finish: est
                .finish
                .into_iter()
                .map(|f| f.expect("committed"))
                .collect(),
            need,
            order,
            pos,
            on_dev,
            dirty: vec![0; n],
            epoch: 0,
            saved_tasks: Vec::new(),
            saved_timelines: Vec::new(),
            tl_saved: vec![0; env.fleet.len()],
            last_move: None,
            recomputed: 0,
        }
    }

    /// Current assignment (always consistent with the schedule arrays).
    pub fn assignment(&self) -> &[DeviceId] {
        &self.assignment
    }

    /// Snapshot the current schedule.
    pub fn schedule(&self) -> EstimatedSchedule {
        EstimatedSchedule {
            placement: Placement {
                assignment: self.assignment.clone(),
            },
            start: self.start.clone(),
            finish: self.finish.clone(),
        }
    }

    /// Score the current schedule — bit-identical to evaluating the
    /// current assignment from scratch.
    pub fn metrics(&self) -> Metrics {
        metrics_from_parts(
            self.env,
            self.dag,
            &self.assignment,
            &self.start,
            &self.finish,
        )
    }

    /// Reassign `t` to `new_dev` and re-schedule every affected task.
    ///
    /// Returns the number of tasks recomputed. The move can be reverted two
    /// ways: [`Self::undo_last_move`] restores the pre-move state from a
    /// snapshot in O(touched) copies (how the annealer rejects), and moving
    /// the task back re-propagates to the identical state (the schedule is
    /// a pure function of the assignment).
    pub fn move_task(&mut self, t: TaskId, new_dev: DeviceId) -> usize {
        let ti = t.0 as usize;
        let old_dev = self.assignment[ti];
        if new_dev == old_dev {
            return 0;
        }
        self.epoch += 1;
        self.saved_tasks.clear();
        self.saved_timelines.clear();
        self.last_move = Some((t.0, old_dev));
        let mut agenda: Agenda = Agenda::new();

        // Mark t while it is still assigned (and reserved) on the old
        // device: this retracts its reservation from the right timeline
        // and the suffix closure dirties the old device's later tasks.
        self.mark(t.0, &mut agenda);

        // Then flip membership and assignment, and dirty the new device's
        // suffix — their slot searches will see t's incoming reservation.
        let old_list = &mut self.on_dev[old_dev.0 as usize];
        old_list.remove(
            old_list
                .iter()
                .position(|&x| x == t.0)
                .expect("task on its device list"),
        );
        let pos = &self.pos;
        let new_list = &mut self.on_dev[new_dev.0 as usize];
        let at = new_list.partition_point(|&x| pos[x as usize] < pos[ti]);
        new_list.insert(at, t.0);
        self.assignment[ti] = new_dev;

        let incoming: Vec<u32> = self.on_dev[new_dev.0 as usize]
            .iter()
            .copied()
            .filter(|&x| self.pos[x as usize] > self.pos[ti])
            .collect();
        for v in incoming {
            self.mark(v, &mut agenda);
        }

        let mut recomputed = 0usize;
        while let Some(Reverse(p)) = agenda.pop() {
            let u = self.order[p as usize];
            let changed = self.recompute(u);
            recomputed += 1;
            // The moved task's successors re-read their input's source
            // node even when its finish is unchanged.
            if changed || u == t {
                let succs: Vec<u32> = self.dag.succs(u).iter().map(|s| s.0).collect();
                for s in succs {
                    self.mark(s, &mut agenda);
                }
            }
        }
        self.recomputed += recomputed as u64;
        recomputed
    }

    /// Revert the last `move_task` from its snapshot: restore the mutated
    /// timelines wholesale and the dirtied tasks' schedule entries, without
    /// re-propagating. O(touched timelines + dirtied tasks) plain copies —
    /// no slot searches, no route lookups.
    pub fn undo_last_move(&mut self) {
        let (t, old_dev) = self
            .last_move
            .take()
            .expect("undo_last_move without a preceding move");
        let ti = t as usize;
        let new_dev = self.assignment[ti];
        for (d, tl) in self.saved_timelines.drain(..) {
            self.timelines[d as usize] = tl;
        }
        for &(v, s, f, need) in &self.saved_tasks {
            let vi = v as usize;
            self.start[vi] = s;
            self.finish[vi] = f;
            self.need[vi] = need;
        }
        self.saved_tasks.clear();
        let new_list = &mut self.on_dev[new_dev.0 as usize];
        new_list.remove(
            new_list
                .iter()
                .position(|&x| x == t)
                .expect("moved task on its new device list"),
        );
        let pos = &self.pos;
        let old_list = &mut self.on_dev[old_dev.0 as usize];
        let at = old_list.partition_point(|&x| pos[x as usize] < pos[ti]);
        old_list.insert(at, t);
        self.assignment[ti] = old_dev;
    }

    /// Snapshot `timelines[d]` into the undo log, once per move.
    fn save_timeline(&mut self, d: usize) {
        if self.tl_saved[d] != self.epoch {
            self.tl_saved[d] = self.epoch;
            self.saved_timelines
                .push((d as u32, self.timelines[d].clone()));
        }
    }

    /// Dirty `u`: retract its reservation, queue it, and close over every
    /// later task on its device (whose slot search depended on it).
    fn mark(&mut self, u: u32, agenda: &mut Agenda) {
        let mut stack = vec![u];
        while let Some(v) = stack.pop() {
            let vi = v as usize;
            if self.dirty[vi] == self.epoch {
                continue;
            }
            self.dirty[vi] = self.epoch;
            self.saved_tasks
                .push((v, self.start[vi], self.finish[vi], self.need[vi]));
            let dur = self.finish[vi].since(self.start[vi]);
            self.save_timeline(self.assignment[vi].0 as usize);
            self.timelines[self.assignment[vi].0 as usize].unreserve(
                self.start[vi],
                dur,
                self.need[vi],
            );
            agenda.push(Reverse(self.pos[vi]));
            let dlist = &self.on_dev[self.assignment[vi].0 as usize];
            let from = dlist.partition_point(|&x| self.pos[x as usize] <= self.pos[vi]);
            stack.extend(
                dlist[from..]
                    .iter()
                    .filter(|&&w| self.dirty[w as usize] != self.epoch),
            );
        }
    }

    /// Re-commit `u` on its (current) device; true if (start, finish)
    /// changed. Mirrors `Estimator::eft` + `commit` with insertion slots.
    fn recompute(&mut self, u: TaskId) -> bool {
        let ui = u.0 as usize;
        let dev = self.assignment[ui];
        let node = self.env.node_of(dev);
        let task = self.dag.task(u);

        let mut ready = SimTime::ZERO;
        for &d in &task.inputs {
            let item = self.dag.data(d);
            let (src, avail) = match self.dag.producer(d) {
                None => {
                    let home = item
                        .home
                        .expect("validated DAG has homes for external items");
                    (home, SimTime::ZERO)
                }
                Some(p) => (
                    self.env.node_of(self.assignment[p.0 as usize]),
                    self.finish[p.0 as usize],
                ),
            };
            let arrival = self
                .env
                .arrival(src, node, avail, item.bytes)
                .expect("disconnected topology");
            ready = ready.max(arrival);
        }

        let spec = &self.env.fleet.device(dev).spec;
        let dur = spec.compute_time_parallel(task.work_flops, task.parallelism);
        let need = task.occupancy(spec.cores);
        // The moved task reserves on a timeline `mark` may never have
        // touched (empty suffix on the new device).
        self.save_timeline(dev.0 as usize);
        let tl = &mut self.timelines[dev.0 as usize];
        let start = tl.earliest_slot(ready, dur, need, true);
        tl.reserve(start, dur, need);
        let fin = start + dur;

        let changed = start != self.start[ui] || fin != self.finish[ui];
        self.start[ui] = start;
        self.finish[ui] = fin;
        self.need[ui] = need;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::policies::{HeftPlacer, Placer};
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_sim::Rng;
    use continuum_workflow::{layered_random, LayeredSpec};

    fn setup(seed: u64, tasks: usize) -> (Env, Dag) {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = Rng::new(seed);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks,
                ..Default::default()
            },
        );
        (env, dag)
    }

    /// Full-replay oracle: schedule and metrics of the current assignment.
    fn oracle(env: &Env, dag: &Dag, assignment: &[DeviceId]) -> (EstimatedSchedule, Metrics) {
        evaluate(
            env,
            dag,
            &Placement {
                assignment: assignment.to_vec(),
            },
        )
    }

    #[test]
    fn fresh_evaluator_matches_evaluate() {
        let (env, dag) = setup(42, 60);
        let p = HeftPlacer::default().place(&env, &dag);
        let de = DeltaEvaluator::new(&env, &dag, &p);
        let (sched, m) = evaluate(&env, &dag, &p);
        assert_eq!(de.start, sched.start);
        assert_eq!(de.finish, sched.finish);
        assert_eq!(de.metrics(), m);
    }

    #[test]
    fn random_moves_match_full_replay() {
        let (env, dag) = setup(7, 50);
        let p = HeftPlacer::default().place(&env, &dag);
        let mut de = DeltaEvaluator::new(&env, &dag, &p);
        let mut rng = Rng::new(0xD317A);
        for step in 0..120 {
            let ti = TaskId(rng.index(dag.len()) as u32);
            let task = dag.task(ti);
            if task.constraints.pinned_node.is_some() {
                continue;
            }
            let feas = env.feasible_devices(task);
            let dev = *rng.choose(&feas);
            de.move_task(ti, dev);
            let (sched, m) = oracle(&env, &dag, de.assignment());
            assert_eq!(de.start, sched.start, "step {step}: start diverged");
            assert_eq!(de.finish, sched.finish, "step {step}: finish diverged");
            assert_eq!(de.metrics(), m, "step {step}: metrics diverged");
        }
    }

    #[test]
    fn move_back_restores_schedule() {
        let (env, dag) = setup(9, 40);
        let p = HeftPlacer::default().place(&env, &dag);
        let mut de = DeltaEvaluator::new(&env, &dag, &p);
        let start0 = de.start.clone();
        let finish0 = de.finish.clone();
        let ti = TaskId(dag.len() as u32 / 2);
        let old = de.assignment()[ti.0 as usize];
        let feas = env.feasible_devices(dag.task(ti));
        let other = *feas.iter().find(|&&d| d != old).expect("another device");
        de.move_task(ti, other);
        de.move_task(ti, old);
        assert_eq!(de.start, start0);
        assert_eq!(de.finish, finish0);
    }

    #[test]
    fn undo_restores_exact_state_and_future_moves_stay_exact() {
        let (env, dag) = setup(13, 50);
        let p = HeftPlacer::default().place(&env, &dag);
        let mut de = DeltaEvaluator::new(&env, &dag, &p);
        let mut rng = Rng::new(0x0D0);
        for step in 0..60 {
            let ti = TaskId(rng.index(dag.len()) as u32);
            let task = dag.task(ti);
            if task.constraints.pinned_node.is_some() {
                continue;
            }
            let feas = env.feasible_devices(task);
            let dev = *rng.choose(&feas);
            if dev == de.assignment()[ti.0 as usize] {
                continue;
            }
            let (assign0, start0, finish0) =
                (de.assignment.clone(), de.start.clone(), de.finish.clone());
            de.move_task(ti, dev);
            if step % 2 == 0 {
                // Reject: snapshot undo must restore the exact state.
                de.undo_last_move();
                assert_eq!(de.assignment, assign0, "step {step}");
                assert_eq!(de.start, start0, "step {step}");
                assert_eq!(de.finish, finish0, "step {step}");
            }
            // Either way the evaluator must still agree with the oracle —
            // including on moves made *after* an undo.
            let (sched, m) = oracle(&env, &dag, de.assignment());
            assert_eq!(de.start, sched.start, "step {step}");
            assert_eq!(de.finish, sched.finish, "step {step}");
            assert_eq!(de.metrics(), m, "step {step}");
        }
    }

    #[test]
    fn noop_move_recomputes_nothing() {
        let (env, dag) = setup(3, 30);
        let p = HeftPlacer::default().place(&env, &dag);
        let mut de = DeltaEvaluator::new(&env, &dag, &p);
        let dev = de.assignment()[0];
        assert_eq!(de.move_task(TaskId(0), dev), 0);
    }

    #[test]
    fn moves_touch_a_fraction_of_the_dag() {
        // The point of the exercise: a typical move must not re-schedule
        // everything. Averaged over random moves, the recompute set should
        // be well under the full DAG.
        let (env, dag) = setup(11, 200);
        let p = HeftPlacer::default().place(&env, &dag);
        let mut de = DeltaEvaluator::new(&env, &dag, &p);
        let mut rng = Rng::new(0xFAC7);
        let mut moves = 0u64;
        for _ in 0..200 {
            let ti = TaskId(rng.index(dag.len()) as u32);
            let task = dag.task(ti);
            if task.constraints.pinned_node.is_some() {
                continue;
            }
            let feas = env.feasible_devices(task);
            let dev = *rng.choose(&feas);
            if dev != de.assignment()[ti.0 as usize] {
                moves += 1;
            }
            de.move_task(ti, dev);
        }
        let avg = de.recomputed as f64 / moves as f64;
        assert!(
            avg < dag.len() as f64 * 0.8,
            "avg recompute set {avg:.1} of {} tasks",
            dag.len()
        );
    }
}
