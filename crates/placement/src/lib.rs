//! # continuum-placement
//!
//! The "where should I compute?" engine — core contribution A of the
//! `coding-the-continuum` reproduction.
//!
//! - [`env::Env`] bundles topology, routes, and fleet into the environment
//!   policies consult.
//! - [`estimate`] provides the shared contention-free performance model:
//!   device capacity profiles, data-arrival estimates, and
//!   earliest-finish-time queries.
//! - [`objective`] scores placements on makespan, energy, dollars, and
//!   bytes moved, with Pareto utilities for the multi-objective experiment.
//! - [`policies`] implements the baselines (random, round-robin,
//!   edge-only, cloud-only, greedy EFT) and the continuum-aware schedulers
//!   (HEFT, CPOP, data-gravity, simulated annealing).
//! - [`online`] implements the stateful per-request placer for streaming
//!   workloads.

#![warn(missing_docs)]

pub mod delta;
pub mod env;
pub mod estimate;
pub mod objective;
pub mod online;
pub mod policies;

pub use delta::DeltaEvaluator;
pub use env::Env;
pub use estimate::{DeviceTimeline, EstimatedSchedule, Estimator, Placement};
pub use objective::{
    dominates, evaluate, metrics_from_parts, metrics_of, pareto_front, Metrics, WeightedObjective,
};
pub use online::OnlinePlacer;
pub use policies::{
    standard_lineup, AnnealingPlacer, CpopPlacer, DataAwarePlacer, GreedyEftPlacer, HeftPlacer,
    MaxMinPlacer, MinMinPlacer, PeftPlacer, Placer, RandomPlacer, RoundRobinPlacer, TierPlacer,
};
