//! Property-based tests for the network substrate.

use continuum_net::{
    continuum, shortest_path_avoiding, ContinuumSpec, FlowNetwork, LinkSpec, NodeId, RouteCache,
    RouteTable, Tier, Topology,
};
use continuum_sim::{Rng, SimDuration, SimTime};
use proptest::prelude::*;

/// Build a random connected topology: a spanning chain plus extra edges.
fn random_topology(seed: u64, n: usize, extra: usize) -> Topology {
    let mut rng = Rng::new(seed);
    let mut t = Topology::new();
    for i in 0..n {
        t.add_node(format!("n{i}"), Tier::Fog);
    }
    for i in 1..n {
        t.add_link(
            NodeId(i as u32),
            NodeId(rng.below(i as u64) as u32),
            SimDuration::from_micros(rng.range_u64(100, 10_000)),
            rng.range_f64(1e6, 1e9),
        );
    }
    for _ in 0..extra {
        let a = rng.below(n as u64) as u32;
        let b = rng.below(n as u64) as u32;
        if a != b {
            t.add_link(
                NodeId(a),
                NodeId(b),
                SimDuration::from_micros(rng.range_u64(100, 10_000)),
                rng.range_f64(1e6, 1e9),
            );
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Dijkstra's distances satisfy the triangle inequality over any
    /// random connected topology, and every materialized path's latency
    /// equals its reported distance.
    #[test]
    fn routing_invariants(seed in any::<u64>(), n in 3usize..30, extra in 0usize..20) {
        let t = random_topology(seed, n, extra);
        prop_assert!(t.is_connected());
        let rt = RouteTable::build(&t);
        let mut rng = Rng::new(seed ^ 1);
        for _ in 0..10 {
            let a = NodeId(rng.below(n as u64) as u32);
            let b = NodeId(rng.below(n as u64) as u32);
            let c = NodeId(rng.below(n as u64) as u32);
            let dab = rt.distance(a, b).expect("connected");
            let dbc = rt.distance(b, c).expect("connected");
            let dac = rt.distance(a, c).expect("connected");
            prop_assert!(dac <= dab + dbc, "triangle violated");
            let p = rt.path(&t, a, b).expect("connected");
            prop_assert_eq!(p.latency, dab);
            // Path is contiguous a -> b.
            let mut cur = a;
            for &l in p.links.iter() {
                let link = t.link(l);
                prop_assert!(link.a == cur || link.b == cur);
                cur = if link.a == cur { link.b } else { link.a };
            }
            prop_assert_eq!(cur, b);
        }
    }

    /// ECMP paths are always shortest paths (same latency as canonical),
    /// regardless of the salt.
    #[test]
    fn ecmp_paths_are_shortest(seed in any::<u64>(), salt in any::<u64>()) {
        let t = random_topology(seed, 15, 10);
        let rt = RouteTable::build(&t);
        let mut rng = Rng::new(seed ^ 2);
        for _ in 0..10 {
            let a = NodeId(rng.below(15) as u32);
            let b = NodeId(rng.below(15) as u32);
            let canon = rt.path(&t, a, b).expect("connected");
            let ecmp = rt.path_ecmp(&t, a, b, salt).expect("connected");
            prop_assert_eq!(ecmp.latency, canon.latency);
        }
    }

    /// Max-min fairness conserves capacity (no link oversubscribed) and
    /// wastes none when a single bottleneck is shared (rates sum to its
    /// capacity when all flows cross it).
    #[test]
    fn flow_conservation(seed in any::<u64>(), n_flows in 1usize..20, bytes in 1u64..1_000_000) {
        let built = continuum(&ContinuumSpec::default());
        let rt = RouteTable::build(&built.topology);
        let mut fnw = FlowNetwork::new(&built.topology);
        let mut rng = Rng::new(seed);
        for _ in 0..n_flows {
            let s = built.sensors[rng.index(built.sensors.len())];
            let c = built.clouds[rng.index(built.clouds.len())];
            let p = rt.path(&built.topology, s, c).expect("connected");
            fnw.start(SimTime::ZERO, &p, bytes);
        }
        for (load, cap) in fnw.link_loads().iter().zip(fnw.capacities()) {
            prop_assert!(load <= &(cap * (1.0 + 1e-6)), "oversubscribed: {load} > {cap}");
        }
        // Every active flow makes progress.
        prop_assert!(fnw.next_completion().is_some());
        let (t, _) = fnw.next_completion().expect("flows active");
        prop_assert!(t > SimTime::ZERO);
    }

    /// Cached routes equal fresh computations across random
    /// `fail_link`/`restore_link` sequences — the epoch-invalidation
    /// contract the chaos executor relies on. The cache sees the exact
    /// call pattern `simulate_stream` uses: `path_ecmp` under the flow
    /// salt while the fabric is whole, `shortest_path_avoiding` under a
    /// shared salt class while degraded, including pairs the failures
    /// disconnect (the executor's `stalled` path: both sides `None`).
    #[test]
    fn route_cache_matches_fresh_routes(
        seed in any::<u64>(),
        n in 4usize..20,
        flips in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..30),
    ) {
        let t = random_topology(seed, n, n / 2);
        let rt = RouteTable::build(&t);
        let n_links = t.links().len();
        let mut dead = vec![false; n_links];
        let mut n_dead = 0usize;
        let mut cache = RouteCache::new();
        let mut rng = Rng::new(seed ^ 0xCAC4E);
        for (flip, _salt_seed) in flips {
            // Flip one link (fail if up, restore if down) and bump the
            // epoch — exactly what the executor does on fault events.
            let l = (flip % n_links as u64) as usize;
            dead[l] = !dead[l];
            n_dead = if dead[l] { n_dead + 1 } else { n_dead - 1 };
            cache.bump_epoch();
            // Between fault events, a burst of transfers resolves routes.
            for _ in 0..8 {
                let a = NodeId(rng.below(n as u64) as u32);
                let b = NodeId(rng.below(n as u64) as u32);
                let salt = rng.next_u64() | (1 << 63); // flow salts are nonzero
                let (cached, fresh) = if n_dead == 0 {
                    (
                        cache.route_with(a, b, salt, || rt.path_ecmp(&t, a, b, salt)),
                        rt.path_ecmp(&t, a, b, salt),
                    )
                } else {
                    (
                        cache.route_with(a, b, 0, || shortest_path_avoiding(&t, a, b, &dead)),
                        shortest_path_avoiding(&t, a, b, &dead),
                    )
                };
                match (cached, fresh) {
                    (Some(c), Some(f)) => {
                        prop_assert_eq!(c.links, f.links, "{a}->{b} dead={n_dead}");
                        prop_assert_eq!(c.latency, f.latency);
                        prop_assert_eq!(c.bottleneck_bps, f.bottleneck_bps);
                    }
                    // Disconnected pairs must agree too: serving a stale
                    // Some(path) here would teleport bytes over a dead
                    // link instead of stalling the transfer.
                    (None, None) => {}
                    (c, f) => prop_assert!(
                        false,
                        "cache/fresh disagree on reachability: {:?} vs {:?}",
                        c.is_some(),
                        f.is_some()
                    ),
                }
            }
        }
    }

    /// The dumbbell trunk is never oversubscribed and is fully used when
    /// enough flows cross it.
    #[test]
    fn dumbbell_trunk_saturates(pairs in 1usize..8) {
        let access = LinkSpec::new(SimDuration::from_millis(1), 1e9);
        let trunk = LinkSpec::new(SimDuration::from_millis(5), 1e6);
        let (t, left, right) = continuum_net::dumbbell(pairs, pairs, access, trunk);
        let rt = RouteTable::build(&t);
        let mut fnw = FlowNetwork::new(&t);
        for i in 0..pairs {
            let p = rt.path(&t, left[i], right[i]).expect("connected");
            fnw.start(SimTime::ZERO, &p, 1 << 20);
        }
        let loads = fnw.link_loads();
        // Trunk is link 0 by construction.
        prop_assert!((loads[0] - 1e6).abs() < 1.0, "trunk load {}", loads[0]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 1000, ..ProptestConfig::default() })]

    /// The incremental rate engine agrees with the from-scratch oracle
    /// (the seed's progressive-filling algorithm, kept as
    /// `FlowNetwork::oracle_rates`) after every mutation of a random
    /// start/remove/advance/link-flap sequence on a random topology, to
    /// 1e-9 relative error.
    #[test]
    fn incremental_rates_match_oracle(seed in any::<u64>(), n in 4usize..24, ops in 5usize..40) {
        let t = random_topology(seed, n, n / 2);
        let rt = RouteTable::build(&t);
        let n_links = t.links().len();
        let mut fnw = FlowNetwork::new(&t);
        let mut rng = Rng::new(seed ^ 0xF10);
        let mut live: Vec<continuum_net::FlowId> = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..ops {
            match rng.below(6) {
                // Start a new flow on a random shortest path (bias: a
                // third of the ops, so nets stay populated).
                0 | 1 => {
                    let a = NodeId(rng.below(n as u64) as u32);
                    let b = NodeId(rng.below(n as u64) as u32);
                    if a == b {
                        continue;
                    }
                    let p = rt.path(&t, a, b).expect("connected");
                    if !fnw.path_is_up(&p) {
                        continue; // a live caller would route around
                    }
                    if let Some(id) = fnw.start(now, &p, rng.range_u64(1_000, 10_000_000)) {
                        live.push(id);
                    }
                }
                // Cancel a random live flow.
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(rng.index(live.len()));
                    fnw.remove(now, id);
                }
                // Fail a random link, aborting flows that cross it.
                3 => {
                    let l = continuum_net::LinkId(rng.below(n_links as u64) as u32);
                    for aborted in fnw.fail_link(now, l) {
                        prop_assert!(aborted.remaining >= 0.0 && aborted.transferred >= 0.0);
                        live.retain(|&x| x != aborted.id);
                    }
                }
                // Restore a random link (no-op if it is up).
                4 => {
                    let l = continuum_net::LinkId(rng.below(n_links as u64) as u32);
                    fnw.restore_link(now, l);
                }
                // Run the net to its next completion (flows stalled on a
                // dead link are excluded by next_completion).
                _ => {
                    if let Some((tc, id)) = fnw.next_completion() {
                        now = tc;
                        fnw.remove(now, id);
                        live.retain(|&l| l != id);
                    }
                }
            }
            // After every mutation the incremental rates must match a
            // from-scratch recomputation.
            let oracle = fnw.oracle_rates();
            prop_assert_eq!(oracle.len(), live.len());
            for (id, want) in oracle {
                let got = fnw.rate(id).expect("oracle flow is live");
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "flow {:?}: incremental {} vs oracle {}",
                    id,
                    got,
                    want
                );
            }
        }
    }
}
