//! Continuum topology: nodes, tiers, and links.
//!
//! A topology is an undirected multigraph. Nodes are tagged with the
//! continuum [`Tier`] they sit in (sensor → edge → fog → cloud → HPC);
//! links carry a propagation latency and a bandwidth. All identifiers are
//! dense `u32` newtypes so adjacency and capacity tables are plain `Vec`s.

use continuum_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Where in the continuum a node sits.
///
/// The ordering is "distance from the data source": `Sensor < Edge < Fog <
/// Cloud < Hpc`. Several placement policies use this ordering (e.g.
/// edge-only keeps work at `<= Edge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Data-producing devices: cameras, instruments, IoT sensors.
    Sensor,
    /// Gateways and near-data micro-servers.
    Edge,
    /// Metro/aggregation servers between edge and cloud.
    Fog,
    /// Data-center virtual machines.
    Cloud,
    /// Supercomputer / large accelerator nodes.
    Hpc,
}

impl Tier {
    /// All tiers in source-to-core order.
    pub const ALL: [Tier; 5] = [Tier::Sensor, Tier::Edge, Tier::Fog, Tier::Cloud, Tier::Hpc];

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Sensor => "sensor",
            Tier::Edge => "edge",
            Tier::Fog => "fog",
            Tier::Cloud => "cloud",
            Tier::Hpc => "hpc",
        }
    }
}

/// A node of the continuum graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// This node's index.
    pub id: NodeId,
    /// Human-readable name (unique by convention, not enforced).
    pub name: String,
    /// Continuum tier.
    pub tier: Tier,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// This link's index.
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Capacity in bytes per second, shared by all flows crossing the link.
    pub bandwidth_bps: f64,
}

/// The continuum network graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency: per node, (neighbor, link) pairs.
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, tier: Tier) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.into(),
            tier,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected link; returns its id.
    ///
    /// # Panics
    /// If either endpoint is out of range, the endpoints coincide, or the
    /// bandwidth is not strictly positive.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: SimDuration,
        bandwidth_bps: f64,
    ) -> LinkId {
        assert!(a != b, "self-loop link");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "non-positive bandwidth"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a,
            b,
            latency,
            bandwidth_bps,
        });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of a node as (neighbor, link) pairs.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[id.0 as usize]
    }

    /// All node ids of a given tier.
    pub fn nodes_in_tier(&self, tier: Tier) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.tier == tier)
            .map(|n| n.id)
            .collect()
    }

    /// Multiply every link's bandwidth by `factor` (Gilder-ratio sweeps).
    pub fn scale_bandwidth(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        for l in &mut self.links {
            l.bandwidth_bps *= factor;
        }
    }

    /// Multiply every link's latency by `factor`.
    pub fn scale_latency(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        for l in &mut self.links {
            l.latency = l.latency.mul_f64(factor);
        }
    }

    /// A copy of this topology with the given links removed (failed).
    ///
    /// Link ids are re-assigned densely in the copy; node ids are
    /// unchanged. Used by the resilience experiments to model link
    /// failures: rebuild the route table over the degraded copy and
    /// re-place.
    pub fn without_links(&self, failed: &[LinkId]) -> Topology {
        let mut out = Topology::new();
        for n in &self.nodes {
            out.add_node(n.name.clone(), n.tier);
        }
        for l in &self.links {
            if !failed.contains(&l.id) {
                out.add_link(l.a, l.b, l.latency, l.bandwidth_bps);
            }
        }
        out
    }

    /// Links whose two endpoints sit in the given tiers (either order) —
    /// e.g. the WAN links between fog and cloud.
    pub fn links_between(&self, a: Tier, b: Tier) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| {
                let (ta, tb) = (self.node(l.a).tier, self.node(l.b).tier);
                (ta == a && tb == b) || (ta == b && tb == a)
            })
            .map(|l| l.id)
            .collect()
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(m, _) in self.neighbors(n) {
                if !seen[m.0 as usize] {
                    seen[m.0 as usize] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(1), 1e9);
        t.add_link(b, c, SimDuration::from_millis(10), 1e9);
        t.add_link(a, c, SimDuration::from_millis(50), 1e8);
        t
    }

    #[test]
    fn build_and_query() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.node(NodeId(1)).tier, Tier::Fog);
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn tier_ordering() {
        assert!(Tier::Sensor < Tier::Edge);
        assert!(Tier::Edge < Tier::Fog);
        assert!(Tier::Fog < Tier::Cloud);
        assert!(Tier::Cloud < Tier::Hpc);
    }

    #[test]
    fn nodes_in_tier_filters() {
        let t = triangle();
        assert_eq!(t.nodes_in_tier(Tier::Fog), vec![NodeId(1)]);
        assert!(t.nodes_in_tier(Tier::Sensor).is_empty());
    }

    #[test]
    fn scale_bandwidth_multiplies() {
        let mut t = triangle();
        let before = t.link(LinkId(0)).bandwidth_bps;
        t.scale_bandwidth(4.0);
        assert_eq!(t.link(LinkId(0)).bandwidth_bps, before * 4.0);
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::new();
        t.add_node("a", Tier::Edge);
        t.add_node("b", Tier::Edge);
        assert!(!t.is_connected());
    }

    #[test]
    fn without_links_removes_and_reindexes() {
        let t = triangle();
        let degraded = t.without_links(&[LinkId(1)]);
        assert_eq!(degraded.node_count(), 3);
        assert_eq!(degraded.link_count(), 2);
        // Still connected via the remaining two edges of the triangle.
        assert!(degraded.is_connected());
        // Ids re-densified: the surviving links are l0 and l1.
        assert_eq!(degraded.link(LinkId(1)).a, NodeId(0));
        // Removing two disconnects node b.
        let cut = t.without_links(&[LinkId(0), LinkId(1)]);
        assert!(!cut.is_connected());
    }

    #[test]
    fn links_between_tiers() {
        let t = triangle();
        let ef = t.links_between(Tier::Edge, Tier::Fog);
        assert_eq!(ef, vec![LinkId(0)]);
        let fc = t.links_between(Tier::Cloud, Tier::Fog);
        assert_eq!(fc, vec![LinkId(1)]);
        assert!(t.links_between(Tier::Sensor, Tier::Hpc).is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        t.add_link(a, a, SimDuration::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-positive bandwidth")]
    fn zero_bandwidth_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Edge);
        t.add_link(a, b, SimDuration::ZERO, 0.0);
    }
}
