//! Max-min fair bandwidth sharing for concurrent transfers.
//!
//! The simulated executor charges transfers their *contended* time: all
//! active flows crossing a link share its capacity max-min fairly
//! (progressive filling). The [`FlowNetwork`] tracks active flows, their
//! fair rates, and remaining bytes; the caller (an event loop) asks for the
//! next completion time and advances the network to event timestamps.
//!
//! An ablation experiment compares this model against the naive
//! "bottleneck-only" estimate of [`crate::routing::Path::transfer_time`].

use crate::routing::Path;
use crate::topology::{LinkId, Topology};
use continuum_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Identifier of an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    links: Vec<LinkId>,
    remaining: f64, // bytes
    rate: f64,      // bytes/s, max-min fair share
}

/// Concurrent flows sharing link capacity max-min fairly.
///
/// ```
/// use continuum_net::{FlowNetwork, RouteTable, Tier, Topology};
/// use continuum_sim::{SimDuration, SimTime};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("a", Tier::Edge);
/// let b = topo.add_node("b", Tier::Cloud);
/// topo.add_link(a, b, SimDuration::from_millis(1), 1e6); // 1 MB/s
/// let routes = RouteTable::build(&topo);
/// let path = routes.path(&topo, a, b).unwrap();
///
/// let mut net = FlowNetwork::new(&topo);
/// let f1 = net.start(SimTime::ZERO, &path, 1_000_000).unwrap();
/// let f2 = net.start(SimTime::ZERO, &path, 1_000_000).unwrap();
/// // Two flows share the megabyte-per-second link fairly.
/// assert_eq!(net.rate(f1), Some(5e5));
/// assert_eq!(net.rate(f2), Some(5e5));
/// ```
///
/// Local (zero-hop) flows complete instantaneously and are never registered.
/// Usage protocol, driven by an external event loop:
///
/// 1. [`FlowNetwork::start`] a flow when its transfer begins (after the
///    path's propagation latency, if the caller models it).
/// 2. [`FlowNetwork::next_completion`] to learn which flow finishes next
///    and when; schedule an event for it.
/// 3. On any event that changes the flow set, first [`FlowNetwork::advance`]
///    to the event time, then apply the change; previously scheduled
///    completion events that no longer match should be discarded by the
///    caller (compare against `next_completion` again).
#[derive(Debug)]
pub struct FlowNetwork {
    capacity: Vec<f64>,
    flows: HashMap<FlowId, Flow>,
    next_id: u64,
    clock: SimTime,
}

impl FlowNetwork {
    /// Build over the links of `topo` (captures current capacities).
    pub fn new(topo: &Topology) -> FlowNetwork {
        FlowNetwork {
            capacity: topo.links().iter().map(|l| l.bandwidth_bps).collect(),
            flows: HashMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
        }
    }

    /// Current internal clock (last `advance` / `start` time).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Start a flow of `bytes` along `path` at time `now`.
    ///
    /// Returns `None` if the path is local (zero hops) — such transfers are
    /// free under this model and complete immediately.
    ///
    /// # Panics
    /// If `now` is earlier than the network's clock.
    pub fn start(&mut self, now: SimTime, path: &Path, bytes: u64) -> Option<FlowId> {
        if path.links.is_empty() {
            return None;
        }
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow { links: path.links.clone(), remaining: bytes.max(1) as f64, rate: 0.0 },
        );
        self.recompute_rates();
        Some(id)
    }

    /// Remove a flow (completion or cancellation) at time `now`.
    pub fn remove(&mut self, now: SimTime, id: FlowId) {
        self.advance(now);
        self.flows.remove(&id);
        self.recompute_rates();
    }

    /// The earliest (time, flow) completion under current rates, if any
    /// flows are active.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        self.flows
            .iter()
            .map(|(&id, f)| {
                let dt = if f.rate > 0.0 { f.remaining / f.rate } else { f64::INFINITY };
                (self.clock + SimDuration::from_secs_f64(dt.min(1e18)), id)
            })
            .min()
    }

    /// Advance the clock to `now`, draining `rate * dt` bytes per flow.
    ///
    /// # Panics
    /// Debug-asserts that time does not move backwards.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.clock, "flow network time went backwards");
        if now <= self.clock {
            return;
        }
        let dt = now.since(self.clock).as_secs_f64();
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        self.clock = now;
    }

    /// The current max-min fair rate of a flow (bytes/s).
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Remaining bytes of a flow.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Progressive filling: repeatedly saturate the most constrained link.
    fn recompute_rates(&mut self) {
        // Residual capacity per link and number of unfrozen flows on it.
        let mut residual = self.capacity.clone();
        let mut count = vec![0u32; self.capacity.len()];
        for f in self.flows.values() {
            for &l in &f.links {
                count[l.0 as usize] += 1;
            }
        }
        let mut frozen: HashMap<FlowId, f64> = HashMap::with_capacity(self.flows.len());
        let mut unfrozen: Vec<FlowId> = self.flows.keys().copied().collect();
        unfrozen.sort_unstable(); // determinism
        while !unfrozen.is_empty() {
            // Fair share of the most constrained link among links carrying
            // unfrozen flows.
            let mut best: Option<(f64, usize)> = None;
            for (li, (&res, &cnt)) in residual.iter().zip(count.iter()).enumerate() {
                if cnt > 0 {
                    let share = res / cnt as f64;
                    if best.map(|(s, _)| share < s).unwrap_or(true) {
                        best = Some((share, li));
                    }
                }
            }
            let Some((share, bottleneck)) = best else { break };
            // Freeze every unfrozen flow crossing the bottleneck at `share`.
            let mut still = Vec::with_capacity(unfrozen.len());
            for id in unfrozen.drain(..) {
                let f = &self.flows[&id];
                if f.links.iter().any(|l| l.0 as usize == bottleneck) {
                    frozen.insert(id, share);
                    for &l in &f.links {
                        residual[l.0 as usize] -= share;
                        count[l.0 as usize] -= 1;
                    }
                } else {
                    still.push(id);
                }
            }
            unfrozen = still;
            // Numerical hygiene: clamp tiny negative residuals.
            for r in &mut residual {
                if *r < 0.0 {
                    *r = 0.0;
                }
            }
        }
        for (id, f) in self.flows.iter_mut() {
            f.rate = frozen.get(id).copied().unwrap_or(0.0);
        }
    }

    /// Sum of rates crossing each link; used by conservation tests.
    pub fn link_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.capacity.len()];
        for f in self.flows.values() {
            for &l in &f.links {
                loads[l.0 as usize] += f.rate;
            }
        }
        loads
    }

    /// Link capacities this network was built with.
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteTable;
    use crate::topology::{NodeId, Tier, Topology};
    use continuum_sim::SimDuration;

    /// Linear chain a - b - c with 1e6 B/s links, negligible latency.
    fn chain() -> (Topology, RouteTable) {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_micros(1), 1e6);
        t.add_link(b, c, SimDuration::from_micros(1), 1e6);
        let rt = RouteTable::build(&t);
        (t, rt)
    }

    #[test]
    fn single_flow_full_rate() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let id = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        assert_eq!(fnw.rate(id), Some(1e6));
        let (tc, fid) = fnw.next_completion().unwrap();
        assert_eq!(fid, id);
        assert!((tc.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_fairly() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        let f2 = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        assert_eq!(fnw.rate(f1), Some(5e5));
        assert_eq!(fnw.rate(f2), Some(5e5));
    }

    #[test]
    fn completion_frees_bandwidth() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p, 500_000).unwrap();
        let f2 = fnw.start(SimTime::ZERO, &p, 1_500_000).unwrap();
        // Both run at 0.5e6 B/s; f1 finishes at t=1s.
        let (t1, done) = fnw.next_completion().unwrap();
        assert_eq!(done, f1);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        fnw.remove(t1, f1);
        // f2 has 1e6 bytes left and now gets the full 1e6 B/s.
        assert_eq!(fnw.rate(f2), Some(1e6));
        let (t2, done2) = fnw.next_completion().unwrap();
        assert_eq!(done2, f2);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_not_proportional() {
        // Two links: a-b (cap 10), b-c (cap 4).
        // Flow 1 crosses a-b only; flow 2 crosses a-b-c.
        // Max-min: flow 2 limited to 4 by b-c; flow 1 takes remaining 6.
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_micros(1), 10.0);
        t.add_link(b, c, SimDuration::from_micros(1), 4.0);
        let rt = RouteTable::build(&t);
        let mut fnw = FlowNetwork::new(&t);
        let p_ab = rt.path(&t, a, b).unwrap();
        let p_ac = rt.path(&t, a, c).unwrap();
        let f2 = fnw.start(SimTime::ZERO, &p_ac, 100).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p_ab, 100).unwrap();
        assert!((fnw.rate(f2).unwrap() - 4.0).abs() < 1e-9);
        assert!((fnw.rate(f1).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn local_path_is_free() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(0)).unwrap();
        assert!(fnw.start(SimTime::ZERO, &p, 1 << 40).is_none());
    }

    #[test]
    fn no_link_oversubscribed() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let p01 = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let p12 = rt.path(&t, NodeId(1), NodeId(2)).unwrap();
        for _ in 0..3 {
            fnw.start(SimTime::ZERO, &p02, 1_000_000);
            fnw.start(SimTime::ZERO, &p01, 1_000_000);
            fnw.start(SimTime::ZERO, &p12, 1_000_000);
        }
        for (load, cap) in fnw.link_loads().iter().zip(fnw.capacities()) {
            assert!(load <= &(cap * (1.0 + 1e-9)), "load {load} > cap {cap}");
        }
    }

    #[test]
    fn advance_drains_bytes() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let id = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        fnw.advance(SimTime::from_millis(500));
        let rem = fnw.remaining(id).unwrap();
        assert!((rem - 500_000.0).abs() < 1.0, "rem {rem}");
    }
}
