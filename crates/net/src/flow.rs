//! Max-min fair bandwidth sharing for concurrent transfers.
//!
//! The simulated executor charges transfers their *contended* time: all
//! active flows crossing a link share its capacity max-min fairly
//! (progressive filling). The [`FlowNetwork`] tracks active flows, their
//! fair rates, and remaining bytes; the caller (an event loop) asks for the
//! next completion time and advances the network to event timestamps.
//!
//! # Engine layout
//!
//! Flow state lives in a slab (`Vec` of slots plus a free list) rather
//! than a `HashMap`: a [`FlowId`] encodes `(generation << 32) | slot`, so
//! lookup is an index plus a generation check and start/remove never
//! rehash. Each link keeps an index of the active flows crossing it, and
//! paths share their link list (`Arc<[LinkId]>`) with the route table
//! instead of cloning it per flow.
//!
//! Rate recomputation is deferred: `start`/`remove` only update the flow
//! and link indices and set a dirty bit, and the next observation
//! (`rate`, `next_completion`, `advance`, `link_loads`) runs one
//! progressive-filling pass — so a burst of mutations at one event
//! timestamp costs a single recomputation. The pass itself visits only
//! the links that currently carry flows (a persistently maintained
//! active-link index), saturating the most-constrained links first; it
//! costs `O(waves × active links + sum of active path lengths)`,
//! independent of the total link count — the from-scratch seed algorithm
//! scanned and reallocated every link on every mutation. That seed
//! algorithm is retained verbatim as [`FlowNetwork::oracle_rates`] and
//! cross-checked against the engine by property tests.
//!
//! Byte draining is *lazy*: each flow carries an anchor `(time,
//! remaining, rate)` triple and is re-anchored only when a recompute
//! actually changes its rate bitwise. `advance` just moves the clock —
//! O(1) instead of the former O(active flows) per event — and observers
//! evaluate `remaining - rate × (now - anchor)` on demand. Besides the
//! speed, this makes a flow's byte trajectory a pure function of its
//! rate-change history: two engines that apply the same mutations to a
//! flow's links compute bit-identical remaining bytes and completion
//! times even if their clocks advance through different intermediate
//! event timestamps. The region-sharded executor
//! (`continuum-runtime::simulate_stream_sharded`) leans on exactly that
//! property, and on the monotone per-flow `seq` used to break
//! completion-time ties identically in every engine instance.
//!
//! An ablation experiment compares this model against the naive
//! "bottleneck-only" estimate of [`crate::routing::Path::transfer_time`].

use crate::routing::Path;
use crate::topology::{LinkId, Topology};
use continuum_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// Identifier of an active flow: `(generation << 32) | slot`.
///
/// Generations make stale ids detectable after their slot is reused, so
/// ids stay unique for the lifetime of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl FlowId {
    fn new(slot: u32, generation: u32) -> FlowId {
        FlowId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One slab slot. `links` is empty while the slot sits on the free list.
#[derive(Debug, Clone)]
struct FlowSlot {
    /// Bumped every time the slot is freed; part of the [`FlowId`].
    generation: u32,
    links: Arc<[LinkId]>,
    /// `link_pos[i]` = this flow's position in `link_flows[links[i]]`.
    link_pos: Vec<u32>,
    total: f64, // bytes requested at `start`
    /// Bytes remaining at `anchor` (NOT at the network clock); the flow
    /// drains at `rate` from there. Re-anchored only when a recompute
    /// changes the rate bitwise.
    remaining: f64,
    rate: f64, // bytes/s, max-min fair share
    /// When `remaining` was sampled.
    anchor: SimTime,
    /// Start order, monotone per engine. Completion ties break on `seq`
    /// rather than [`FlowId`] because slot reuse makes id order depend on
    /// removal history, while start order is reproducible across engine
    /// instances simulating subsets of the same workload.
    seq: u64,
}

impl FlowSlot {
    /// Bytes left at time `t` (must be ≥ `anchor`) under the current rate.
    fn remaining_at(&self, t: SimTime) -> f64 {
        let dt = t.since(self.anchor).as_secs_f64();
        if dt <= 0.0 {
            self.remaining
        } else {
            (self.remaining - self.rate * dt).max(0.0)
        }
    }
}

/// A flow forcibly terminated by [`FlowNetwork::fail_link`].
///
/// Bytes already transferred are preserved so the caller can resume the
/// remainder over a surviving path without re-sending them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbortedFlow {
    /// The aborted flow's id (now stale).
    pub id: FlowId,
    /// Bytes delivered before the abort.
    pub transferred: f64,
    /// Bytes still owed when the link died.
    pub remaining: f64,
}

/// Per-link filling state, merged into one entry so the random-access
/// updates in the freeze loop touch a single cache line per link.
#[derive(Debug, Clone, Copy, Default)]
struct LinkFill {
    /// Remaining capacity during filling (bytes/s).
    residual: f64,
    /// Active flows crossing the link not yet frozen.
    unfrozen: u32,
}

/// Reusable buffers for `recompute_rates`. Per-link state is (re)seeded
/// from the persistent active-link index each call; the flow freeze
/// stamps are epoch-based so they are never cleared.
#[derive(Debug, Clone, Default)]
struct Scratch {
    epoch: u64,
    /// Per link: filling state (valid only for links seeded this call).
    fill: Vec<LinkFill>,
    /// Per slot: epoch in which the flow's rate was frozen.
    flow_epoch: Vec<u64>,
    /// Wave-local working copy of the active-link index, compacted as
    /// links run out of unfrozen flows.
    work: Vec<u32>,
    /// Links tied at the current wave's minimum share (wave-local).
    tied: Vec<u32>,
}

/// Concurrent flows sharing link capacity max-min fairly.
///
/// ```
/// use continuum_net::{FlowNetwork, RouteTable, Tier, Topology};
/// use continuum_sim::{SimDuration, SimTime};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("a", Tier::Edge);
/// let b = topo.add_node("b", Tier::Cloud);
/// topo.add_link(a, b, SimDuration::from_millis(1), 1e6); // 1 MB/s
/// let routes = RouteTable::build(&topo);
/// let path = routes.path(&topo, a, b).unwrap();
///
/// let mut net = FlowNetwork::new(&topo);
/// let f1 = net.start(SimTime::ZERO, &path, 1_000_000).unwrap();
/// let f2 = net.start(SimTime::ZERO, &path, 1_000_000).unwrap();
/// // Two flows share the megabyte-per-second link fairly.
/// assert_eq!(net.rate(f1), Some(5e5));
/// assert_eq!(net.rate(f2), Some(5e5));
/// ```
///
/// Local (zero-hop) flows complete instantaneously and are never registered.
/// Usage protocol, driven by an external event loop:
///
/// 1. [`FlowNetwork::start`] a flow when its transfer begins (after the
///    path's propagation latency, if the caller models it).
/// 2. [`FlowNetwork::next_completion`] to learn which flow finishes next
///    and when; schedule an event for it.
/// 3. On any event that changes the flow set, first [`FlowNetwork::advance`]
///    to the event time, then apply the change; previously scheduled
///    completion events that no longer match should be discarded by the
///    caller (compare against `next_completion` again).
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Effective capacity: 0 while a link is failed.
    capacity: Vec<f64>,
    /// Capacity as built, restored by `restore_link`.
    base_capacity: Vec<f64>,
    link_up: Vec<bool>,
    slots: Vec<FlowSlot>,
    free_slots: Vec<u32>,
    /// Active slot indices, unordered; `slot_pos` tracks positions.
    active_slots: Vec<u32>,
    slot_pos: Vec<u32>,
    /// Per link: slot indices of the active flows crossing it.
    link_flows: Vec<Vec<u32>>,
    /// Links whose `link_flows` list is non-empty, unordered;
    /// `link_active_pos` tracks positions.
    active_links: Vec<u32>,
    link_active_pos: Vec<u32>,
    scratch: Scratch,
    /// Next start-order stamp (see [`FlowSlot::seq`]).
    next_seq: u64,
    clock: SimTime,
    /// Set by `start`/`remove`; rates are recomputed lazily on the next
    /// observation, so mutations at one event timestamp coalesce into a
    /// single progressive-filling pass.
    dirty: bool,
    /// Lifetime recompute passes (telemetry; plain counter, always on).
    recomputes: u64,
    /// Sum of active-flow batch sizes over all recompute passes
    /// (telemetry): `recomputed_flows / recomputes` is the mean dirty-set
    /// size a pass re-rates.
    recomputed_flows: u64,
}

/// Lifetime counters of one [`FlowNetwork`], harvested by the telemetry
/// plane (see [`FlowNetwork::publish_metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowEngineStats {
    /// Progressive-filling passes actually run (dirty observations).
    pub recomputes: u64,
    /// Sum of the active-flow counts those passes re-rated.
    pub recomputed_flows: u64,
}

impl FlowNetwork {
    /// Build over the links of `topo` (captures current capacities).
    pub fn new(topo: &Topology) -> FlowNetwork {
        let links = topo.links().len();
        let capacity: Vec<f64> = topo.links().iter().map(|l| l.bandwidth_bps).collect();
        FlowNetwork {
            base_capacity: capacity.clone(),
            capacity,
            link_up: vec![true; links],
            slots: Vec::new(),
            free_slots: Vec::new(),
            active_slots: Vec::new(),
            slot_pos: Vec::new(),
            link_flows: vec![Vec::new(); links],
            active_links: Vec::new(),
            link_active_pos: vec![0; links],
            scratch: Scratch {
                fill: vec![LinkFill::default(); links],
                ..Scratch::default()
            },
            next_seq: 0,
            clock: SimTime::ZERO,
            dirty: false,
            recomputes: 0,
            recomputed_flows: 0,
        }
    }

    /// Lifetime recompute counters — the record the telemetry plane
    /// harvests at run end.
    pub fn engine_stats(&self) -> FlowEngineStats {
        FlowEngineStats {
            recomputes: self.recomputes,
            recomputed_flows: self.recomputed_flows,
        }
    }

    /// Publish this engine's counters into a metrics registry under
    /// `prefix` (e.g. `"executor.flow_engine"`), including the derived
    /// mean-batch gauge.
    pub fn publish_metrics(&self, reg: &continuum_obs::MetricsRegistry, prefix: &str) {
        let s = self.engine_stats();
        reg.record(&format!("{prefix}.recomputes"), s.recomputes);
        reg.record(&format!("{prefix}.recomputed_flows"), s.recomputed_flows);
        let mean = if s.recomputes == 0 {
            0.0
        } else {
            s.recomputed_flows as f64 / s.recomputes as f64
        };
        reg.set_gauge(&format!("{prefix}.mean_batch"), mean);
    }

    /// Current internal clock (last `advance` / `start` time).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.active_slots.len()
    }

    /// Start a flow of `bytes` along `path` at time `now`.
    ///
    /// Returns `None` if the path is local (zero hops) — such transfers are
    /// free under this model and complete immediately.
    ///
    /// # Panics
    /// If `now` is earlier than the network's clock.
    pub fn start(&mut self, now: SimTime, path: &Path, bytes: u64) -> Option<FlowId> {
        if path.links.is_empty() {
            return None;
        }
        self.advance(now);
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(FlowSlot {
                    generation: 0,
                    links: Vec::new().into(),
                    link_pos: Vec::new(),
                    total: 0.0,
                    remaining: 0.0,
                    rate: 0.0,
                    anchor: SimTime::ZERO,
                    seq: 0,
                });
                self.slot_pos.push(0);
                self.scratch.flow_epoch.push(0);
                s
            }
        };
        let f = &mut self.slots[slot as usize];
        f.links = path.links.clone();
        f.total = bytes.max(1) as f64;
        f.remaining = f.total;
        f.rate = 0.0;
        f.anchor = self.clock;
        f.seq = self.next_seq;
        self.next_seq += 1;
        f.link_pos.clear();
        for i in 0..self.slots[slot as usize].links.len() {
            let l = self.slots[slot as usize].links[i].0 as usize;
            if self.link_flows[l].is_empty() {
                self.link_active_pos[l] = self.active_links.len() as u32;
                self.active_links.push(l as u32);
            }
            self.slots[slot as usize]
                .link_pos
                .push(self.link_flows[l].len() as u32);
            self.link_flows[l].push(slot);
        }
        self.slot_pos[slot as usize] = self.active_slots.len() as u32;
        self.active_slots.push(slot);
        let id = FlowId::new(slot, self.slots[slot as usize].generation);
        self.dirty = true;
        Some(id)
    }

    /// Remove a flow (completion or cancellation) at time `now`.
    ///
    /// Stale or unknown ids are ignored (matching the seed's tolerant
    /// `HashMap::remove` behaviour).
    pub fn remove(&mut self, now: SimTime, id: FlowId) {
        self.advance(now);
        let slot = id.slot();
        if slot >= self.slots.len() || self.slots[slot].generation != id.generation() {
            return;
        }
        // A freed slot has an empty link list but keeps its generation
        // until reuse; double-removes of zero-hop ids cannot occur since
        // zero-hop paths are never registered.
        if self.slots[slot].links.is_empty() {
            return;
        }
        // Unhook from every link's flow index.
        let links = std::mem::replace(&mut self.slots[slot].links, Vec::new().into());
        for (i, &l) in links.iter().enumerate() {
            let pos = self.slots[slot].link_pos[i] as usize;
            let list = &mut self.link_flows[l.0 as usize];
            list.swap_remove(pos);
            if pos < list.len() {
                let moved = list[pos] as usize;
                let j = self.slots[moved]
                    .links
                    .iter()
                    .position(|&x| x == l)
                    .expect("moved flow crosses this link");
                self.slots[moved].link_pos[j] = pos as u32;
            } else if list.is_empty() {
                // Last flow left this link: drop it from the active-link
                // index, patching the position of the entry swapped in.
                let apos = self.link_active_pos[l.0 as usize] as usize;
                self.active_links.swap_remove(apos);
                if apos < self.active_links.len() {
                    self.link_active_pos[self.active_links[apos] as usize] = apos as u32;
                }
            }
        }
        // Unhook from the active list.
        let pos = self.slot_pos[slot] as usize;
        self.active_slots.swap_remove(pos);
        if pos < self.active_slots.len() {
            self.slot_pos[self.active_slots[pos] as usize] = pos as u32;
        }
        self.slots[slot].generation = self.slots[slot].generation.wrapping_add(1);
        self.slots[slot].rate = 0.0;
        self.free_slots.push(slot as u32);
        self.dirty = true;
    }

    /// Fail a link at time `now`: its capacity drops to zero and every
    /// in-flight flow crossing it is aborted.
    ///
    /// Bytes drained before `now` are preserved in the returned
    /// [`AbortedFlow`]s (sorted by id for determinism) so callers can
    /// resume the remainder elsewhere. Failing an already-dead link is a
    /// no-op returning no aborts.
    ///
    /// Starting a new flow across a dead link is not forbidden — it simply
    /// runs at rate zero until the link is restored — but callers that can
    /// route around the failure should (see `shortest_path_avoiding`).
    pub fn fail_link(&mut self, now: SimTime, link: LinkId) -> Vec<AbortedFlow> {
        let li = link.0 as usize;
        if !self.link_up[li] {
            return Vec::new();
        }
        // Bring rates up to the failure instant; bytes drained before
        // `now` are computed lazily from each flow's anchor below.
        self.advance(now);
        self.link_up[li] = false;
        self.capacity[li] = 0.0;
        let mut by_seq: Vec<(u64, AbortedFlow)> = self.link_flows[li]
            .iter()
            .map(|&s| {
                let f = &self.slots[s as usize];
                let rem = f.remaining_at(now);
                (
                    f.seq,
                    AbortedFlow {
                        id: FlowId::new(s, f.generation),
                        transferred: (f.total - rem).max(0.0),
                        remaining: rem,
                    },
                )
            })
            .collect();
        // Start order, not id order: reproducible across engine instances
        // that saw the same flows start (ids depend on slot-reuse history).
        by_seq.sort_unstable_by_key(|&(seq, _)| seq);
        let aborted: Vec<AbortedFlow> = by_seq.into_iter().map(|(_, a)| a).collect();
        for a in &aborted {
            self.remove(now, a.id);
        }
        self.dirty = true;
        aborted
    }

    /// Restore a failed link to its original capacity at time `now`.
    ///
    /// Restoring a live link is a no-op.
    pub fn restore_link(&mut self, now: SimTime, link: LinkId) {
        let li = link.0 as usize;
        if self.link_up[li] {
            return;
        }
        self.advance(now);
        self.link_up[li] = true;
        self.capacity[li] = self.base_capacity[li];
        self.dirty = true;
    }

    /// Whether a link currently carries traffic (not failed).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0 as usize]
    }

    /// Whether every link of `path` is up (vacuously true for local paths).
    pub fn path_is_up(&self, path: &Path) -> bool {
        path.links.iter().all(|&l| self.link_up[l.0 as usize])
    }

    /// The earliest (time, flow) completion under current rates, if any
    /// flows are making progress.
    ///
    /// Flows stalled at rate zero (e.g. crossing a failed link) never
    /// complete and are excluded; they reappear once capacity returns.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        self.ensure_rates();
        self.active_slots
            .iter()
            .filter_map(|&s| {
                let f = &self.slots[s as usize];
                if f.rate <= 0.0 {
                    return None;
                }
                // Completion is projected from the flow's anchor, not the
                // current clock: the anchor is the last instant its rate
                // changed, so `remaining` is exact there and the flow has
                // drained at `rate` ever since. Clamp so the nanosecond
                // conversion cannot overflow the clock; no real flow takes
                // anywhere near 1e9 seconds.
                let dt = (f.remaining / f.rate).min(1e9);
                // Ties broken by start order (`seq`), which is reproducible
                // across engine instances; slot ids are not (LIFO reuse).
                Some((
                    f.anchor + SimDuration::from_secs_f64(dt),
                    f.seq,
                    FlowId::new(s, f.generation),
                ))
            })
            .min_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap())
            .map(|(t, _, id)| (t, id))
    }

    /// Advance the clock to `now`.
    ///
    /// O(1) in the number of flows: bytes are not drained eagerly. Each
    /// flow's `remaining` is stated at its `anchor` and the drain since
    /// then is implied by its (settled) rate; `recompute_rates` re-anchors
    /// a flow only when its rate actually changes.
    ///
    /// # Panics
    /// Debug-asserts that time does not move backwards.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.clock, "flow network time went backwards");
        if now <= self.clock {
            return;
        }
        // Pending mutations happened at (or before) the current clock, so
        // rates must settle *before* the clock moves — re-anchoring in
        // `recompute_rates` uses the mutation-time clock.
        self.ensure_rates();
        self.clock = now;
    }

    /// The current max-min fair rate of a flow (bytes/s).
    pub fn rate(&mut self, id: FlowId) -> Option<f64> {
        self.ensure_rates();
        self.lookup(id).map(|f| f.rate)
    }

    /// Remaining bytes of a flow at the current clock.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        let clock = self.clock;
        self.lookup(id).map(|f| f.remaining_at(clock))
    }

    fn lookup(&self, id: FlowId) -> Option<&FlowSlot> {
        let f = self.slots.get(id.slot())?;
        (f.generation == id.generation() && !f.links.is_empty()).then_some(f)
    }

    /// Progressive filling restricted to the links that carry flows:
    /// repeatedly saturate the most constrained active link and freeze the
    /// unfrozen flows crossing it at its fair share.
    /// Run the deferred recomputation if any mutation happened since the
    /// rates were last brought up to date.
    fn ensure_rates(&mut self) {
        if self.dirty {
            self.recompute_rates();
            self.dirty = false;
        }
    }

    fn recompute_rates(&mut self) {
        self.recomputes += 1;
        self.recomputed_flows += self.active_slots.len() as u64;
        // Mutations are applied at the current clock (advance() settles
        // rates before moving it), so flows whose rate changes re-anchor
        // here, at the instant the change takes effect.
        let now = self.clock;
        let sc = &mut self.scratch;
        sc.epoch += 1;
        let epoch = sc.epoch;
        // Seed per-link filling state from the persistent active-link
        // index: full capacity, and every crossing flow unfrozen. No
        // per-flow discovery pass is needed — `link_flows` is maintained
        // by `start`/`remove`.
        for &li in &self.active_links {
            let li = li as usize;
            sc.fill[li] = LinkFill {
                residual: self.capacity[li],
                unfrozen: self.link_flows[li].len() as u32,
            };
        }
        sc.work.clear();
        sc.work.extend_from_slice(&self.active_links);
        let mut remaining_flows = self.active_slots.len();
        while remaining_flows > 0 {
            // Minimum fair share among links carrying unfrozen flows.
            // Links whose flows have all frozen are compacted out so
            // later waves scan a shrinking list.
            let mut min_share = f64::INFINITY;
            sc.tied.clear();
            let mut i = 0;
            while i < sc.work.len() {
                let li = sc.work[i];
                let f = sc.fill[li as usize];
                if f.unfrozen == 0 {
                    sc.work.swap_remove(i);
                    continue;
                }
                let share = f.residual / f64::from(f.unfrozen);
                if share < min_share {
                    min_share = share;
                    sc.tied.clear();
                    sc.tied.push(li);
                } else if share == min_share {
                    sc.tied.push(li);
                }
                i += 1;
            }
            if sc.tied.is_empty() {
                break;
            }
            // Saturate every link tied at the minimum in one wave, in
            // ascending link id. Freezing flows on one tied link can only
            // *raise* another link's share (residual and count both
            // shrink, and share >= min_share is a max-min invariant), so
            // each link's share is re-checked and it saturates only if
            // still at the minimum — exactly the (link, share) saturation
            // sequence of the from-scratch oracle, which re-scans and
            // picks the lowest-id minimum link one wave at a time.
            sc.tied.sort_unstable();
            for ti in 0..sc.tied.len() {
                let bottleneck = sc.tied[ti] as usize;
                let cnt = sc.fill[bottleneck].unfrozen;
                if cnt == 0 || sc.fill[bottleneck].residual / f64::from(cnt) != min_share {
                    continue; // an earlier tied link raised this share
                }
                // Freeze every unfrozen flow crossing the bottleneck.
                for idx in 0..self.link_flows[bottleneck].len() {
                    let s = self.link_flows[bottleneck][idx] as usize;
                    if sc.flow_epoch[s] == epoch {
                        continue; // frozen in an earlier wave
                    }
                    sc.flow_epoch[s] = epoch;
                    let f = &mut self.slots[s];
                    // Re-anchor only on a bitwise rate change: an unchanged
                    // rate keeps the old anchor, so repeated recomputes do
                    // not accumulate floating-point drain error.
                    if f.rate != min_share {
                        let dt = now.since(f.anchor).as_secs_f64();
                        if dt > 0.0 {
                            f.remaining = (f.remaining - f.rate * dt).max(0.0);
                        }
                        f.anchor = now;
                        f.rate = min_share;
                    }
                    remaining_flows -= 1;
                    for &l in self.slots[s].links.iter() {
                        let f = &mut sc.fill[l.0 as usize];
                        f.residual -= min_share;
                        // Numerical hygiene: clamp tiny negative residuals.
                        if f.residual < 0.0 {
                            f.residual = 0.0;
                        }
                        f.unfrozen -= 1;
                    }
                }
            }
        }
    }

    /// Sum of rates crossing each link; used by conservation tests.
    pub fn link_loads(&mut self) -> Vec<f64> {
        self.ensure_rates();
        let mut loads = vec![0.0; self.capacity.len()];
        for &s in &self.active_slots {
            let f = &self.slots[s as usize];
            for &l in f.links.iter() {
                loads[l.0 as usize] += f.rate;
            }
        }
        loads
    }

    /// Link capacities this network was built with.
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// Reference implementation: the seed's from-scratch progressive
    /// filling over *all* links, recomputing every rate for the current
    /// flow set. Kept as an oracle for equivalence tests against the
    /// engine's active-link recompute; not part of the public API.
    #[doc(hidden)]
    pub fn oracle_rates(&self) -> Vec<(FlowId, f64)> {
        let flows: Vec<(FlowId, &FlowSlot)> = {
            let mut v: Vec<(FlowId, &FlowSlot)> = self
                .active_slots
                .iter()
                .map(|&s| {
                    let f = &self.slots[s as usize];
                    (FlowId::new(s, f.generation), f)
                })
                .collect();
            v.sort_unstable_by_key(|&(id, _)| id);
            v
        };
        // Residual capacity per link and number of unfrozen flows on it.
        let mut residual = self.capacity.clone();
        let mut count = vec![0u32; self.capacity.len()];
        for (_, f) in &flows {
            for &l in f.links.iter() {
                count[l.0 as usize] += 1;
            }
        }
        let mut rates: Vec<(FlowId, f64)> = flows.iter().map(|&(id, _)| (id, 0.0)).collect();
        let mut unfrozen: Vec<usize> = (0..flows.len()).collect();
        while !unfrozen.is_empty() {
            let mut best: Option<(f64, usize)> = None;
            for (li, (&res, &cnt)) in residual.iter().zip(count.iter()).enumerate() {
                if cnt > 0 {
                    let share = res / f64::from(cnt);
                    if best.map(|(s, _)| share < s).unwrap_or(true) {
                        best = Some((share, li));
                    }
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            let mut still = Vec::with_capacity(unfrozen.len());
            for fi in unfrozen.drain(..) {
                let f = flows[fi].1;
                if f.links.iter().any(|l| l.0 as usize == bottleneck) {
                    rates[fi].1 = share;
                    for &l in f.links.iter() {
                        residual[l.0 as usize] -= share;
                        count[l.0 as usize] -= 1;
                    }
                } else {
                    still.push(fi);
                }
            }
            unfrozen = still;
            for r in &mut residual {
                if *r < 0.0 {
                    *r = 0.0;
                }
            }
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteTable;
    use crate::topology::{NodeId, Tier, Topology};
    use continuum_sim::SimDuration;

    /// Linear chain a - b - c with 1e6 B/s links, negligible latency.
    fn chain() -> (Topology, RouteTable) {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_micros(1), 1e6);
        t.add_link(b, c, SimDuration::from_micros(1), 1e6);
        let rt = RouteTable::build(&t);
        (t, rt)
    }

    #[test]
    fn single_flow_full_rate() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let id = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        assert_eq!(fnw.rate(id), Some(1e6));
        let (tc, fid) = fnw.next_completion().unwrap();
        assert_eq!(fid, id);
        assert!((tc.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn engine_stats_count_recompute_batches() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        assert_eq!(fnw.engine_stats(), FlowEngineStats::default());
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let a = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        let b = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        // Both starts coalesce into a single deferred pass over 2 flows.
        fnw.rate(a);
        fnw.rate(b);
        assert_eq!(
            fnw.engine_stats(),
            FlowEngineStats {
                recomputes: 1,
                recomputed_flows: 2
            }
        );
        let reg = continuum_obs::MetricsRegistry::new();
        fnw.publish_metrics(&reg, "fe");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fe.recomputes"), 1);
        assert_eq!(snap.counter("fe.recomputed_flows"), 2);
        assert_eq!(snap.gauge("fe.mean_batch"), Some(2.0));
    }

    #[test]
    fn two_flows_share_fairly() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        let f2 = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        assert_eq!(fnw.rate(f1), Some(5e5));
        assert_eq!(fnw.rate(f2), Some(5e5));
    }

    #[test]
    fn completion_frees_bandwidth() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p, 500_000).unwrap();
        let f2 = fnw.start(SimTime::ZERO, &p, 1_500_000).unwrap();
        // Both run at 0.5e6 B/s; f1 finishes at t=1s.
        let (t1, done) = fnw.next_completion().unwrap();
        assert_eq!(done, f1);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        fnw.remove(t1, f1);
        // f2 has 1e6 bytes left and now gets the full 1e6 B/s.
        assert_eq!(fnw.rate(f2), Some(1e6));
        let (t2, done2) = fnw.next_completion().unwrap();
        assert_eq!(done2, f2);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_not_proportional() {
        // Two links: a-b (cap 10), b-c (cap 4).
        // Flow 1 crosses a-b only; flow 2 crosses a-b-c.
        // Max-min: flow 2 limited to 4 by b-c; flow 1 takes remaining 6.
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_micros(1), 10.0);
        t.add_link(b, c, SimDuration::from_micros(1), 4.0);
        let rt = RouteTable::build(&t);
        let mut fnw = FlowNetwork::new(&t);
        let p_ab = rt.path(&t, a, b).unwrap();
        let p_ac = rt.path(&t, a, c).unwrap();
        let f2 = fnw.start(SimTime::ZERO, &p_ac, 100).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p_ab, 100).unwrap();
        assert!((fnw.rate(f2).unwrap() - 4.0).abs() < 1e-9);
        assert!((fnw.rate(f1).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn local_path_is_free() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(0)).unwrap();
        assert!(fnw.start(SimTime::ZERO, &p, 1 << 40).is_none());
    }

    #[test]
    fn no_link_oversubscribed() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let p01 = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let p12 = rt.path(&t, NodeId(1), NodeId(2)).unwrap();
        for _ in 0..3 {
            fnw.start(SimTime::ZERO, &p02, 1_000_000);
            fnw.start(SimTime::ZERO, &p01, 1_000_000);
            fnw.start(SimTime::ZERO, &p12, 1_000_000);
        }
        for (load, cap) in fnw.link_loads().iter().zip(fnw.capacities()) {
            assert!(load <= &(cap * (1.0 + 1e-9)), "load {load} > cap {cap}");
        }
    }

    #[test]
    fn advance_drains_bytes() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let id = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        fnw.advance(SimTime::from_millis(500));
        let rem = fnw.remaining(id).unwrap();
        assert!((rem - 500_000.0).abs() < 1.0, "rem {rem}");
    }

    #[test]
    fn split_advance_is_bit_identical() {
        // Advancing in many small steps must match one big step exactly:
        // lazy drain means no per-step floating-point accumulation.
        let (t, rt) = chain();
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let p01 = rt.path(&t, NodeId(0), NodeId(1)).unwrap();

        let mut one = FlowNetwork::new(&t);
        let a1 = one.start(SimTime::ZERO, &p02, 900_000).unwrap();
        let b1 = one.start(SimTime::ZERO, &p01, 700_000).unwrap();
        one.advance(SimTime::from_millis(333));

        let mut many = FlowNetwork::new(&t);
        let a2 = many.start(SimTime::ZERO, &p02, 900_000).unwrap();
        let b2 = many.start(SimTime::ZERO, &p01, 700_000).unwrap();
        for step in 1..=333 {
            many.advance(SimTime::from_millis(step));
        }

        assert_eq!(one.remaining(a1), many.remaining(a2));
        assert_eq!(one.remaining(b1), many.remaining(b2));
        assert_eq!(one.next_completion(), many.next_completion());
    }

    #[test]
    fn stale_ids_after_slot_reuse() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let f1 = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        fnw.remove(SimTime::ZERO, f1);
        // The slot is reused with a new generation.
        let f2 = fnw.start(SimTime::ZERO, &p, 1_000_000).unwrap();
        assert_ne!(f1, f2);
        assert_eq!(fnw.rate(f1), None, "stale id must not resolve");
        assert_eq!(fnw.rate(f2), Some(1e6));
        // Removing the stale id again is a no-op for the live flow.
        fnw.remove(SimTime::ZERO, f1);
        assert_eq!(fnw.rate(f2), Some(1e6));
        assert_eq!(fnw.active(), 1);
    }

    #[test]
    fn fail_link_aborts_with_bytes_preserved() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let p01 = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let long = fnw.start(SimTime::ZERO, &p02, 1_000_000).unwrap();
        let short = fnw.start(SimTime::ZERO, &p01, 1_000_000).unwrap();
        // Both run at 5e5 B/s on link 0; kill link 1 (b-c) at t=0.5.
        let aborted = fnw.fail_link(SimTime::from_millis(500), LinkId(1));
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].id, long);
        assert!((aborted[0].transferred - 250_000.0).abs() < 1.0);
        assert!((aborted[0].remaining - 750_000.0).abs() < 1.0);
        assert!(
            (aborted[0].transferred + aborted[0].remaining - 1_000_000.0).abs() < 1e-6,
            "byte conservation"
        );
        // The survivor now owns link 0 outright.
        assert_eq!(fnw.rate(short), Some(1e6));
        assert_eq!(fnw.rate(long), None, "aborted id must be stale");
        assert!(!fnw.link_is_up(LinkId(1)));
        assert!(!fnw.path_is_up(&p02));
        assert!(fnw.path_is_up(&p01));
        // Idempotent: a second failure aborts nothing.
        assert!(fnw
            .fail_link(SimTime::from_millis(500), LinkId(1))
            .is_empty());
    }

    #[test]
    fn restore_link_recovers_capacity() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        fnw.fail_link(SimTime::ZERO, LinkId(1));
        // A flow over the dead link stalls at rate zero...
        let stuck = fnw.start(SimTime::from_millis(1), &p02, 1_000).unwrap();
        assert_eq!(fnw.rate(stuck), Some(0.0));
        // ...and picks the full rate back up on restore.
        fnw.restore_link(SimTime::from_millis(2), LinkId(1));
        assert!(fnw.link_is_up(LinkId(1)));
        assert_eq!(fnw.rate(stuck), Some(1e6));
        // Restoring a live link is a no-op.
        fnw.restore_link(SimTime::from_millis(2), LinkId(1));
        assert_eq!(fnw.rate(stuck), Some(1e6));
    }

    #[test]
    fn oracle_matches_engine_under_flaps() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let p01 = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let p12 = rt.path(&t, NodeId(1), NodeId(2)).unwrap();
        fnw.start(SimTime::ZERO, &p02, 5_000).unwrap();
        fnw.start(SimTime::ZERO, &p01, 5_000).unwrap();
        let c = fnw.start(SimTime::ZERO, &p12, 5_000).unwrap();
        fnw.fail_link(SimTime::from_millis(1), LinkId(0));
        for (id, want) in fnw.oracle_rates() {
            let got = fnw.rate(id).unwrap();
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "{got} vs {want}"
            );
        }
        assert_eq!(fnw.active(), 1); // only the b-c flow survived
        assert_eq!(fnw.rate(c), Some(1e6));
        fnw.restore_link(SimTime::from_millis(2), LinkId(0));
        fnw.start(SimTime::from_millis(2), &p01, 5_000).unwrap();
        for (id, want) in fnw.oracle_rates() {
            let got = fnw.rate(id).unwrap();
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn oracle_matches_engine_on_mixed_paths() {
        let (t, rt) = chain();
        let mut fnw = FlowNetwork::new(&t);
        let p02 = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        let p01 = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let a = fnw.start(SimTime::ZERO, &p02, 1_000).unwrap();
        let b = fnw.start(SimTime::ZERO, &p01, 1_000).unwrap();
        let c = fnw.start(SimTime::ZERO, &p02, 1_000).unwrap();
        for (id, want) in fnw.oracle_rates() {
            let got = fnw.rate(id).unwrap();
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "{got} vs {want}"
            );
        }
        fnw.remove(SimTime::ZERO, b);
        fnw.remove(SimTime::ZERO, a);
        let rates = fnw.oracle_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, c);
    }
}
