//! # continuum-net
//!
//! Network substrate for the `coding-the-continuum` reproduction: tiered
//! continuum topologies, latency-shortest routing, analytic transfer
//! estimates, and max-min fair bandwidth sharing for the simulated
//! executor.
//!
//! This crate substitutes for the physical networks (wireless access, metro
//! aggregation, WAN, data-center fabric, research backbone) that the
//! keynote's experiments would run over. Link parameters in
//! [`builders::ContinuumSpec`] are order-of-magnitude 2019 figures and are
//! swept by the experiments rather than treated as ground truth.

#![warn(missing_docs)]

pub mod builders;
pub mod flow;
pub mod gilder;
pub mod partition;
pub mod routing;
pub mod stats;
pub mod topology;

pub use builders::{
    continuum, continuum_regions, dumbbell, fat_tree, fat_tree_regions, star, BuiltContinuum,
    ContinuumSpec, LinkSpec,
};
pub use flow::{AbortedFlow, FlowEngineStats, FlowId, FlowNetwork};
pub use gilder::{access_bandwidth, gilder_ratio, mean_gilder_ratio};
pub use partition::{RegionPartition, RouteSeg};
pub use routing::{
    shortest_path_avoiding, Path, RouteCache, RouteCacheStats, RouteTable, TransferMatrix,
};
pub use stats::{topology_stats, TopologyStats};
pub use topology::{Link, LinkId, Node, NodeId, Tier, Topology};
