//! Latency-shortest-path routing with an all-pairs route table.
//!
//! Routes are computed with Dijkstra over link latency (ties broken by hop
//! count, then lowest node index, so routing is deterministic). For the
//! topology sizes in this repository (tens to a few thousand nodes) a
//! precomputed route table per source is affordable and makes path lookup
//! O(path length).

use crate::topology::{LinkId, NodeId, Topology};
use continuum_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A routed path between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Links traversed, in order from `src` to `dst`. Empty iff `src == dst`.
    ///
    /// Shared (`Arc`) so that cloning a path — and registering it with the
    /// flow network, which holds the link list for the flow's lifetime —
    /// never copies the link vector.
    pub links: Arc<[LinkId]>,
    /// Sum of link latencies.
    pub latency: SimDuration,
    /// Minimum bandwidth along the path (bytes/s). `f64::INFINITY` for the
    /// trivial self-path.
    pub bottleneck_bps: f64,
}

impl Path {
    /// The zero-length path from a node to itself.
    pub fn trivial(node: NodeId) -> Path {
        Path {
            src: node,
            dst: node,
            links: Vec::new().into(),
            latency: SimDuration::ZERO,
            bottleneck_bps: f64::INFINITY,
        }
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Analytic, contention-free transfer time for `bytes` over this path:
    /// propagation latency plus serialization at the bottleneck.
    ///
    /// Placement algorithms use this estimate; the simulated executor then
    /// charges the *actual* time under max-min fair sharing.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.links.is_empty() {
            return SimDuration::ZERO; // local: no copy cost modeled
        }
        let ser = bytes as f64 / self.bottleneck_bps;
        self.latency + SimDuration::from_secs_f64(ser)
    }

    /// Absolute arrival time of a transfer started at `start`.
    pub fn arrival(&self, start: SimTime, bytes: u64) -> SimTime {
        start + self.transfer_time(bytes)
    }
}

/// Sentinel distance for "unreachable" in the flattened arena; no real
/// path accumulates `u64::MAX` nanoseconds.
const UNREACHABLE: SimDuration = SimDuration(u64::MAX);

/// Precomputed latency-shortest routes for one topology, with all
/// equal-cost predecessors retained for ECMP spreading.
///
/// Storage is two contiguous arenas instead of nested `Vec`s: distances
/// are a flat `n × n` matrix, and predecessor lists are CSR-packed
/// (`prev_off[src*n + node]..prev_off[src*n + node + 1]` indexes into
/// `prev_entries`). This keeps the table in three allocations total and
/// makes lookups cache-friendly; the seed's `Vec<Vec<Vec<_>>>` layout
/// cost ~`n²` small allocations.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Node count the table was built for.
    n: usize,
    /// `dist[src*n + node]` = shortest latency, [`UNREACHABLE`] if none.
    dist: Vec<SimDuration>,
    /// CSR offsets into `prev_entries`, length `n*n + 1`.
    prev_off: Vec<u32>,
    /// Every (previous node, link) achieving the shortest latency,
    /// grouped by `(src, node)` and sorted within a group for
    /// determinism.
    prev_entries: Vec<(NodeId, LinkId)>,
}

impl RouteTable {
    /// Run Dijkstra from every node, one source per rayon task.
    ///
    /// The result is bit-identical to [`RouteTable::build_serial`]: each
    /// source's tree is computed independently and packed in source
    /// order, so worker scheduling cannot reorder anything.
    pub fn build(topo: &Topology) -> RouteTable {
        use rayon::prelude::*;
        let n = topo.node_count();
        let rows: Vec<(Vec<SimDuration>, Vec<Preds>)> = (0..n as u32)
            .into_par_iter()
            .map(|src| dijkstra(topo, NodeId(src)))
            .collect();
        Self::assemble(n, rows)
    }

    /// Single-threaded [`RouteTable::build`]; the parallel/serial split
    /// is benchmarked by `bench/src/bin/hotpaths.rs`.
    pub fn build_serial(topo: &Topology) -> RouteTable {
        let n = topo.node_count();
        let rows: Vec<(Vec<SimDuration>, Vec<Preds>)> = (0..n as u32)
            .map(|src| dijkstra(topo, NodeId(src)))
            .collect();
        Self::assemble(n, rows)
    }

    /// Pack per-source Dijkstra trees into the flat arenas.
    fn assemble(n: usize, rows: Vec<(Vec<SimDuration>, Vec<Preds>)>) -> RouteTable {
        let mut dist = Vec::with_capacity(n * n);
        let mut prev_off = Vec::with_capacity(n * n + 1);
        let mut prev_entries = Vec::new();
        prev_off.push(0u32);
        for (dist_row, preds) in rows {
            dist.extend_from_slice(&dist_row);
            for p in preds {
                match p {
                    Preds::None => {}
                    Preds::One(e) => prev_entries.push(e),
                    Preds::Many(mut v) => {
                        // Deterministic choice order at every split.
                        v.sort_unstable();
                        prev_entries.extend_from_slice(&v);
                    }
                }
                prev_off.push(prev_entries.len() as u32);
            }
        }
        RouteTable {
            n,
            dist,
            prev_off,
            prev_entries,
        }
    }

    /// Equal-cost (previous node, link) choices into `node` on `src`'s
    /// shortest-path tree.
    fn preds(&self, src: NodeId, node: NodeId) -> &[(NodeId, LinkId)] {
        let cell = src.0 as usize * self.n + node.0 as usize;
        let lo = self.prev_off[cell] as usize;
        let hi = self.prev_off[cell + 1] as usize;
        &self.prev_entries[lo..hi]
    }

    /// Shortest-latency distance, `None` if unreachable.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        let d = self.dist[src.0 as usize * self.n + dst.0 as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Materialize the canonical shortest path from `src` to `dst`
    /// (deterministic: the lowest-id choice at every equal-cost split).
    ///
    /// Returns `None` if `dst` is unreachable from `src`.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
        self.path_ecmp(topo, src, dst, 0)
    }

    /// Materialize *one of* the equal-cost shortest paths, selected by
    /// hashing `salt` at every split (equal-cost multi-path). Different
    /// salts spread different flows across parallel links; the same salt
    /// always yields the same path. `salt = 0` is the canonical path.
    pub fn path_ecmp(&self, topo: &Topology, src: NodeId, dst: NodeId, salt: u64) -> Option<Path> {
        if src == dst {
            return Some(Path::trivial(src));
        }
        self.distance(src, dst)?;
        let mut links_rev = Vec::new();
        let mut cur = dst;
        let mut bottleneck = f64::INFINITY;
        let mut latency = SimDuration::ZERO;
        while cur != src {
            let choices = self.preds(src, cur);
            debug_assert!(!choices.is_empty(), "reachable node missing predecessor");
            let pick = if choices.len() == 1 || salt == 0 {
                0
            } else {
                // Mix salt with the current node so one flow doesn't make
                // correlated choices at successive splits.
                (splitmix(salt ^ (cur.0 as u64).wrapping_mul(0x9E37_79B9)) % choices.len() as u64)
                    as usize
            };
            let (p, l) = choices[pick];
            links_rev.push(l);
            let link = topo.link(l);
            bottleneck = bottleneck.min(link.bandwidth_bps);
            latency += link.latency;
            cur = p;
        }
        links_rev.reverse();
        Some(Path {
            src,
            dst,
            links: links_rev.into(),
            latency,
            bottleneck_bps: bottleneck,
        })
    }

    /// Number of equal-cost (pred, link) choices into `dst` from `src`'s
    /// tree — 1 means a unique shortest path at the last hop.
    pub fn ecmp_width(&self, src: NodeId, dst: NodeId) -> usize {
        self.preds(src, dst).len()
    }

    /// Precompute the dense node-pair transfer-cost cache for this table.
    ///
    /// One bottleneck propagation per source over the canonical
    /// shortest-path tree (the tree [`RouteTable::path`] walks), one
    /// source per rayon task. The resulting [`TransferMatrix`] answers
    /// transfer-time queries in O(1) with results bit-identical to
    /// materializing the canonical [`Path`] and calling
    /// [`Path::transfer_time`].
    pub fn transfer_matrix(&self, topo: &Topology) -> TransferMatrix {
        use rayon::prelude::*;
        let n = self.n;
        let rows: Vec<Vec<f64>> = (0..n as u32)
            .into_par_iter()
            .map(|src| self.bottleneck_row(topo, NodeId(src)))
            .collect();
        let mut bottleneck = Vec::with_capacity(n * n);
        for row in rows {
            bottleneck.extend_from_slice(&row);
        }
        TransferMatrix {
            n,
            latency: self.dist.clone(),
            bottleneck,
        }
    }

    /// Bottleneck bandwidth from `src` to every node along the canonical
    /// shortest path, via one pass over `src`'s canonical pred tree.
    ///
    /// Every reachable node's parent is its lowest (pred, link) choice —
    /// exactly the edge `path()`/`path_ecmp(salt = 0)` follows — so
    /// `min`-ing link bandwidth down the tree reproduces each canonical
    /// path's bottleneck without materializing any of them. Children are
    /// CSR-packed to keep this allocation-light per source.
    fn bottleneck_row(&self, topo: &Topology, src: NodeId) -> Vec<f64> {
        let n = self.n;
        let s = src.0 as usize;
        let mut bn = vec![f64::INFINITY; n];
        let mut off = vec![0u32; n + 1];
        for node in 0..n {
            if node == s {
                continue;
            }
            if let Some(&(p, _)) = self.preds(src, NodeId(node as u32)).first() {
                off[p.0 as usize + 1] += 1;
            }
        }
        for i in 0..n {
            off[i + 1] += off[i];
        }
        let mut child: Vec<(u32, LinkId)> = vec![(0, LinkId(0)); off[n] as usize];
        let mut fill: Vec<u32> = off[..n].to_vec();
        for node in 0..n {
            if node == s {
                continue;
            }
            if let Some(&(p, l)) = self.preds(src, NodeId(node as u32)).first() {
                let slot = fill[p.0 as usize] as usize;
                fill[p.0 as usize] += 1;
                child[slot] = (node as u32, l);
            }
        }
        // Walk the tree root-down. Like `path_ecmp`, this assumes
        // positive link latencies so canonical pred pointers cannot
        // cycle; unreachable nodes are never visited and keep the
        // (latency-sentinel-gated) placeholder.
        let mut stack: Vec<u32> = vec![src.0];
        while let Some(u) = stack.pop() {
            let (lo, hi) = (off[u as usize] as usize, off[u as usize + 1] as usize);
            for &(v, l) in &child[lo..hi] {
                bn[v as usize] = bn[u as usize].min(topo.link(l).bandwidth_bps);
                stack.push(v);
            }
        }
        bn
    }
}

/// Dense per-node-pair transfer-cost cache: canonical-path latency and
/// bottleneck bandwidth for every (src, dst), in two flat `n × n`
/// arenas.
///
/// Built once per environment by [`RouteTable::transfer_matrix`]; the
/// placement estimator and the online placer consult it instead of
/// materializing a [`Path`] (pred-walk + link-vector allocation) per
/// (task, device) probe. Answers are bit-identical to
/// [`Path::transfer_time`] on the canonical path.
#[derive(Debug, Clone)]
pub struct TransferMatrix {
    /// Node count the matrix was built for.
    n: usize,
    /// `latency[src*n + dst]` = canonical-path latency, [`UNREACHABLE`]
    /// sentinel if no route.
    latency: Vec<SimDuration>,
    /// `bottleneck[src*n + dst]` = minimum bandwidth (bytes/s) along the
    /// canonical path; `f64::INFINITY` on self cells and placeholder on
    /// unreachable cells (gated by the latency sentinel).
    bottleneck: Vec<f64>,
}

impl TransferMatrix {
    /// Node count the matrix was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Canonical-path latency, `None` if `dst` is unreachable.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        let d = self.latency[src.0 as usize * self.n + dst.0 as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Bottleneck bandwidth (bytes/s) of the canonical path, `None` if
    /// unreachable. `f64::INFINITY` for the trivial self-path.
    pub fn bottleneck_bps(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let cell = src.0 as usize * self.n + dst.0 as usize;
        (self.latency[cell] != UNREACHABLE).then(|| self.bottleneck[cell])
    }

    /// Analytic, contention-free transfer time for `bytes` from `src` to
    /// `dst` — the cached equivalent of [`Path::transfer_time`] on the
    /// canonical path. `None` if unreachable.
    pub fn transfer_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> Option<SimDuration> {
        if src == dst {
            return Some(SimDuration::ZERO); // local: no copy cost modeled
        }
        let cell = src.0 as usize * self.n + dst.0 as usize;
        let lat = self.latency[cell];
        if lat == UNREACHABLE {
            return None;
        }
        let ser = bytes as f64 / self.bottleneck[cell];
        Some(lat + SimDuration::from_secs_f64(ser))
    }

    /// Absolute arrival time of a transfer started at `start`; the cached
    /// equivalent of [`Path::arrival`]. `None` if unreachable.
    pub fn arrival(&self, src: NodeId, dst: NodeId, start: SimTime, bytes: u64) -> Option<SimTime> {
        Some(start + self.transfer_time(src, dst, bytes)?)
    }
}

/// Latency-shortest path from `src` to `dst` that avoids every link
/// flagged in `dead` (`dead[link.0] == true` means unusable).
///
/// The precomputed [`RouteTable`] assumes all links are up; when faults
/// take links down mid-run, callers re-route the affected pairs with this
/// on-demand single-pair Dijkstra instead of rebuilding the whole table.
/// Deterministic like the table build (lowest-id predecessor at equal
/// cost). Returns `None` when the failure disconnects the pair; returns
/// the trivial path when `src == dst`.
///
/// `dead` may be shorter than the link count; missing entries mean "up".
pub fn shortest_path_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    dead: &[bool],
) -> Option<Path> {
    if src == dst {
        return Some(Path::trivial(src));
    }
    let n = topo.node_count();
    let mut dist: Vec<SimDuration> = vec![UNREACHABLE; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0 as usize] = SimDuration::ZERO;
    heap.push(Reverse((SimDuration::ZERO, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u.0 as usize] != d {
            continue; // stale entry
        }
        if u == dst {
            break;
        }
        for &(v, l) in topo.neighbors(u) {
            if dead.get(l.0 as usize).copied().unwrap_or(false) {
                continue;
            }
            let nd = d + topo.link(l).latency;
            let old = dist[v.0 as usize];
            // Strictly-better, or equal-cost with a lower-id predecessor
            // edge — matches the canonical (salt 0) RouteTable choice.
            if nd < old || (nd == old && prev[v.0 as usize].is_some_and(|p| (u, l) < p)) {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Some((u, l));
                if nd < old {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    if dist[dst.0 as usize] == UNREACHABLE {
        return None;
    }
    let mut links_rev = Vec::new();
    let mut cur = dst;
    let mut bottleneck = f64::INFINITY;
    let mut latency = SimDuration::ZERO;
    while cur != src {
        let (p, l) = prev[cur.0 as usize].expect("reachable node missing predecessor");
        links_rev.push(l);
        let link = topo.link(l);
        bottleneck = bottleneck.min(link.bandwidth_bps);
        latency += link.latency;
        cur = p;
    }
    links_rev.reverse();
    Some(Path {
        src,
        dst,
        links: links_rev.into(),
        latency,
        bottleneck_bps: bottleneck,
    })
}

/// Entry cap for [`RouteCache`]; past this the cache clears and refills.
///
/// Generous for the degraded regime (one salt-class-0 entry per node
/// pair actively transferring) while bounding the whole-fabric regime,
/// where per-flow salt classes make entries single-use and the map would
/// otherwise grow with total transfer count.
const ROUTE_CACHE_CAP: usize = 1 << 16;

/// Epoch-tagged memo for route computations.
///
/// The stream executor resolves one path per transfer: a cheap
/// [`RouteTable::path_ecmp`] pred-walk while the fabric is whole, or a
/// full single-pair [`shortest_path_avoiding`] Dijkstra while any link is
/// down — the hot path under chaos churn, where one degraded epoch can
/// re-route thousands of transfers between consecutive fault events.
/// This cache memoizes either result keyed by `(src, dst, salt class)`.
///
/// Correctness hangs on the *epoch counter*: the owner bumps it on every
/// `fail_link` / `restore_link` (any change to the dead-link set), so
/// within one epoch the inputs to a route computation other than the key
/// are constants, and a cached result is exactly what recomputing would
/// return. Entries from older epochs are overwritten on next lookup
/// (lazy invalidation — no eager sweep on bump).
///
/// The *salt class* is caller-defined: pass the actual ECMP salt when the
/// route depends on it (whole fabric), and a single sentinel class (e.g.
/// 0) when it does not ([`shortest_path_avoiding`] ignores salts), so all
/// degraded-regime transfers between a node pair share one entry.
///
/// Negative results (`None`: the pair is disconnected this epoch) are
/// cached too — re-proving disconnection is the same Dijkstra as finding
/// a path.
#[derive(Debug, Default)]
pub struct RouteCache {
    epoch: u64,
    map: std::collections::HashMap<(NodeId, NodeId, u64), (u64, Option<Path>)>,
    hits: u64,
    misses: u64,
    epoch_bumps: u64,
}

/// Lifetime counters of one [`RouteCache`], harvested by the telemetry
/// plane (see [`RouteCache::publish_metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the route computation.
    pub misses: u64,
    /// Epoch invalidations (`bump_epoch` calls).
    pub epoch_bumps: u64,
    /// Current epoch.
    pub epoch: u64,
}

impl RouteCache {
    /// An empty cache at epoch 0.
    pub fn new() -> RouteCache {
        RouteCache::default()
    }

    /// An empty cache pre-sized for `entries` routes (clamped to the
    /// cache's own entry cap). Long-lived owners that know their working
    /// set — the fabric forwarder resolves one route per (origin,
    /// endpoint-node) pair — avoid rehash churn during warm-up.
    pub fn with_capacity(entries: usize) -> RouteCache {
        RouteCache {
            map: std::collections::HashMap::with_capacity(entries.min(ROUTE_CACHE_CAP)),
            ..RouteCache::default()
        }
    }

    /// Current network epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declare that the dead-link set changed: all cached routes are now
    /// stale. O(1) — staleness is checked per entry at lookup time.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.epoch_bumps += 1;
    }

    /// `(hits, misses)` since construction — kept as a thin wrapper over
    /// [`RouteCache::snapshot`] for existing call sites.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.snapshot();
        (s.hits, s.misses)
    }

    /// All lifetime counters at once.
    pub fn snapshot(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits,
            misses: self.misses,
            epoch_bumps: self.epoch_bumps,
            epoch: self.epoch,
        }
    }

    /// Publish this cache's counters into a metrics registry under
    /// `prefix` (e.g. `"executor.route_cache"`), including the derived
    /// hit-rate gauge.
    pub fn publish_metrics(&self, reg: &continuum_obs::MetricsRegistry, prefix: &str) {
        let s = self.snapshot();
        reg.record(&format!("{prefix}.hits"), s.hits);
        reg.record(&format!("{prefix}.misses"), s.misses);
        reg.record(&format!("{prefix}.epoch_bumps"), s.epoch_bumps);
        let total = s.hits + s.misses;
        let rate = if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        };
        reg.set_gauge(&format!("{prefix}.hit_rate"), rate);
    }

    /// Look up the route for `(src, dst, class)` in the current epoch, or
    /// compute and cache it via `compute`.
    ///
    /// Returning a [`Path`] by clone is cheap: the link list is `Arc`-shared.
    pub fn route_with(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: u64,
        compute: impl FnOnce() -> Option<Path>,
    ) -> Option<Path> {
        let key = (src, dst, class);
        if let Some((epoch, path)) = self.map.get(&key) {
            if *epoch == self.epoch {
                self.hits += 1;
                return path.clone();
            }
        }
        self.misses += 1;
        let path = compute();
        if self.map.len() >= ROUTE_CACHE_CAP && !self.map.contains_key(&key) {
            self.map.clear();
        }
        self.map.insert(key, (self.epoch, path.clone()));
        path
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Equal-cost predecessors of one node on a source's shortest-path tree.
///
/// Almost every node has a unique shortest path, so the single
/// predecessor is stored inline; only genuine equal-cost splits pay for
/// a heap allocation. The seed allocated a `Vec` per reachable node per
/// source (`n²` small allocations across a full table build).
#[derive(Debug, Clone)]
enum Preds {
    None,
    One((NodeId, LinkId)),
    Many(Vec<(NodeId, LinkId)>),
}

impl Preds {
    fn contains(&self, e: (NodeId, LinkId)) -> bool {
        match self {
            Preds::None => false,
            Preds::One(x) => *x == e,
            Preds::Many(v) => v.contains(&e),
        }
    }

    fn push(&mut self, e: (NodeId, LinkId)) {
        match self {
            Preds::None => *self = Preds::One(e),
            Preds::One(x) => *self = Preds::Many(vec![*x, e]),
            Preds::Many(v) => v.push(e),
        }
    }
}

/// Single-source Dijkstra over link latency, retaining every equal-cost
/// predecessor.
///
/// Returns `(dist, prev)` indexed by node; unreachable nodes carry
/// [`UNREACHABLE`] / [`Preds::None`].
fn dijkstra(topo: &Topology, src: NodeId) -> (Vec<SimDuration>, Vec<Preds>) {
    let n = topo.node_count();
    let mut dist: Vec<SimDuration> = vec![UNREACHABLE; n];
    let mut prev: Vec<Preds> = vec![Preds::None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0 as usize] = SimDuration::ZERO;
    heap.push(Reverse((SimDuration::ZERO, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u.0 as usize] != d {
            continue; // stale entry
        }
        for &(v, l) in topo.neighbors(u) {
            let nd = d + topo.link(l).latency;
            let old = dist[v.0 as usize];
            if nd < old {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Preds::One((u, l));
                heap.push(Reverse((nd, v)));
            } else if nd == old && !prev[v.0 as usize].contains((u, l)) {
                prev[v.0 as usize].push((u, l));
            }
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Tier;

    /// a --1ms/1GBs-- b --10ms/1GBs-- c, plus a direct a--c at 50ms/100MBs.
    fn triangle() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(1), 1e9);
        t.add_link(b, c, SimDuration::from_millis(10), 1e9);
        t.add_link(a, c, SimDuration::from_millis(50), 1e8);
        t
    }

    #[test]
    fn shortest_by_latency_not_hops() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        // a->c via b is 11ms (two hops) vs direct 50ms (one hop).
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.latency, SimDuration::from_millis(11));
        assert_eq!(p.bottleneck_bps, 1e9);
        assert_eq!(
            rt.distance(NodeId(0), NodeId(2)),
            Some(SimDuration::from_millis(11))
        );
    }

    #[test]
    fn trivial_path() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let p = rt.path(&t, NodeId(1), NodeId(1)).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.transfer_time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_latency_plus_serialization() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let p = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        // 1e9 bytes over 1e9 B/s = 1s, plus 1ms latency.
        let tt = p.transfer_time(1_000_000_000);
        assert_eq!(tt, SimDuration::from_millis(1) + SimDuration::from_secs(1));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Edge);
        let c = t.add_node("c", Tier::Edge);
        t.add_link(a, b, SimDuration::from_millis(1), 1e9);
        let rt = RouteTable::build(&t);
        assert!(rt.path(&t, a, c).is_none());
        assert_eq!(rt.distance(a, c), None);
        assert!(rt.path(&t, a, b).is_some());
    }

    #[test]
    fn routes_are_symmetric_in_latency() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(
                    rt.distance(NodeId(i), NodeId(j)),
                    rt.distance(NodeId(j), NodeId(i))
                );
            }
        }
    }

    #[test]
    fn avoiding_nothing_matches_table() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let dead = vec![false; t.links().len()];
        for i in 0..3u32 {
            for j in 0..3u32 {
                let want = rt.path(&t, NodeId(i), NodeId(j)).unwrap();
                let got = shortest_path_avoiding(&t, NodeId(i), NodeId(j), &dead).unwrap();
                assert_eq!(got.links, want.links, "{i}->{j}");
                assert_eq!(got.latency, want.latency);
            }
        }
    }

    #[test]
    fn avoiding_dead_link_detours() {
        let t = triangle();
        // Kill b-c (link 1): a->c must fall back to the direct 50ms link.
        let mut dead = vec![false; t.links().len()];
        dead[1] = true;
        let p = shortest_path_avoiding(&t, NodeId(0), NodeId(2), &dead).unwrap();
        assert_eq!(p.hops(), 1);
        assert_eq!(p.links[0], LinkId(2));
        assert_eq!(p.latency, SimDuration::from_millis(50));
        assert_eq!(p.bottleneck_bps, 1e8);
    }

    #[test]
    fn avoiding_can_disconnect() {
        let t = triangle();
        // Kill both links touching c.
        let mut dead = vec![false; t.links().len()];
        dead[1] = true;
        dead[2] = true;
        assert!(shortest_path_avoiding(&t, NodeId(0), NodeId(2), &dead).is_none());
        // a->b still routes, and self-paths stay trivial.
        assert!(shortest_path_avoiding(&t, NodeId(0), NodeId(1), &dead).is_some());
        let triv = shortest_path_avoiding(&t, NodeId(2), NodeId(2), &dead).unwrap();
        assert_eq!(triv.hops(), 0);
    }

    #[test]
    fn transfer_matrix_matches_materialized_paths() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let tm = rt.transfer_matrix(&t);
        for i in 0..3u32 {
            for j in 0..3u32 {
                let p = rt.path(&t, NodeId(i), NodeId(j)).unwrap();
                assert_eq!(tm.latency(NodeId(i), NodeId(j)), Some(p.latency));
                assert_eq!(
                    tm.bottleneck_bps(NodeId(i), NodeId(j)),
                    Some(p.bottleneck_bps)
                );
                for bytes in [0u64, 1, 1 << 20, 1 << 34] {
                    assert_eq!(
                        tm.transfer_time(NodeId(i), NodeId(j), bytes),
                        Some(p.transfer_time(bytes)),
                        "{i}->{j} {bytes}B"
                    );
                }
            }
        }
    }

    #[test]
    fn transfer_matrix_unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Edge);
        let c = t.add_node("c", Tier::Edge);
        t.add_link(a, b, SimDuration::from_millis(1), 1e9);
        let tm = RouteTable::build(&t).transfer_matrix(&t);
        assert_eq!(tm.transfer_time(a, c, 1024), None);
        assert_eq!(tm.latency(a, c), None);
        assert_eq!(tm.bottleneck_bps(a, c), None);
        assert!(tm.transfer_time(a, b, 1024).is_some());
        // Self-transfers are free even on an isolated node.
        assert_eq!(tm.transfer_time(c, c, 1 << 30), Some(SimDuration::ZERO));
    }

    #[test]
    fn route_cache_hits_within_epoch() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let mut cache = RouteCache::new();
        let fresh = rt.path(&t, NodeId(0), NodeId(2));
        let a = cache.route_with(NodeId(0), NodeId(2), 0, || {
            rt.path(&t, NodeId(0), NodeId(2))
        });
        let b = cache.route_with(NodeId(0), NodeId(2), 0, || panic!("must hit cache"));
        assert_eq!(
            a.as_ref().map(|p| &p.links),
            fresh.as_ref().map(|p| &p.links)
        );
        assert_eq!(a.as_ref().map(|p| &p.links), b.as_ref().map(|p| &p.links));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn route_cache_with_capacity_behaves_like_new() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let mut cache = RouteCache::with_capacity(1 << 20); // clamped to cap
        let a = cache.route_with(NodeId(0), NodeId(2), 0, || {
            rt.path(&t, NodeId(0), NodeId(2))
        });
        let b = cache.route_with(NodeId(0), NodeId(2), 0, || panic!("must hit cache"));
        assert_eq!(a.as_ref().map(|p| &p.links), b.as_ref().map(|p| &p.links));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.epoch(), 0);
    }

    #[test]
    fn route_cache_epoch_invalidates() {
        let t = triangle();
        let mut dead = vec![false; t.links().len()];
        let mut cache = RouteCache::new();
        let whole = cache
            .route_with(NodeId(0), NodeId(2), 0, || {
                shortest_path_avoiding(&t, NodeId(0), NodeId(2), &dead)
            })
            .unwrap();
        assert_eq!(whole.hops(), 2);
        // Kill b-c; without an epoch bump the stale 2-hop route would be
        // served, with one the detour is recomputed.
        dead[1] = true;
        cache.bump_epoch();
        let detour = cache
            .route_with(NodeId(0), NodeId(2), 0, || {
                shortest_path_avoiding(&t, NodeId(0), NodeId(2), &dead)
            })
            .unwrap();
        assert_eq!(detour.hops(), 1);
        assert_eq!(detour.links[0], LinkId(2));
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn route_cache_caches_disconnection() {
        let t = triangle();
        let mut dead = vec![false; t.links().len()];
        dead[1] = true;
        dead[2] = true;
        let mut cache = RouteCache::new();
        let miss = cache.route_with(NodeId(0), NodeId(2), 0, || {
            shortest_path_avoiding(&t, NodeId(0), NodeId(2), &dead)
        });
        assert!(miss.is_none());
        let hit = cache.route_with(NodeId(0), NodeId(2), 0, || panic!("must hit cache"));
        assert!(hit.is_none());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn route_cache_snapshot_and_publish() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let mut cache = RouteCache::new();
        cache.route_with(NodeId(0), NodeId(2), 0, || {
            rt.path(&t, NodeId(0), NodeId(2))
        });
        cache.route_with(NodeId(0), NodeId(2), 0, || panic!("must hit cache"));
        cache.bump_epoch();
        cache.route_with(NodeId(0), NodeId(2), 0, || {
            rt.path(&t, NodeId(0), NodeId(2))
        });
        let s = cache.snapshot();
        assert_eq!(
            (s.hits, s.misses),
            cache.stats(),
            "stats() is a thin wrapper"
        );
        assert_eq!(s.epoch_bumps, 1);
        assert_eq!(s.epoch, 1);

        let reg = continuum_obs::MetricsRegistry::new();
        cache.publish_metrics(&reg, "rc");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rc.hits"), 1);
        assert_eq!(snap.counter("rc.misses"), 2);
        assert_eq!(snap.counter("rc.epoch_bumps"), 1);
        assert_eq!(snap.gauge("rc.hit_rate"), Some(1.0 / 3.0));
    }

    #[test]
    fn route_cache_salt_classes_are_distinct() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Fog);
        let b = t.add_node("b", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(10), 1e8);
        t.add_link(a, b, SimDuration::from_millis(10), 1e8);
        let rt = RouteTable::build(&t);
        // Find two salts picking different parallel links.
        let (mut s0, mut s1) = (0, 0);
        for salt in 1..100 {
            let p = rt.path_ecmp(&t, a, b, salt).unwrap();
            if p.links[0] == LinkId(0) {
                s0 = salt;
            } else {
                s1 = salt;
            }
        }
        assert!(s0 != 0 && s1 != 0);
        let mut cache = RouteCache::new();
        let p0 = cache
            .route_with(a, b, s0, || rt.path_ecmp(&t, a, b, s0))
            .unwrap();
        let p1 = cache
            .route_with(a, b, s1, || rt.path_ecmp(&t, a, b, s1))
            .unwrap();
        assert_ne!(p0.links[0], p1.links[0], "classes collided");
    }

    #[test]
    fn route_cache_bounded() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let mut cache = RouteCache::new();
        // Unique salt classes model the whole-fabric regime's per-flow
        // salts; the map must not grow past the cap.
        for salt in 1..(ROUTE_CACHE_CAP as u64 + 1000) {
            cache.route_with(NodeId(0), NodeId(1), salt, || {
                rt.path_ecmp(&t, NodeId(0), NodeId(1), salt)
            });
            assert!(cache.map.len() <= ROUTE_CACHE_CAP);
        }
        // Still correct after the clear-and-refill.
        let fresh = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let cached = cache
            .route_with(NodeId(0), NodeId(1), 0, || {
                rt.path(&t, NodeId(0), NodeId(1))
            })
            .unwrap();
        assert_eq!(cached.links, fresh.links);
    }

    #[test]
    fn path_links_are_contiguous() {
        let t = triangle();
        let rt = RouteTable::build(&t);
        let p = rt.path(&t, NodeId(0), NodeId(2)).unwrap();
        // Walk the links and verify they chain src -> dst.
        let mut cur = p.src;
        for &l in p.links.iter() {
            let link = t.link(l);
            cur = if link.a == cur { link.b } else { link.a };
        }
        assert_eq!(cur, p.dst);
    }
}

#[cfg(test)]
mod ecmp_tests {
    use super::*;
    use crate::topology::{Tier, Topology};

    /// Two parallel equal-latency links between a and b (multigraph).
    fn parallel_pair() -> Topology {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Fog);
        let b = t.add_node("b", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(10), 1e8);
        t.add_link(a, b, SimDuration::from_millis(10), 1e8);
        t
    }

    #[test]
    fn ecmp_width_counts_parallel_links() {
        let t = parallel_pair();
        let rt = RouteTable::build(&t);
        assert_eq!(rt.ecmp_width(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn salts_spread_across_links() {
        let t = parallel_pair();
        let rt = RouteTable::build(&t);
        let mut used = std::collections::HashSet::new();
        for salt in 1..100u64 {
            let p = rt.path_ecmp(&t, NodeId(0), NodeId(1), salt).unwrap();
            assert_eq!(p.hops(), 1);
            assert_eq!(p.latency, SimDuration::from_millis(10));
            used.insert(p.links[0]);
        }
        assert_eq!(used.len(), 2, "ECMP never used the second link");
    }

    #[test]
    fn same_salt_same_path() {
        let t = parallel_pair();
        let rt = RouteTable::build(&t);
        let p1 = rt.path_ecmp(&t, NodeId(0), NodeId(1), 42).unwrap();
        let p2 = rt.path_ecmp(&t, NodeId(0), NodeId(1), 42).unwrap();
        assert_eq!(p1.links, p2.links);
    }

    #[test]
    fn salt_zero_is_canonical() {
        let t = parallel_pair();
        let rt = RouteTable::build(&t);
        let canon = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let zero = rt.path_ecmp(&t, NodeId(0), NodeId(1), 0).unwrap();
        assert_eq!(canon.links, zero.links);
        assert_eq!(canon.links[0], LinkId(0));
    }

    #[test]
    fn unequal_cost_paths_not_mixed() {
        // Second link strictly slower: never chosen.
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Fog);
        let b = t.add_node("b", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(10), 1e8);
        t.add_link(a, b, SimDuration::from_millis(20), 1e8);
        let rt = RouteTable::build(&t);
        assert_eq!(rt.ecmp_width(a, b), 1);
        for salt in 0..50u64 {
            let p = rt.path_ecmp(&t, a, b, salt).unwrap();
            assert_eq!(p.links[0], LinkId(0));
        }
    }
}
