//! Topology characterization: the numbers a facility designer looks at.

use crate::routing::RouteTable;
use crate::topology::{Tier, Topology};
use continuum_sim::SimDuration;

/// Aggregate shape statistics of one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Nodes in the graph.
    pub nodes: usize,
    /// Links in the graph.
    pub links: usize,
    /// Longest shortest-path latency between any reachable pair.
    pub diameter: SimDuration,
    /// Mean shortest-path latency over all ordered reachable pairs.
    pub mean_latency: SimDuration,
    /// Mean latency from sensor-tier nodes to their nearest cloud node
    /// (zero if either tier is empty).
    pub mean_sensor_to_cloud: SimDuration,
    /// Sum of all link capacities, bytes/s (an upper bound on aggregate
    /// throughput).
    pub total_bandwidth_bps: f64,
}

/// Compute [`TopologyStats`] (builds a route table internally if not given).
pub fn topology_stats(topo: &Topology, routes: &RouteTable) -> TopologyStats {
    let n = topo.node_count();
    let mut diameter = SimDuration::ZERO;
    let mut sum = 0u128;
    let mut pairs = 0u128;
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a.id == b.id {
                continue;
            }
            if let Some(d) = routes.distance(a.id, b.id) {
                diameter = diameter.max(d);
                sum += d.as_nanos() as u128;
                pairs += 1;
            }
        }
    }
    let mean_latency = sum
        .checked_div(pairs)
        .map(|m| SimDuration::from_nanos(m as u64))
        .unwrap_or(SimDuration::ZERO);

    let sensors = topo.nodes_in_tier(Tier::Sensor);
    let clouds = topo.nodes_in_tier(Tier::Cloud);
    let mean_sensor_to_cloud = if sensors.is_empty() || clouds.is_empty() {
        SimDuration::ZERO
    } else {
        let mut total = 0u128;
        let mut counted = 0u128;
        for &s in &sensors {
            if let Some(best) = clouds.iter().filter_map(|&c| routes.distance(s, c)).min() {
                total += best.as_nanos() as u128;
                counted += 1;
            }
        }
        total
            .checked_div(counted)
            .map(|m| SimDuration::from_nanos(m as u64))
            .unwrap_or(SimDuration::ZERO)
    };

    TopologyStats {
        nodes: n,
        links: topo.link_count(),
        diameter,
        mean_latency,
        mean_sensor_to_cloud,
        total_bandwidth_bps: topo.links().iter().map(|l| l.bandwidth_bps).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{continuum, ContinuumSpec};

    #[test]
    fn default_continuum_stats_sane() {
        let built = continuum(&ContinuumSpec::default());
        let routes = RouteTable::build(&built.topology);
        let st = topology_stats(&built.topology, &routes);
        assert_eq!(st.nodes, built.topology.node_count());
        assert_eq!(st.links, built.topology.link_count());
        assert!(st.diameter >= st.mean_latency);
        assert!(st.mean_latency > SimDuration::ZERO);
        // Sensor -> cloud = 2 + 5 + 20 ms across the default tiers.
        assert_eq!(st.mean_sensor_to_cloud, SimDuration::from_millis(27));
        assert!(st.total_bandwidth_bps > 0.0);
    }

    #[test]
    fn chain_diameter() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(3), 1e6);
        t.add_link(b, c, SimDuration::from_millis(4), 1e6);
        let routes = RouteTable::build(&t);
        let st = topology_stats(&t, &routes);
        assert_eq!(st.diameter, SimDuration::from_millis(7));
        // Pairs: (a,b)=3, (a,c)=7, (b,c)=4 each both directions: mean = 14/3.
        assert_eq!(st.mean_latency, SimDuration::from_nanos(14_000_000 / 3));
    }

    #[test]
    fn empty_tiers_give_zero() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Fog);
        let b = t.add_node("b", Tier::Fog);
        t.add_link(a, b, SimDuration::from_millis(1), 1e6);
        let routes = RouteTable::build(&t);
        let st = topology_stats(&t, &routes);
        assert_eq!(st.mean_sensor_to_cloud, SimDuration::ZERO);
    }
}
