//! Region partitions of a topology, for the sharded simulation kernel.
//!
//! A [`RegionPartition`] splits a topology's nodes into disjoint regions
//! that together cover the graph. The sharded executor
//! (`continuum-runtime`) assigns whole regions to shards so that no two
//! shards ever share a link; the links that cross regions (the
//! *boundary*) determine the conservative lookahead — no influence can
//! propagate between regions faster than the minimum boundary-link
//! latency, so shards may safely simulate that far past each other.
//!
//! Partitions for the stock topology builders live next to the builders:
//! [`crate::builders::fat_tree_regions`] puts each pod in its own region
//! with the core switches in region 0, and
//! [`crate::builders::continuum_regions`] does the same for fog subtrees
//! under a cloud+HPC backbone region.

use crate::topology::{LinkId, NodeId, Topology};
use continuum_sim::SimDuration;

/// A disjoint cover of a topology's nodes, with the derived cross-region
/// structure the sharded kernel needs: boundary links, the conservative
/// lookahead, and which region is the shared backbone.
#[derive(Debug, Clone)]
pub struct RegionPartition {
    regions: Vec<Vec<NodeId>>,
    /// Node index → region index.
    region_of: Vec<u32>,
    /// Links whose endpoints sit in different regions.
    boundary: Vec<LinkId>,
    /// Per-link flag: is this a boundary link?
    is_boundary: Vec<bool>,
    /// Minimum latency over boundary links (`None` for a single-region
    /// partition with no boundary).
    lookahead: Option<SimDuration>,
    /// The region every cross-region route passes through (cores of a
    /// fat-tree, cloud backbone of a continuum).
    core_region: usize,
}

impl RegionPartition {
    /// Validate `regions` as a disjoint cover of `topo`'s nodes and
    /// derive the boundary structure.
    ///
    /// # Panics
    /// If a node appears in no region or in more than one, if a region is
    /// empty, or if `core_region` is out of range.
    pub fn new(topo: &Topology, regions: Vec<Vec<NodeId>>, core_region: usize) -> Self {
        assert!(core_region < regions.len(), "core_region out of range");
        let n = topo.node_count();
        let mut region_of = vec![u32::MAX; n];
        for (ri, r) in regions.iter().enumerate() {
            assert!(!r.is_empty(), "region {ri} is empty");
            for &node in r {
                let slot = &mut region_of[node.0 as usize];
                assert_eq!(
                    *slot,
                    u32::MAX,
                    "node {node} appears in regions {} and {ri}",
                    *slot
                );
                *slot = ri as u32;
            }
        }
        for (i, &r) in region_of.iter().enumerate() {
            assert_ne!(r, u32::MAX, "node n{i} is covered by no region");
        }
        let mut boundary = Vec::new();
        let mut is_boundary = vec![false; topo.links().len()];
        let mut lookahead: Option<SimDuration> = None;
        for l in topo.links() {
            if region_of[l.a.0 as usize] != region_of[l.b.0 as usize] {
                boundary.push(l.id);
                is_boundary[l.id.0 as usize] = true;
                lookahead = Some(match lookahead {
                    None => l.latency,
                    Some(cur) => cur.min(l.latency),
                });
            }
        }
        RegionPartition {
            regions,
            region_of,
            boundary,
            is_boundary,
            lookahead,
            core_region,
        }
    }

    /// The regions, in index order. Disjoint; together they cover every
    /// node.
    pub fn regions(&self) -> &[Vec<NodeId>] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the partition has no regions (never true for a validated
    /// partition — regions must be non-empty and cover the graph).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region a node belongs to.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region_of[node.0 as usize] as usize
    }

    /// Links whose endpoints sit in different regions, in link order.
    pub fn boundary_links(&self) -> &[LinkId] {
        &self.boundary
    }

    /// Whether a link crosses regions.
    pub fn is_boundary(&self, link: LinkId) -> bool {
        self.is_boundary[link.0 as usize]
    }

    /// The conservative lookahead: minimum one-way latency over boundary
    /// links. No event in one region can affect another region sooner
    /// than this, so shards may run this far past the global horizon
    /// without risking a causality violation. `None` when the partition
    /// has a single region (no boundary to cross).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// The backbone region that every cross-region route passes through.
    pub fn core_region(&self) -> usize {
        self.core_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{star, LinkSpec};
    use crate::topology::Tier;

    fn two_star() -> (Topology, Vec<Vec<NodeId>>) {
        // hub + 3 leaves; regions: {hub, leaf0}, {leaf1, leaf2}.
        let ls = LinkSpec::new(SimDuration::from_millis(1), 1e6);
        let (t, hub, leaves) = star(3, ls);
        let regions = vec![vec![hub, leaves[0]], vec![leaves[1], leaves[2]]];
        (t, regions)
    }

    #[test]
    fn boundary_and_lookahead() {
        let (t, regions) = two_star();
        let p = RegionPartition::new(&t, regions, 0);
        assert_eq!(p.len(), 2);
        // Leaves 1 and 2 attach to the hub across the boundary.
        assert_eq!(p.boundary_links().len(), 2);
        assert_eq!(p.lookahead(), Some(SimDuration::from_millis(1)));
        assert_eq!(p.region_of(NodeId(0)), 0);
        for l in t.links() {
            let cross = p.region_of(l.a) != p.region_of(l.b);
            assert_eq!(p.is_boundary(l.id), cross);
        }
    }

    #[test]
    fn single_region_has_no_lookahead() {
        let ls = LinkSpec::new(SimDuration::from_millis(1), 1e6);
        let (t, _, _) = star(3, ls);
        let all: Vec<NodeId> = t.nodes().iter().map(|n| n.id).collect();
        let p = RegionPartition::new(&t, vec![all], 0);
        assert_eq!(p.lookahead(), None);
        assert!(p.boundary_links().is_empty());
    }

    #[test]
    #[should_panic(expected = "covered by no region")]
    fn missing_node_rejected() {
        let (t, mut regions) = two_star();
        regions[1].pop();
        RegionPartition::new(&t, regions, 0);
    }

    #[test]
    #[should_panic(expected = "appears in regions")]
    fn duplicate_node_rejected() {
        let (t, mut regions) = two_star();
        let dup = regions[0][1];
        regions[1].push(dup);
        RegionPartition::new(&t, regions, 0);
    }

    #[test]
    fn works_on_multi_tier_graph() {
        let mut t = Topology::new();
        let c = t.add_node("c", Tier::Cloud);
        let f = t.add_node("f", Tier::Fog);
        let e = t.add_node("e", Tier::Edge);
        t.add_link(c, f, SimDuration::from_millis(20), 1e9);
        t.add_link(f, e, SimDuration::from_millis(5), 1e8);
        let p = RegionPartition::new(&t, vec![vec![c], vec![f, e]], 0);
        // Lookahead is the *minimum* boundary latency.
        assert_eq!(p.lookahead(), Some(SimDuration::from_millis(20)));
        assert_eq!(p.core_region(), 0);
    }
}
