//! Region partitions of a topology, for the sharded simulation kernel.
//!
//! A [`RegionPartition`] splits a topology's nodes into disjoint regions
//! that together cover the graph. The sharded executor
//! (`continuum-runtime`) assigns whole regions to shards so that no two
//! shards ever share a link; the links that cross regions (the
//! *boundary*) determine the conservative lookahead — no influence can
//! propagate between regions faster than the minimum boundary-link
//! latency, so shards may safely simulate that far past each other.
//!
//! Partitions for the stock topology builders live next to the builders:
//! [`crate::builders::fat_tree_regions`] puts each pod in its own region
//! with the core switches in region 0, and
//! [`crate::builders::continuum_regions`] does the same for fog subtrees
//! under a cloud+HPC backbone region.

use crate::routing::Path;
use crate::topology::{LinkId, NodeId, Topology};
use continuum_sim::SimDuration;
use std::sync::Arc;

/// One region-confined leg of a cross-region route.
///
/// [`RegionPartition::segment_route`] splits a global path at boundary
/// links so that each leg can be simulated entirely inside one region's
/// flow domain. A segment's links all lie in `region` *except* a trailing
/// boundary link (present when `gap > 0`): the boundary link's bandwidth
/// is charged to the upstream (sending) side, while its propagation
/// latency is deferred into `gap` — the store-and-forward handoff delay
/// before the next segment (or the final delivery) begins. Because every
/// inter-region handoff therefore waits at least one boundary-link
/// latency, handoff envelopes are always stamped at or beyond the
/// partition's conservative lookahead.
#[derive(Debug, Clone)]
pub struct RouteSeg {
    /// Links of this leg, in path order. Never empty. All inside
    /// `region`, plus the trailing boundary link when `gap > 0`.
    pub links: Arc<[LinkId]>,
    /// Node the leg starts from.
    pub src: NodeId,
    /// Node the leg's bytes land on (the far side of the trailing
    /// boundary link when there is one).
    pub dst: NodeId,
    /// Region whose flow domain carries this leg (the region of `src`).
    pub region: u32,
    /// Propagation latency paid before the leg's bytes start streaming:
    /// the sum of link latencies *excluding* the trailing boundary link.
    pub latency: SimDuration,
    /// Handoff delay after the leg's bytes finish streaming: the trailing
    /// boundary link's latency, or zero for a leg ending inside `region`.
    pub gap: SimDuration,
    /// Minimum link bandwidth along the leg (informational).
    pub bottleneck_bps: f64,
}

impl RouteSeg {
    /// The leg as a [`Path`] suitable for `FlowNetwork::start`.
    pub fn as_path(&self) -> Path {
        Path {
            src: self.src,
            dst: self.dst,
            links: self.links.clone(),
            latency: self.latency,
            bottleneck_bps: self.bottleneck_bps,
        }
    }
}

/// A disjoint cover of a topology's nodes, with the derived cross-region
/// structure the sharded kernel needs: boundary links, the conservative
/// lookahead, and which region is the shared backbone.
#[derive(Debug, Clone)]
pub struct RegionPartition {
    regions: Vec<Vec<NodeId>>,
    /// Node index → region index.
    region_of: Vec<u32>,
    /// Links whose endpoints sit in different regions.
    boundary: Vec<LinkId>,
    /// Per-link flag: is this a boundary link?
    is_boundary: Vec<bool>,
    /// Minimum latency over boundary links (`None` for a single-region
    /// partition with no boundary).
    lookahead: Option<SimDuration>,
    /// The region every cross-region route passes through (cores of a
    /// fat-tree, cloud backbone of a continuum).
    core_region: usize,
}

impl RegionPartition {
    /// Validate `regions` as a disjoint cover of `topo`'s nodes and
    /// derive the boundary structure.
    ///
    /// # Panics
    /// If a node appears in no region or in more than one, if a region is
    /// empty, or if `core_region` is out of range.
    pub fn new(topo: &Topology, regions: Vec<Vec<NodeId>>, core_region: usize) -> Self {
        assert!(core_region < regions.len(), "core_region out of range");
        let n = topo.node_count();
        let mut region_of = vec![u32::MAX; n];
        for (ri, r) in regions.iter().enumerate() {
            assert!(!r.is_empty(), "region {ri} is empty");
            for &node in r {
                let slot = &mut region_of[node.0 as usize];
                assert_eq!(
                    *slot,
                    u32::MAX,
                    "node {node} appears in regions {} and {ri}",
                    *slot
                );
                *slot = ri as u32;
            }
        }
        for (i, &r) in region_of.iter().enumerate() {
            assert_ne!(r, u32::MAX, "node n{i} is covered by no region");
        }
        let mut boundary = Vec::new();
        let mut is_boundary = vec![false; topo.links().len()];
        let mut lookahead: Option<SimDuration> = None;
        for l in topo.links() {
            if region_of[l.a.0 as usize] != region_of[l.b.0 as usize] {
                boundary.push(l.id);
                is_boundary[l.id.0 as usize] = true;
                lookahead = Some(match lookahead {
                    None => l.latency,
                    Some(cur) => cur.min(l.latency),
                });
            }
        }
        RegionPartition {
            regions,
            region_of,
            boundary,
            is_boundary,
            lookahead,
            core_region,
        }
    }

    /// The regions, in index order. Disjoint; together they cover every
    /// node.
    pub fn regions(&self) -> &[Vec<NodeId>] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the partition has no regions (never true for a validated
    /// partition — regions must be non-empty and cover the graph).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region a node belongs to.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region_of[node.0 as usize] as usize
    }

    /// Links whose endpoints sit in different regions, in link order.
    pub fn boundary_links(&self) -> &[LinkId] {
        &self.boundary
    }

    /// Whether a link crosses regions.
    pub fn is_boundary(&self, link: LinkId) -> bool {
        self.is_boundary[link.0 as usize]
    }

    /// The conservative lookahead: minimum one-way latency over boundary
    /// links. No event in one region can affect another region sooner
    /// than this, so shards may run this far past the global horizon
    /// without risking a causality violation. `None` when the partition
    /// has a single region (no boundary to cross).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// The backbone region that every cross-region route passes through.
    pub fn core_region(&self) -> usize {
        self.core_region
    }

    /// Split a global route into region-confined legs at boundary links.
    ///
    /// Each returned [`RouteSeg`] is a maximal run of links ending either
    /// with a boundary link (whose latency becomes the leg's `gap`) or at
    /// the path's destination. Legs stream store-and-forward: a leg's
    /// bytes begin `latency` after the previous handoff, stream inside
    /// `region`'s flow domain, and hand off `gap` after they finish. The
    /// sum of every leg's `latency + gap` equals the path's end-to-end
    /// latency. Local (zero-hop) paths yield no segments.
    pub fn segment_route(&self, topo: &Topology, path: &Path) -> Vec<RouteSeg> {
        let mut segs = Vec::new();
        let mut cur = path.src;
        let mut seg_src = path.src;
        let mut links: Vec<LinkId> = Vec::new();
        let mut latency = SimDuration::ZERO;
        let mut bottleneck = f64::INFINITY;
        for &lid in path.links.iter() {
            let l = topo.link(lid);
            let next = if l.a == cur { l.b } else { l.a };
            links.push(lid);
            bottleneck = bottleneck.min(l.bandwidth_bps);
            if self.is_boundary(lid) {
                segs.push(RouteSeg {
                    links: std::mem::take(&mut links).into(),
                    src: seg_src,
                    dst: next,
                    region: self.region_of[seg_src.0 as usize],
                    latency,
                    gap: l.latency,
                    bottleneck_bps: bottleneck,
                });
                seg_src = next;
                latency = SimDuration::ZERO;
                bottleneck = f64::INFINITY;
            } else {
                latency += l.latency;
            }
            cur = next;
        }
        if !links.is_empty() {
            segs.push(RouteSeg {
                links: links.into(),
                src: seg_src,
                dst: path.dst,
                region: self.region_of[seg_src.0 as usize],
                latency,
                gap: SimDuration::ZERO,
                bottleneck_bps: bottleneck,
            });
        }
        segs
    }

    /// The per-direction conservative lookahead for a shard owning the
    /// regions flagged in `owned`: the minimum latency over boundary
    /// links *entering* the owned set. Nothing outside the shard can
    /// influence it faster than this, so it is a safe per-shard horizon —
    /// at least as wide as the global [`RegionPartition::lookahead`],
    /// and strictly wider for shards whose incoming WAN links are slow.
    /// `None` when no boundary link crosses into the owned set.
    pub fn incoming_lookahead(&self, topo: &Topology, owned: &[bool]) -> Option<SimDuration> {
        let mut la: Option<SimDuration> = None;
        for &lid in &self.boundary {
            let l = topo.link(lid);
            let ra = owned[self.region_of(l.a)];
            let rb = owned[self.region_of(l.b)];
            if ra != rb {
                la = Some(match la {
                    None => l.latency,
                    Some(cur) => cur.min(l.latency),
                });
            }
        }
        la
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{star, LinkSpec};
    use crate::topology::Tier;

    fn two_star() -> (Topology, Vec<Vec<NodeId>>) {
        // hub + 3 leaves; regions: {hub, leaf0}, {leaf1, leaf2}.
        let ls = LinkSpec::new(SimDuration::from_millis(1), 1e6);
        let (t, hub, leaves) = star(3, ls);
        let regions = vec![vec![hub, leaves[0]], vec![leaves[1], leaves[2]]];
        (t, regions)
    }

    #[test]
    fn boundary_and_lookahead() {
        let (t, regions) = two_star();
        let p = RegionPartition::new(&t, regions, 0);
        assert_eq!(p.len(), 2);
        // Leaves 1 and 2 attach to the hub across the boundary.
        assert_eq!(p.boundary_links().len(), 2);
        assert_eq!(p.lookahead(), Some(SimDuration::from_millis(1)));
        assert_eq!(p.region_of(NodeId(0)), 0);
        for l in t.links() {
            let cross = p.region_of(l.a) != p.region_of(l.b);
            assert_eq!(p.is_boundary(l.id), cross);
        }
    }

    #[test]
    fn single_region_has_no_lookahead() {
        let ls = LinkSpec::new(SimDuration::from_millis(1), 1e6);
        let (t, _, _) = star(3, ls);
        let all: Vec<NodeId> = t.nodes().iter().map(|n| n.id).collect();
        let p = RegionPartition::new(&t, vec![all], 0);
        assert_eq!(p.lookahead(), None);
        assert!(p.boundary_links().is_empty());
    }

    #[test]
    #[should_panic(expected = "covered by no region")]
    fn missing_node_rejected() {
        let (t, mut regions) = two_star();
        regions[1].pop();
        RegionPartition::new(&t, regions, 0);
    }

    #[test]
    #[should_panic(expected = "appears in regions")]
    fn duplicate_node_rejected() {
        let (t, mut regions) = two_star();
        let dup = regions[0][1];
        regions[1].push(dup);
        RegionPartition::new(&t, regions, 0);
    }

    #[test]
    fn segments_split_at_boundaries_and_conserve_latency() {
        // sensor -e1- edge -e2- fog =B= cloud -e3- hpc, with the fog↔cloud
        // link the only boundary. Expect two segments: [e1,e2,B] in the
        // fog region with gap = lat(B), then [e3] in the backbone.
        let mut t = Topology::new();
        let s = t.add_node("s", Tier::Sensor);
        let e = t.add_node("e", Tier::Edge);
        let f = t.add_node("f", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        let h = t.add_node("h", Tier::Hpc);
        t.add_link(s, e, SimDuration::from_millis(2), 3e6);
        t.add_link(e, f, SimDuration::from_millis(5), 1e8);
        t.add_link(f, c, SimDuration::from_millis(20), 1e9);
        t.add_link(c, h, SimDuration::from_millis(10), 1e10);
        let p = RegionPartition::new(&t, vec![vec![c, h], vec![s, e, f]], 0);
        let rt = crate::routing::RouteTable::build(&t);
        let path = rt.path(&t, s, h).unwrap();
        let segs = p.segment_route(&t, &path);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].region, 1);
        assert_eq!(segs[0].links.len(), 3);
        assert_eq!(segs[0].src, s);
        assert_eq!(segs[0].dst, c);
        assert_eq!(segs[0].latency, SimDuration::from_millis(7));
        assert_eq!(segs[0].gap, SimDuration::from_millis(20));
        assert_eq!(segs[0].bottleneck_bps, 3e6);
        assert_eq!(segs[1].region, 0);
        assert_eq!(segs[1].links.len(), 1);
        assert_eq!(segs[1].dst, h);
        assert_eq!(segs[1].latency, SimDuration::from_millis(10));
        assert_eq!(segs[1].gap, SimDuration::ZERO);
        let total = segs
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.latency + s.gap);
        assert_eq!(total, path.latency);
        // Every handoff gap covers the partition lookahead: the envelope
        // causality argument of the partitioned executor.
        assert!(segs[0].gap >= p.lookahead().unwrap());
    }

    #[test]
    fn intra_region_route_is_one_segment() {
        let (t, regions) = two_star();
        let p = RegionPartition::new(&t, regions, 0);
        let rt = crate::routing::RouteTable::build(&t);
        // hub -> leaf0, both region 0.
        let path = rt.path(&t, NodeId(0), NodeId(1)).unwrap();
        let segs = p.segment_route(&t, &path);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].region, 0);
        assert_eq!(segs[0].gap, SimDuration::ZERO);
        assert_eq!(segs[0].latency, path.latency);
        // Local path: no segments.
        assert!(p.segment_route(&t, &Path::trivial(NodeId(0))).is_empty());
    }

    #[test]
    fn consecutive_boundary_links_yield_single_link_segments() {
        // a =B1= b =B2= c, three singleton regions: two segments, each a
        // lone boundary link with zero in-segment latency.
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Cloud);
        let b = t.add_node("b", Tier::Cloud);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(3), 1e9);
        t.add_link(b, c, SimDuration::from_millis(4), 1e9);
        let p = RegionPartition::new(&t, vec![vec![a], vec![b], vec![c]], 0);
        let rt = crate::routing::RouteTable::build(&t);
        let path = rt.path(&t, a, c).unwrap();
        let segs = p.segment_route(&t, &path);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].region, 0);
        assert_eq!(segs[0].latency, SimDuration::ZERO);
        assert_eq!(segs[0].gap, SimDuration::from_millis(3));
        assert_eq!(segs[1].region, 1);
        assert_eq!(segs[1].latency, SimDuration::ZERO);
        assert_eq!(segs[1].gap, SimDuration::from_millis(4));
    }

    #[test]
    fn incoming_lookahead_is_directional() {
        // Regions {c,h} and {s,e,f}; the only boundary is the 20ms f-c
        // link, so both sides see 20ms incoming. A shard owning both
        // regions has no incoming boundary at all.
        let mut t = Topology::new();
        let c = t.add_node("c", Tier::Cloud);
        let f = t.add_node("f", Tier::Fog);
        let e = t.add_node("e", Tier::Edge);
        t.add_link(c, f, SimDuration::from_millis(20), 1e9);
        t.add_link(f, e, SimDuration::from_millis(5), 1e8);
        let p = RegionPartition::new(&t, vec![vec![c], vec![f, e]], 0);
        assert_eq!(
            p.incoming_lookahead(&t, &[true, false]),
            Some(SimDuration::from_millis(20))
        );
        assert_eq!(
            p.incoming_lookahead(&t, &[false, true]),
            Some(SimDuration::from_millis(20))
        );
        assert_eq!(p.incoming_lookahead(&t, &[true, true]), None);
    }

    #[test]
    fn works_on_multi_tier_graph() {
        let mut t = Topology::new();
        let c = t.add_node("c", Tier::Cloud);
        let f = t.add_node("f", Tier::Fog);
        let e = t.add_node("e", Tier::Edge);
        t.add_link(c, f, SimDuration::from_millis(20), 1e9);
        t.add_link(f, e, SimDuration::from_millis(5), 1e8);
        let p = RegionPartition::new(&t, vec![vec![c], vec![f, e]], 0);
        // Lookahead is the *minimum* boundary latency.
        assert_eq!(p.lookahead(), Some(SimDuration::from_millis(20)));
        assert_eq!(p.core_region(), 0);
    }
}
