//! The Gilder ratio: how fast is the network relative to the computers?
//!
//! The keynote's framing quotes George Gilder (2001): *"when the network is
//! as fast as the computer's internal links, the machine disintegrates
//! across the net into a set of special purpose appliances."* We
//! operationalize "as fast as" with a dimensionless ratio:
//!
//! ```text
//! gilder_ratio = access bandwidth (bits/s) / compute speed (flop/s)
//! ```
//!
//! A ratio of 1 bit/flop means a node can stream operands in as fast as it
//! consumes them — the regime where remote execution stops being penalized
//! and placement "disintegrates" (experiment F2 sweeps this ratio).

use crate::topology::{NodeId, Topology};

/// Ratio of a link bandwidth to a compute speed, in bits per flop.
pub fn gilder_ratio(bandwidth_bps: f64, flops: f64) -> f64 {
    assert!(flops > 0.0);
    bandwidth_bps * 8.0 / flops
}

/// Best (highest-bandwidth) access link of a node, in bytes/s.
///
/// Returns `None` for isolated nodes.
pub fn access_bandwidth(topo: &Topology, node: NodeId) -> Option<f64> {
    topo.neighbors(node)
        .iter()
        .map(|&(_, l)| topo.link(l).bandwidth_bps)
        .max_by(|a, b| a.partial_cmp(b).expect("NaN bandwidth"))
}

/// Mean Gilder ratio over a set of nodes, given each node's compute speed.
///
/// `flops_of` maps a node to its flop/s; nodes with no links are skipped.
pub fn mean_gilder_ratio<F: Fn(NodeId) -> f64>(
    topo: &Topology,
    nodes: &[NodeId],
    flops_of: F,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u32;
    for &id in nodes {
        if let Some(bw) = access_bandwidth(topo, id) {
            sum += gilder_ratio(bw, flops_of(id));
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Tier;
    use continuum_sim::SimDuration;

    #[test]
    fn ratio_units() {
        // 1 GB/s link feeding a 8 Gflop/s machine: 8 Gb/s / 8 Gflop/s = 1.
        assert!((gilder_ratio(1e9, 8e9) - 1.0).abs() < 1e-12);
        // Slow network vs fast machine -> tiny ratio.
        assert!(gilder_ratio(1e6, 1e12) < 1e-4);
    }

    #[test]
    fn access_bandwidth_picks_best_link() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        let c = t.add_node("c", Tier::Cloud);
        t.add_link(a, b, SimDuration::from_millis(1), 1e6);
        t.add_link(a, c, SimDuration::from_millis(1), 5e6);
        assert_eq!(access_bandwidth(&t, a), Some(5e6));
        let lonely = t.add_node("lonely", Tier::Edge);
        assert_eq!(access_bandwidth(&t, lonely), None);
    }

    #[test]
    fn mean_ratio_scales_with_bandwidth() {
        let mut t = Topology::new();
        let a = t.add_node("a", Tier::Edge);
        let b = t.add_node("b", Tier::Fog);
        t.add_link(a, b, SimDuration::from_millis(1), 1e9);
        let nodes = [a, b];
        let before = mean_gilder_ratio(&t, &nodes, |_| 1e10);
        t.scale_bandwidth(10.0);
        let after = mean_gilder_ratio(&t, &nodes, |_| 1e10);
        assert!((after / before - 10.0).abs() < 1e-9);
    }
}
