//! Topology presets: the tiered continuum, plus small shapes for tests.
//!
//! The default [`ContinuumSpec`] parameters are order-of-magnitude figures
//! for 2019-era infrastructure: sensors reach their edge gateway over
//! short-range wireless, edge boxes uplink to a metro fog site, fog sites
//! cross a WAN to the cloud, and the cloud peers with an HPC facility over
//! a fat research network.

use crate::topology::{NodeId, Tier, Topology};
use continuum_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Latency/bandwidth of one class of link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Capacity in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkSpec {
    /// Convenience constructor.
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        LinkSpec {
            latency,
            bandwidth_bps,
        }
    }
}

/// Shape and link parameters of a tiered continuum topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinuumSpec {
    /// Number of fog sites.
    pub fogs: usize,
    /// Edge gateways attached to each fog site.
    pub edges_per_fog: usize,
    /// Sensors attached to each edge gateway.
    pub sensors_per_edge: usize,
    /// Cloud nodes (fully meshed with each other).
    pub clouds: usize,
    /// HPC nodes (attached to the first cloud node).
    pub hpcs: usize,
    /// Sensor ↔ edge links (short-range wireless).
    pub sensor_edge: LinkSpec,
    /// Edge ↔ fog links (access uplink).
    pub edge_fog: LinkSpec,
    /// Fog ↔ cloud links (WAN).
    pub fog_cloud: LinkSpec,
    /// Cloud ↔ cloud links (intra-DC fabric).
    pub cloud_cloud: LinkSpec,
    /// Cloud ↔ HPC links (research network).
    pub cloud_hpc: LinkSpec,
}

impl Default for ContinuumSpec {
    fn default() -> Self {
        ContinuumSpec {
            fogs: 2,
            edges_per_fog: 4,
            sensors_per_edge: 4,
            clouds: 4,
            hpcs: 2,
            // ~BLE/WiFi uplink: 2 ms, 3 MB/s.
            sensor_edge: LinkSpec::new(SimDuration::from_millis(2), 3e6),
            // Metro uplink: 5 ms, 125 MB/s (1 Gb/s).
            edge_fog: LinkSpec::new(SimDuration::from_millis(5), 1.25e8),
            // WAN: 20 ms, 1.25 GB/s (10 Gb/s).
            fog_cloud: LinkSpec::new(SimDuration::from_millis(20), 1.25e9),
            // Intra-DC: 0.5 ms, 12.5 GB/s (100 Gb/s).
            cloud_cloud: LinkSpec::new(SimDuration::from_micros(500), 1.25e10),
            // Research network: 10 ms, 12.5 GB/s.
            cloud_hpc: LinkSpec::new(SimDuration::from_millis(10), 1.25e10),
        }
    }
}

/// A built continuum topology with per-tier node indices.
#[derive(Debug, Clone)]
pub struct BuiltContinuum {
    /// The graph itself, shared so environments, planners, and sweeps can
    /// hold it without deep-copying the node/link arenas. Mutate a
    /// scenario variant with [`Arc::make_mut`] (clone-on-write).
    pub topology: Arc<Topology>,
    /// Sensor node ids, grouped in edge order.
    pub sensors: Vec<NodeId>,
    /// Edge gateway ids, grouped in fog order.
    pub edges: Vec<NodeId>,
    /// Fog site ids.
    pub fogs: Vec<NodeId>,
    /// Cloud node ids.
    pub clouds: Vec<NodeId>,
    /// HPC node ids.
    pub hpcs: Vec<NodeId>,
}

impl BuiltContinuum {
    /// The edge gateway a sensor is attached to.
    pub fn edge_of_sensor(&self, sensor_index: usize, spec: &ContinuumSpec) -> NodeId {
        self.edges[sensor_index / spec.sensors_per_edge]
    }

    /// All node ids across all tiers.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.topology.nodes().iter().map(|n| n.id).collect()
    }
}

/// Build the tiered continuum described by `spec`.
pub fn continuum(spec: &ContinuumSpec) -> BuiltContinuum {
    let mut t = Topology::new();
    let mut fogs = Vec::with_capacity(spec.fogs);
    let mut edges = Vec::new();
    let mut sensors = Vec::new();

    let clouds: Vec<NodeId> = (0..spec.clouds)
        .map(|i| t.add_node(format!("cloud{i}"), Tier::Cloud))
        .collect();
    for i in 0..spec.clouds {
        for j in (i + 1)..spec.clouds {
            t.add_link(
                clouds[i],
                clouds[j],
                spec.cloud_cloud.latency,
                spec.cloud_cloud.bandwidth_bps,
            );
        }
    }

    let hpcs: Vec<NodeId> = (0..spec.hpcs)
        .map(|i| t.add_node(format!("hpc{i}"), Tier::Hpc))
        .collect();
    for &h in &hpcs {
        if let Some(&c0) = clouds.first() {
            t.add_link(h, c0, spec.cloud_hpc.latency, spec.cloud_hpc.bandwidth_bps);
        }
    }

    for f in 0..spec.fogs {
        let fog = t.add_node(format!("fog{f}"), Tier::Fog);
        fogs.push(fog);
        // Each fog connects to every cloud node (multi-homed WAN).
        for &c in &clouds {
            t.add_link(fog, c, spec.fog_cloud.latency, spec.fog_cloud.bandwidth_bps);
        }
        for e in 0..spec.edges_per_fog {
            let edge = t.add_node(format!("edge{f}_{e}"), Tier::Edge);
            edges.push(edge);
            t.add_link(
                edge,
                fog,
                spec.edge_fog.latency,
                spec.edge_fog.bandwidth_bps,
            );
            for s in 0..spec.sensors_per_edge {
                let sensor = t.add_node(format!("sensor{f}_{e}_{s}"), Tier::Sensor);
                sensors.push(sensor);
                t.add_link(
                    sensor,
                    edge,
                    spec.sensor_edge.latency,
                    spec.sensor_edge.bandwidth_bps,
                );
            }
        }
    }

    BuiltContinuum {
        topology: Arc::new(t),
        sensors,
        edges,
        fogs,
        clouds,
        hpcs,
    }
}

/// A three-stage k-ary fat-tree with `hosts_per_edge` hosts under each
/// edge switch: `(k/2)²` core switches, `k` pods of `k/2` aggregation and
/// `k/2` edge switches each. Aggregation switch `j` of every pod uplinks
/// to core group `j` (full bisection at the switch layers). `k` must be
/// even and ≥ 2.
///
/// Hosts are `Tier::Sensor`, edge switches `Tier::Edge`, aggregation
/// `Tier::Fog`, core `Tier::Cloud`, so tier-based policies still apply.
/// Used by the churn and route-table benchmarks (`bench/src/bin/hotpaths`)
/// as a dense many-equal-paths topology; `fat_tree(10, 8)` gives the
/// ~500-node shape quoted in BENCH_hotpaths.json.
///
/// Returns the topology and the host node ids (flow endpoints).
pub fn fat_tree(k: usize, hosts_per_edge: usize, link: LinkSpec) -> (Topology, Vec<NodeId>) {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut t = Topology::new();
    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| t.add_node(format!("core{i}"), Tier::Cloud))
        .collect();
    let mut hosts = Vec::new();
    for pod in 0..k {
        let aggs: Vec<NodeId> = (0..half)
            .map(|j| {
                let a = t.add_node(format!("agg{pod}_{j}"), Tier::Fog);
                for c in 0..half {
                    t.add_link(a, cores[j * half + c], link.latency, link.bandwidth_bps);
                }
                a
            })
            .collect();
        for e in 0..half {
            let edge = t.add_node(format!("edge{pod}_{e}"), Tier::Edge);
            for &a in &aggs {
                t.add_link(edge, a, link.latency, link.bandwidth_bps);
            }
            for h in 0..hosts_per_edge {
                let host = t.add_node(format!("host{pod}_{e}_{h}"), Tier::Sensor);
                t.add_link(host, edge, link.latency, link.bandwidth_bps);
                hosts.push(host);
            }
        }
    }
    (t, hosts)
}

/// Region partition of a [`fat_tree`]`(k, hosts_per_edge, _)` topology:
/// region 0 holds the `(k/2)²` core switches, region `1 + pod` holds pod
/// `pod`'s aggregation and edge switches plus its hosts. Regions are
/// disjoint, cover every node, and — because pods only attach to each
/// other through the core layer — every cross-region link is an
/// agg↔core uplink.
///
/// Node ids are reconstructed from the builder's deterministic
/// construction order (cores first, then each pod's aggs, then each edge
/// followed by its hosts), so this must be kept in lock-step with
/// [`fat_tree`].
pub fn fat_tree_regions(k: usize, hosts_per_edge: usize) -> Vec<Vec<NodeId>> {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut regions = Vec::with_capacity(1 + k);
    let mut next = 0u32;
    let mut take = |n: usize, out: &mut Vec<NodeId>| {
        for _ in 0..n {
            out.push(NodeId(next));
            next += 1;
        }
    };
    let mut cores = Vec::with_capacity(half * half);
    take(half * half, &mut cores);
    regions.push(cores);
    // Per pod: half aggs, then half × (1 edge + hosts_per_edge hosts).
    let pod_size = half + half * (1 + hosts_per_edge);
    for _ in 0..k {
        let mut pod = Vec::with_capacity(pod_size);
        take(pod_size, &mut pod);
        regions.push(pod);
    }
    regions
}

/// Region partition of a [`continuum`] topology built from `spec`:
/// region 0 holds the backbone (all clouds and HPC nodes), region
/// `1 + f` holds fog site `f`'s subtree — the fog node, its edge
/// gateways, and their sensors. Every cross-region link is a fog↔cloud
/// WAN link, so the conservative lookahead of the resulting
/// [`crate::RegionPartition`] is the WAN latency.
///
/// Kept in lock-step with [`continuum`]'s construction order (clouds,
/// HPCs, then per fog: the fog node, then each edge followed by its
/// sensors).
pub fn continuum_regions(spec: &ContinuumSpec) -> Vec<Vec<NodeId>> {
    let mut regions = Vec::with_capacity(1 + spec.fogs);
    let mut next = 0u32;
    let mut take = |n: usize, out: &mut Vec<NodeId>| {
        for _ in 0..n {
            out.push(NodeId(next));
            next += 1;
        }
    };
    let mut backbone = Vec::with_capacity(spec.clouds + spec.hpcs);
    take(spec.clouds + spec.hpcs, &mut backbone);
    regions.push(backbone);
    let fog_size = 1 + spec.edges_per_fog * (1 + spec.sensors_per_edge);
    for _ in 0..spec.fogs {
        let mut fog = Vec::with_capacity(fog_size);
        take(fog_size, &mut fog);
        regions.push(fog);
    }
    regions
}

/// A star: one hub and `leaves` spokes with identical links. For tests.
pub fn star(leaves: usize, link: LinkSpec) -> (Topology, NodeId, Vec<NodeId>) {
    let mut t = Topology::new();
    let hub = t.add_node("hub", Tier::Fog);
    let spokes = (0..leaves)
        .map(|i| {
            let n = t.add_node(format!("leaf{i}"), Tier::Edge);
            t.add_link(hub, n, link.latency, link.bandwidth_bps);
            n
        })
        .collect();
    (t, hub, spokes)
}

/// A dumbbell: `left` nodes and `right` nodes joined by one shared trunk.
/// The classic congestion shape. For tests and the flow-model ablation.
pub fn dumbbell(
    left: usize,
    right: usize,
    access: LinkSpec,
    trunk: LinkSpec,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut t = Topology::new();
    let l_hub = t.add_node("lhub", Tier::Fog);
    let r_hub = t.add_node("rhub", Tier::Fog);
    t.add_link(l_hub, r_hub, trunk.latency, trunk.bandwidth_bps);
    let lefts = (0..left)
        .map(|i| {
            let n = t.add_node(format!("L{i}"), Tier::Edge);
            t.add_link(n, l_hub, access.latency, access.bandwidth_bps);
            n
        })
        .collect();
    let rights = (0..right)
        .map(|i| {
            let n = t.add_node(format!("R{i}"), Tier::Cloud);
            t.add_link(n, r_hub, access.latency, access.bandwidth_bps);
            n
        })
        .collect();
    (t, lefts, rights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteTable;

    #[test]
    fn default_continuum_is_connected() {
        let spec = ContinuumSpec::default();
        let built = continuum(&spec);
        assert!(built.topology.is_connected());
        assert_eq!(built.fogs.len(), spec.fogs);
        assert_eq!(built.edges.len(), spec.fogs * spec.edges_per_fog);
        assert_eq!(
            built.sensors.len(),
            spec.fogs * spec.edges_per_fog * spec.sensors_per_edge
        );
        assert_eq!(built.clouds.len(), spec.clouds);
        assert_eq!(built.hpcs.len(), spec.hpcs);
    }

    #[test]
    fn tier_counts_match() {
        let spec = ContinuumSpec::default();
        let built = continuum(&spec);
        let t = &built.topology;
        assert_eq!(t.nodes_in_tier(Tier::Sensor).len(), built.sensors.len());
        assert_eq!(t.nodes_in_tier(Tier::Edge).len(), built.edges.len());
        assert_eq!(t.nodes_in_tier(Tier::Fog).len(), built.fogs.len());
        assert_eq!(t.nodes_in_tier(Tier::Cloud).len(), built.clouds.len());
        assert_eq!(t.nodes_in_tier(Tier::Hpc).len(), built.hpcs.len());
    }

    #[test]
    fn sensor_routes_climb_tiers() {
        let spec = ContinuumSpec::default();
        let built = continuum(&spec);
        let rt = RouteTable::build(&built.topology);
        let s = built.sensors[0];
        let c = built.clouds[0];
        let p = rt.path(&built.topology, s, c).unwrap();
        // sensor -> edge -> fog -> cloud = 3 hops.
        assert_eq!(p.hops(), 3);
        // Bottleneck is the sensor uplink.
        assert_eq!(p.bottleneck_bps, spec.sensor_edge.bandwidth_bps);
        let expected_latency =
            spec.sensor_edge.latency + spec.edge_fog.latency + spec.fog_cloud.latency;
        assert_eq!(p.latency, expected_latency);
    }

    #[test]
    fn edge_of_sensor_is_adjacent() {
        let spec = ContinuumSpec::default();
        let built = continuum(&spec);
        for (i, &s) in built.sensors.iter().enumerate() {
            let e = built.edge_of_sensor(i, &spec);
            assert!(built.topology.neighbors(s).iter().any(|&(n, _)| n == e));
        }
    }

    #[test]
    fn fat_tree_shape() {
        let ls = LinkSpec::new(SimDuration::from_micros(50), 1.25e9);
        let (t, hosts) = fat_tree(4, 3, ls);
        // cores (k/2)² + pods k × (k/2 agg + k/2 edge) + hosts.
        assert_eq!(hosts.len(), 4 * 2 * 3);
        assert_eq!(t.node_count(), 4 + 4 * (2 + 2) + hosts.len());
        assert!(t.is_connected());
        let rt = RouteTable::build(&t);
        // Hosts in different pods are 6 hops apart (host-edge-agg-core-agg-edge-host).
        let p = rt.path(&t, hosts[0], hosts[hosts.len() - 1]).unwrap();
        assert_eq!(p.hops(), 6);
        // Hosts under the same edge switch are 2 hops apart.
        let p2 = rt.path(&t, hosts[0], hosts[1]).unwrap();
        assert_eq!(p2.hops(), 2);
    }

    #[test]
    fn fat_tree_regions_cover_disjointly_and_cut_at_core() {
        let ls = LinkSpec::new(SimDuration::from_micros(50), 1.25e9);
        let (k, hpe) = (4, 3);
        let (t, _) = fat_tree(k, hpe, ls);
        let regions = fat_tree_regions(k, hpe);
        assert_eq!(regions.len(), 1 + k);
        // Disjoint cover: every node in exactly one region.
        let mut seen = vec![false; t.node_count()];
        for r in &regions {
            for &n in r {
                assert!(!seen[n.0 as usize], "node {n} in two regions");
                seen[n.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node uncovered");
        // Region membership matches the builder's names: region 0 is the
        // cores, region 1+pod holds exactly pod `pod`'s switches & hosts.
        for &n in &regions[0] {
            assert!(t.node(n).name.starts_with("core"), "{}", t.node(n).name);
        }
        for (pod, r) in regions[1..].iter().enumerate() {
            let tag = format!("{pod}_");
            for &n in r {
                let name = &t.node(n).name;
                assert!(
                    name.contains(&tag)
                        && (name.starts_with("agg")
                            || name.starts_with("edge")
                            || name.starts_with("host")),
                    "node {name} not in pod {pod}"
                );
            }
        }
        // Every cross-region edge is an agg↔core uplink.
        let region_of = |n: NodeId| {
            regions
                .iter()
                .position(|r| r.contains(&n))
                .expect("covered")
        };
        for l in t.links() {
            if region_of(l.a) != region_of(l.b) {
                let names = [&t.node(l.a).name, &t.node(l.b).name];
                assert!(
                    names.iter().any(|n| n.starts_with("core"))
                        && names.iter().any(|n| n.starts_with("agg")),
                    "cross-region link {} - {} is not a core uplink",
                    names[0],
                    names[1]
                );
            }
        }
    }

    #[test]
    fn continuum_regions_cover_disjointly_and_cut_at_wan() {
        let spec = ContinuumSpec::default();
        let built = continuum(&spec);
        let t = &built.topology;
        let regions = continuum_regions(&spec);
        assert_eq!(regions.len(), 1 + spec.fogs);
        let mut seen = vec![false; t.node_count()];
        for r in &regions {
            for &n in r {
                assert!(!seen[n.0 as usize], "node {n} in two regions");
                seen[n.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node uncovered");
        // Region 0 is exactly the clouds + HPCs.
        let mut backbone = built.clouds.clone();
        backbone.extend(&built.hpcs);
        assert_eq!(regions[0], backbone);
        // Region 1+f starts at fog f.
        for (f, r) in regions[1..].iter().enumerate() {
            assert_eq!(r[0], built.fogs[f]);
        }
        // Every cross-region link is a fog↔cloud WAN link.
        let region_of = |n: NodeId| {
            regions
                .iter()
                .position(|r| r.contains(&n))
                .expect("covered")
        };
        for l in t.links() {
            if region_of(l.a) != region_of(l.b) {
                assert_eq!(l.latency, spec.fog_cloud.latency);
            }
        }
    }

    #[test]
    fn star_and_dumbbell_shapes() {
        let ls = LinkSpec::new(SimDuration::from_millis(1), 1e6);
        let (t, hub, spokes) = star(5, ls);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.neighbors(hub).len(), 5);
        assert_eq!(spokes.len(), 5);

        let (t2, l, r) = dumbbell(3, 2, ls, ls);
        assert_eq!(t2.node_count(), 2 + 3 + 2);
        assert!(t2.is_connected());
        let rt = RouteTable::build(&t2);
        let p = rt.path(&t2, l[0], r[0]).unwrap();
        assert_eq!(p.hops(), 3); // access + trunk + access
    }
}
