//! `continuum` — run a workload on a scenario under a policy, from the
//! command line.
//!
//! ```sh
//! continuum run --scenario smart-city --workload pipeline --policy heft
//! continuum run --workload montage --policy cpop --gantt
//! continuum compare --workload layered --seed 7
//! continuum saturate --scenario smart-city --rate 400 --max-live 64
//! continuum list
//! ```

use continuum_core::prelude::*;
use continuum_obs::{HealthSpec, Telemetry};
use continuum_placement::standard_lineup;
use continuum_runtime::{simulate_open_loop, OpenLoopOpts};
use continuum_workflow::{open_loop_arrivals, ArrivalProcess, OpenLoopSpec};
use std::rc::Rc;

fn scenario_by_name(name: &str) -> Option<Scenario> {
    match name {
        "default" => Some(Scenario::default_continuum()),
        "smart-city" => Some(Scenario::smart_city()),
        "science-campus" => Some(Scenario::science_campus()),
        _ => None,
    }
}

fn policy_by_name(name: &str) -> Option<Box<dyn Placer>> {
    Some(match name {
        "random" => Box::new(RandomPlacer::new(0xC11)),
        "round-robin" => Box::new(RoundRobinPlacer),
        "edge-only" => Box::new(TierPlacer::edge_only()),
        "cloud-only" => Box::new(TierPlacer::cloud_only()),
        "greedy-eft" => Box::new(GreedyEftPlacer::default()),
        "data-aware" => Box::new(DataAwarePlacer),
        "min-min" => Box::new(MinMinPlacer),
        "max-min" => Box::new(MaxMinPlacer),
        "cpop" => Box::new(CpopPlacer::default()),
        "peft" => Box::new(PeftPlacer::default()),
        "heft" => Box::new(HeftPlacer::default()),
        "anneal" => Box::new(AnnealingPlacer::default()),
        _ => return None,
    })
}

fn workload_by_name(world: &Continuum, name: &str, input_mb: u64, seed: u64) -> Option<Dag> {
    let src = world.sensors()[0];
    Some(match name {
        "pipeline" => analytics_pipeline(&PipelineSpec {
            source: src,
            input_bytes: input_mb << 20,
            ..Default::default()
        }),
        "montage" => montage_like(src, 12, (input_mb.max(1) << 20) / 12),
        "map-reduce" => map_reduce(src, 8, 4, (input_mb.max(1) << 20) / 8, 50.0),
        "fork-join" => fork_join(src, 16, input_mb << 20, 1e10, 1 << 16),
        "broadcast-reduce" => broadcast_reduce(src, 16, 4, input_mb << 20, 5e9, 1 << 16),
        "stencil" => stencil(src, 8, 6, (input_mb << 20) / 8, 1 << 14, 5e9),
        "layered" => {
            let mut rng = Rng::new(seed);
            layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 120,
                    source: world.edges()[0],
                    ..Default::default()
                },
            )
        }
        _ => return None,
    })
}

const SCENARIOS: [&str; 3] = ["default", "smart-city", "science-campus"];
const WORKLOADS: [&str; 7] = [
    "pipeline",
    "montage",
    "map-reduce",
    "fork-join",
    "broadcast-reduce",
    "stencil",
    "layered",
];
const POLICIES: [&str; 12] = [
    "random",
    "round-robin",
    "edge-only",
    "cloud-only",
    "greedy-eft",
    "data-aware",
    "min-min",
    "max-min",
    "cpop",
    "peft",
    "heft",
    "anneal",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  continuum run [--scenario S] [--workload W] [--policy P] \
         [--input-mb N] [--seed N] [--gantt] [--metrics] [--trace FILE]\n  \
         continuum compare [--scenario S] \
         [--workload W] [--input-mb N] [--seed N]\n  \
         continuum saturate [--scenario S] [--rate HZ] [--requests N] \
         [--max-live N] [--seed N] [--deadline-ms N] [--health] \
         [--flight-recorder FILE]\n  continuum list\n\n\
         scenarios: {SCENARIOS:?}\n workloads: {WORKLOADS:?}\n policies:  {POLICIES:?}\n\n\
         --metrics      print the run's telemetry snapshot as JSON\n\
         --trace FILE   write a Chrome/Perfetto trace_events file\n\
         saturate: drive the scenario open-loop at --rate (Poisson \
         arrivals) with at most --max-live requests in flight; excess \
         arrivals are rejected at the door. --deadline-ms switches the \
         online placer to deadline-aware escalation.\n\
         --health               attach the SLO burn-rate health plane \
         (objective = --deadline-ms, else 400 ms)\n\
         --flight-recorder FILE write the health timeline (frames, \
         anomalies, incident) as JSON; implies --health"
    );
    std::process::exit(2);
}

struct Opts {
    scenario: String,
    workload: String,
    policy: String,
    input_mb: u64,
    seed: u64,
    gantt: bool,
    metrics: bool,
    trace: Option<String>,
    rate_hz: f64,
    requests: usize,
    max_live: usize,
    deadline_ms: Option<u64>,
    health: bool,
    flight_recorder: Option<String>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        scenario: "default".into(),
        workload: "pipeline".into(),
        policy: "heft".into(),
        input_mb: 16,
        seed: 42,
        gantt: false,
        metrics: false,
        trace: None,
        rate_hz: 200.0,
        requests: 2000,
        max_live: 64,
        deadline_ms: None,
        health: false,
        flight_recorder: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--scenario" => o.scenario = take(&mut i),
            "--workload" => o.workload = take(&mut i),
            "--policy" => o.policy = take(&mut i),
            "--input-mb" => o.input_mb = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--gantt" => o.gantt = true,
            "--metrics" => o.metrics = true,
            "--trace" => o.trace = Some(take(&mut i)),
            "--rate" => o.rate_hz = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--requests" => o.requests = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-live" => o.max_live = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                o.deadline_ms = Some(take(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--health" => o.health = true,
            "--flight-recorder" => o.flight_recorder = Some(take(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn print_report(policy: &str, report: &RunReport) {
    let m = &report.simulated;
    println!(
        "{policy:<12} makespan {:>10.4}s   energy {:>10.1}J   cost ${:>8.4}   moved {:>8.2}MB   contention {:>5.2}x",
        m.makespan_s,
        m.energy_j,
        m.cost_usd,
        m.bytes_moved as f64 / 1e6,
        report.contention_factor(),
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    match cmd.as_str() {
        "list" => {
            println!("scenarios: {SCENARIOS:?}");
            println!("workloads: {WORKLOADS:?}");
            println!("policies:  {POLICIES:?}");
        }
        "run" => {
            let o = parse(rest);
            let scenario = scenario_by_name(&o.scenario).unwrap_or_else(|| usage());
            let world = Continuum::build(&scenario);
            let dag = workload_by_name(&world, &o.workload, o.input_mb, o.seed)
                .unwrap_or_else(|| usage());
            let policy = policy_by_name(&o.policy).unwrap_or_else(|| usage());
            println!(
                "scenario '{}': {} nodes / {} devices; workload '{}': {} tasks, {:.1} Gflop",
                scenario.name,
                world.topology().node_count(),
                world.env().fleet.len(),
                dag.name,
                dag.len(),
                dag.total_work() / 1e9,
            );
            let report = if o.metrics || o.trace.is_some() {
                let tele = Rc::new(Telemetry::new(o.trace.is_some()));
                let report =
                    continuum_obs::with_ambient(&tele, || world.run(&dag, policy.as_ref()));
                if let Some(path) = &o.trace {
                    std::fs::write(path, tele.tracer.export_string())
                        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                    eprintln!("trace: {path} ({} events)", tele.tracer.len());
                }
                if o.metrics {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&tele.metrics.snapshot())
                            .expect("metrics serialize")
                    );
                }
                report
            } else {
                world.run(&dag, policy.as_ref())
            };
            print_report(policy.name(), &report);
            if o.gantt {
                let names: Vec<String> = world
                    .env()
                    .fleet
                    .devices()
                    .iter()
                    .map(|d| format!("{}@{}", d.spec.class.label(), d.node))
                    .collect();
                println!("\n{}", report.trace.gantt(&names, 72));
            }
        }
        "compare" => {
            let o = parse(rest);
            let scenario = scenario_by_name(&o.scenario).unwrap_or_else(|| usage());
            let world = Continuum::build(&scenario);
            let dag = workload_by_name(&world, &o.workload, o.input_mb, o.seed)
                .unwrap_or_else(|| usage());
            println!(
                "workload '{}' on '{}' — every policy in the standard line-up:",
                dag.name, scenario.name
            );
            for p in standard_lineup() {
                let report = world.run(&dag, p.as_ref());
                print_report(p.name(), &report);
            }
        }
        "saturate" => {
            let o = parse(rest);
            let scenario = scenario_by_name(&o.scenario).unwrap_or_else(|| usage());
            let world = Continuum::build(&scenario);
            if o.rate_hz <= 0.0 || o.requests == 0 || o.max_live == 0 {
                usage();
            }
            let spec = OpenLoopSpec {
                sensors: world.sensors().to_vec(),
                requests: o.requests,
                process: ArrivalProcess::Poisson { rate_hz: o.rate_hz },
                ..OpenLoopSpec::default()
            };
            let mut placer = OnlinePlacer::continuum(world.env());
            let deadline = o.deadline_ms.map(SimDuration::from_millis);
            let arrivals = open_loop_arrivals(o.seed, &spec).map(|(arrival, dag)| {
                let placement = match deadline {
                    Some(d) => {
                        placer
                            .place_request_deadline(world.env(), &dag, arrival, d)
                            .0
                    }
                    None => placer.place_request(world.env(), &dag, arrival).0,
                };
                StreamRequest {
                    dag,
                    placement,
                    arrival,
                }
            });
            let health_spec = (o.health || o.flight_recorder.is_some()).then(|| {
                HealthSpec::for_objective_ns(o.deadline_ms.map_or(400_000_000, |ms| ms * 1_000_000))
            });
            let opts = OpenLoopOpts {
                max_live: o.max_live,
                health: health_spec.as_ref(),
                ..OpenLoopOpts::default()
            };
            let rep = simulate_open_loop(world.env(), arrivals, &opts);
            println!(
                "scenario '{}': {} nodes / {} devices; open-loop {} req @ {} req/s ({} placer, cap {})",
                scenario.name,
                world.topology().node_count(),
                world.env().fleet.len(),
                o.requests,
                o.rate_hz,
                if deadline.is_some() { "deadline" } else { "greedy" },
                o.max_live,
            );
            println!(
                "offered {}   completed {}   rejected {} ({:.1}%)   goodput {:.1}/s",
                rep.offered,
                rep.completed,
                rep.rejected,
                rep.rejection_rate() * 100.0,
                rep.goodput_hz(),
            );
            println!(
                "latency p50 {:.1}ms   p99 {:.1}ms   p999 {:.1}ms   peak live {}   peak record buf {}",
                rep.latency_quantile_s(0.50) * 1e3,
                rep.latency_quantile_s(0.99) * 1e3,
                rep.latency_quantile_s(0.999) * 1e3,
                rep.peak_live,
                rep.peak_record_buffer,
            );
            if let Some(h) = &rep.health {
                println!(
                    "health: objective {:.0}ms   violations {}/{}   burn short {:.2} (peak {:.2})   long {:.2}   anomalies {}",
                    h.objective_ns as f64 / 1e6,
                    h.violations,
                    h.observed,
                    h.burn_short,
                    h.burn_short_peak,
                    h.burn_long,
                    h.anomalies.len(),
                );
                if let Some(path) = &o.flight_recorder {
                    use serde::Serialize as _;
                    let text = serde_json::to_string_pretty(&h.to_value())
                        .expect("health report serialize");
                    std::fs::write(path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
                    eprintln!(
                        "flight recorder: {path} ({} frames, {} anomalies)",
                        h.frames.len(),
                        h.anomalies.len()
                    );
                }
            }
        }
        _ => usage(),
    }
}
