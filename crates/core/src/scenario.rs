//! Scenario presets: ready-made continuum deployments.
//!
//! Each scenario bundles a topology shape and the fleet deployed on it.
//! They correspond to the settings the keynote motivates: a city-scale
//! sensing deployment, a science campus feeding an HPC facility, and the
//! balanced default used by most experiments.

use continuum_net::{BuiltContinuum, ContinuumSpec, LinkSpec};
use continuum_sim::SimDuration;

/// A named continuum deployment spec.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: &'static str,
    /// Topology shape and link parameters.
    pub spec: ContinuumSpec,
}

impl Scenario {
    /// The balanced default: 2 fog sites, 8 edges, 32 sensors, 4 clouds,
    /// 2 HPC nodes.
    pub fn default_continuum() -> Scenario {
        Scenario {
            name: "default",
            spec: ContinuumSpec::default(),
        }
    }

    /// City-scale sensing: many sensors and edge gateways, thin uplinks, a
    /// small cloud.
    pub fn smart_city() -> Scenario {
        Scenario {
            name: "smart-city",
            spec: ContinuumSpec {
                fogs: 4,
                edges_per_fog: 8,
                sensors_per_edge: 8,
                clouds: 2,
                hpcs: 0,
                // Thin metro uplinks are the defining constraint.
                edge_fog: LinkSpec::new(SimDuration::from_millis(8), 5e7),
                ..ContinuumSpec::default()
            },
        }
    }

    /// Science campus: few but fat instruments (modeled as sensors),
    /// generous networking, and an HPC center that dominates compute.
    pub fn science_campus() -> Scenario {
        Scenario {
            name: "science-campus",
            spec: ContinuumSpec {
                fogs: 1,
                edges_per_fog: 2,
                sensors_per_edge: 2,
                clouds: 2,
                hpcs: 4,
                // Instruments stream over a fast campus LAN.
                sensor_edge: LinkSpec::new(SimDuration::from_micros(500), 1.25e8),
                edge_fog: LinkSpec::new(SimDuration::from_millis(1), 1.25e9),
                ..ContinuumSpec::default()
            },
        }
    }

    /// Build the topology.
    pub fn build(&self) -> BuiltContinuum {
        continuum_net::continuum(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_connected() {
        for s in [
            Scenario::default_continuum(),
            Scenario::smart_city(),
            Scenario::science_campus(),
        ] {
            let built = s.build();
            assert!(built.topology.is_connected(), "{}", s.name);
            assert!(!built.sensors.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn smart_city_is_sensor_heavy() {
        let city = Scenario::smart_city().build();
        let campus = Scenario::science_campus().build();
        assert!(city.sensors.len() > campus.sensors.len() * 4);
        assert!(campus.hpcs.len() > city.hpcs.len());
    }
}
