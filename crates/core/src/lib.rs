//! # continuum-core
//!
//! The public face of the `coding-the-continuum` reproduction: build a
//! continuum ([`Scenario`] → [`Continuum`]), hand it a workflow, pick a
//! placement policy, and run — estimated and simulated outcomes come back
//! in one [`RunReport`].
//!
//! The heavy lifting lives in the member crates this facade re-exports:
//! `continuum-sim` (virtual time), `continuum-net` (topologies, routing,
//! fair-shared flows), `continuum-model` (devices, energy, dollars),
//! `continuum-workflow` (DAGs and generators), `continuum-placement`
//! (policies), `continuum-runtime` (executors), `continuum-fabric`
//! (function-as-a-service), and `continuum-data` (replica catalog,
//! caching, staging).

#![warn(missing_docs)]

pub mod continuum;
pub mod scenario;

pub use continuum::{Continuum, RunReport};

pub use scenario::Scenario;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use crate::{Continuum, RunReport, Scenario};
    pub use continuum_model::{DeviceClass, DeviceId, Fleet};
    pub use continuum_net::{ContinuumSpec, LinkSpec, NodeId, Tier, Topology};
    pub use continuum_placement::{
        AnnealingPlacer, CpopPlacer, DataAwarePlacer, Env, GreedyEftPlacer, HeftPlacer,
        MaxMinPlacer, Metrics, MinMinPlacer, OnlinePlacer, PeftPlacer, Placement, Placer,
        RandomPlacer, RoundRobinPlacer, TierPlacer, WeightedObjective,
    };
    pub use continuum_runtime::{
        simulate, simulate_stream, simulate_stream_chaos, FaultPlane, RealExecutor, StreamRequest,
    };
    pub use continuum_sim::{
        FaultKind, FaultProcess, FaultSchedule, FaultScheduleSpec, Rng, SimDuration, SimTime,
    };
    pub use continuum_workflow::{
        analytics_pipeline, broadcast_reduce, fork_join, inference_stream, layered_random,
        map_reduce, montage_like, stencil, Constraints, Dag, LayeredSpec, PipelineSpec, StreamSpec,
        Task, TaskId,
    };
}
