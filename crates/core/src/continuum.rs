//! The top-level `Continuum` handle: build once, place and run workflows.

use crate::scenario::Scenario;
use continuum_model::{standard_fleet, Fleet};
use continuum_net::{BuiltContinuum, NodeId, Topology};
use continuum_placement::{evaluate, Env, Metrics, Placement, Placer};
use continuum_runtime::{simulate, simulate_stream, ExecutionTrace, StreamRequest};
use continuum_sim::SimTime;
use continuum_workflow::Dag;

/// A built continuum: topology, fleet, routes, and per-tier node lists.
///
/// This is the object user code holds; everything else (placement,
/// execution, experiments) is a method away.
///
/// # Example
/// ```
/// use continuum_core::{Continuum, Scenario};
/// use continuum_placement::HeftPlacer;
/// use continuum_workflow::{analytics_pipeline, PipelineSpec};
///
/// let world = Continuum::build(&Scenario::default_continuum());
/// let dag = analytics_pipeline(&PipelineSpec {
///     source: world.sensors()[0],
///     ..Default::default()
/// });
/// let report = world.run(&dag, &HeftPlacer::default());
/// assert!(report.simulated.makespan_s > 0.0);
/// ```
#[derive(Debug)]
pub struct Continuum {
    built: BuiltContinuum,
    env: Env,
}

/// What a batch run produced: the placement, the estimator's prediction,
/// and the simulated (contended) outcome.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The chosen assignment.
    pub placement: Placement,
    /// Contention-free prediction used by the policy.
    pub estimated: Metrics,
    /// Simulated execution with queueing and link sharing.
    pub simulated: Metrics,
    /// Per-task execution records.
    pub trace: ExecutionTrace,
}

impl RunReport {
    /// Ratio simulated/estimated makespan: how much contention the
    /// estimator missed (1.0 = perfect prediction).
    pub fn contention_factor(&self) -> f64 {
        if self.estimated.makespan_s == 0.0 {
            1.0
        } else {
            self.simulated.makespan_s / self.estimated.makespan_s
        }
    }
}

impl Continuum {
    /// Build a scenario with the standard per-tier fleet.
    pub fn build(scenario: &Scenario) -> Continuum {
        let built = scenario.build();
        let fleet = standard_fleet(&built);
        let env = Env::new(built.topology.clone(), fleet);
        Continuum { built, env }
    }

    /// Build from an explicit topology and fleet.
    pub fn from_parts(built: BuiltContinuum, fleet: Fleet) -> Continuum {
        let env = Env::new(built.topology.clone(), fleet);
        Continuum { built, env }
    }

    /// The placement environment (topology + routes + fleet).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.env.topology
    }

    /// Sensor node ids.
    pub fn sensors(&self) -> &[NodeId] {
        &self.built.sensors
    }

    /// Edge gateway node ids.
    pub fn edges(&self) -> &[NodeId] {
        &self.built.edges
    }

    /// Fog site node ids.
    pub fn fogs(&self) -> &[NodeId] {
        &self.built.fogs
    }

    /// Cloud node ids.
    pub fn clouds(&self) -> &[NodeId] {
        &self.built.clouds
    }

    /// HPC node ids.
    pub fn hpcs(&self) -> &[NodeId] {
        &self.built.hpcs
    }

    /// Place a workflow with a policy (no execution).
    pub fn place(&self, dag: &Dag, placer: &dyn Placer) -> Placement {
        placer.place(&self.env, dag)
    }

    /// Place with `placer`, then execute in the contended simulator.
    pub fn run(&self, dag: &Dag, placer: &dyn Placer) -> RunReport {
        dag.validate().expect("invalid workflow");
        let placement = placer.place(&self.env, dag);
        let (_, estimated) = evaluate(&self.env, dag, &placement);
        let outcome = simulate(&self.env, dag, &placement);
        RunReport {
            placement,
            estimated,
            simulated: outcome.metrics,
            trace: outcome.trace,
        }
    }

    /// Execute a pre-placed stream of requests in the contended simulator.
    pub fn run_stream(&self, requests: Vec<(SimTime, Dag, Placement)>) -> ExecutionTrace {
        let reqs: Vec<StreamRequest> = requests
            .into_iter()
            .map(|(arrival, dag, placement)| StreamRequest {
                arrival,
                dag,
                placement,
            })
            .collect();
        simulate_stream(&self.env, &reqs).trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_placement::{HeftPlacer, OnlinePlacer, TierPlacer};
    use continuum_sim::Rng;
    use continuum_workflow::{analytics_pipeline, inference_stream, PipelineSpec, StreamSpec};

    #[test]
    fn build_and_run_pipeline() {
        let world = Continuum::build(&Scenario::default_continuum());
        let dag = analytics_pipeline(&PipelineSpec {
            source: world.sensors()[0],
            ..Default::default()
        });
        let report = world.run(&dag, &HeftPlacer::default());
        assert!(report.simulated.makespan_s > 0.0);
        assert!(report.trace.respects_dependencies(&[&dag]));
        // Contention can only slow things down (or leave them equal);
        // FIFO-vs-insertion ordering and ECMP spreading allow a few
        // percent of simulated advantage.
        assert!(report.contention_factor() >= 0.90);
    }

    #[test]
    fn heft_beats_cloud_only_on_default_pipeline() {
        let world = Continuum::build(&Scenario::default_continuum());
        let dag = analytics_pipeline(&PipelineSpec {
            source: world.sensors()[0],
            input_bytes: 1 << 20, // small input: cloud transfer hurts
            ..Default::default()
        });
        let heft = world.run(&dag, &HeftPlacer::default());
        let cloud = world.run(&dag, &TierPlacer::cloud_only());
        assert!(
            heft.simulated.makespan_s <= cloud.simulated.makespan_s * 1.001,
            "heft {} vs cloud {}",
            heft.simulated.makespan_s,
            cloud.simulated.makespan_s
        );
    }

    #[test]
    fn stream_runs_end_to_end() {
        let world = Continuum::build(&Scenario::default_continuum());
        let mut rng = Rng::new(5);
        let stream = inference_stream(
            &mut rng,
            &StreamSpec {
                sensors: world.sensors().to_vec(),
                requests: 20,
                rate_hz: 4.0,
                ..Default::default()
            },
        );
        let mut placer = OnlinePlacer::continuum(world.env());
        let placed: Vec<_> = stream
            .requests
            .into_iter()
            .map(|(arrival, dag)| {
                let (placement, _) = placer.place_request(world.env(), &dag, arrival);
                (arrival, dag, placement)
            })
            .collect();
        let trace = world.run_stream(placed);
        assert_eq!(trace.request_finish.len(), 20);
        for l in trace.latencies_s() {
            assert!(l > 0.0);
        }
    }
}
