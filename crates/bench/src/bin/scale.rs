//! scale — scaling benchmark for the region-sharded executor.
//!
//! Builds a ~100k-device world (a `fat_tree(10, 8)` fabric, 525 nodes /
//! 400 hosts, 250 devices per host) carrying pod-local streaming
//! workloads, partitions it by pod with [`fat_tree_regions`], and runs
//! the same workload through [`simulate_stream_sharded`] at 1, 2, 4, and
//! 8 shards plus a windowed (conservative-lookahead) arm.
//!
//! Before timing anything, every arm's [`SimOutcome`] is asserted
//! **bit-identical** to the single-queue executor's — the scaling curve
//! is not bought with a different execution. The win is algorithmic as
//! much as parallel: each shard's flow network and event calendar hold
//! only that shard's flows, so per-event cost shrinks with the shard
//! count even on one core.
//!
//! Writes `BENCH_scale.json` in the current directory; run from the
//! workspace root:
//!
//! ```text
//! cargo run --release -p continuum-bench --bin scale
//! ```
//!
//! `--smoke` shrinks the world so CI can assert the 1-vs-2-shard
//! identity and JSON emission without paying the full measurement cost.

use continuum_core::prelude::*;
use continuum_net::{fat_tree, fat_tree_regions, LinkSpec, RegionPartition};
use continuum_runtime::{simulate_stream_chaos, simulate_stream_sharded, ShardOpts, SimOutcome};
use serde_json::json;
use std::time::Instant;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`n` wall time of `f`, in milliseconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            ms(t0)
        })
        .fold(f64::INFINITY, f64::min)
}

struct World {
    env: Env,
    reqs: Vec<StreamRequest>,
    partition: RegionPartition,
    hosts: usize,
}

/// The scaling world: a fat-tree fabric whose pods each carry an
/// independent stream of staggered requests. Placements round-robin
/// consecutive tasks across the pod's hosts so every DAG edge is a real
/// transfer, and requests overlap in time so each pod keeps many flows
/// in flight — the per-event flow-engine cost the sharding attacks.
fn build_world(smoke: bool) -> World {
    let (k, hpe, dev_per_host, reqs_per_pod, tasks) = if smoke {
        (4, 2, 1, 2, 12)
    } else {
        (10, 8, 250, 10, 80)
    };
    let link = LinkSpec::new(SimDuration::from_micros(50), 1e9);
    let (topo, hosts) = fat_tree(k, hpe, link);
    let mut fleet = Fleet::new();
    for &h in &hosts {
        for _ in 0..dev_per_host {
            fleet.add_class(h, DeviceClass::EdgeGateway);
        }
    }
    let env = Env::new(topo, fleet);
    let partition = RegionPartition::new(&env.topology, fat_tree_regions(k, hpe), 0);

    let hosts_per_pod = (k / 2) * hpe;
    let mut rng = Rng::new(0x5CA1E);
    let mut reqs = Vec::new();
    for pod in 0..k {
        let pod_hosts = &hosts[pod * hosts_per_pod..(pod + 1) * hosts_per_pod];
        let devs: Vec<DeviceId> = pod_hosts
            .iter()
            .flat_map(|&h| env.fleet.at_node(h).iter().copied())
            .collect();
        for i in 0..reqs_per_pod {
            let dag = layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks,
                    width: 8,
                    source: pod_hosts[i % pod_hosts.len()],
                    // ~20 MB median items over 1 Gb/s links: flows are
                    // long-lived and pile up, so flow-engine work (which
                    // scales with the *shard's* active flow set) is the
                    // dominant per-event cost.
                    bytes_mu: (2e7f64).ln(),
                    // ~1 Gflop median on 3 Gflop/s-per-core gateways:
                    // compute keeps devices busy without letting the
                    // network go quiet.
                    work_mu: (1e9f64).ln(),
                    min_mem_bytes: 0,
                    ..LayeredSpec::default()
                },
            );
            // Consecutive tasks on different hosts, cycling through each
            // host's devices across laps.
            let nh = pod_hosts.len();
            let assignment = (0..dag.len())
                .map(|t| devs[(t % nh) * dev_per_host + (t / nh) % dev_per_host])
                .collect();
            reqs.push(StreamRequest {
                dag,
                placement: Placement { assignment },
                arrival: SimTime::from_millis(150 * i as u64),
            });
        }
    }
    World {
        env,
        reqs,
        partition,
        hosts: hosts.len(),
    }
}

fn run_sharded(w: &World, opts: &ShardOpts) -> SimOutcome {
    simulate_stream_sharded(&w.env, &w.reqs, None, None, &w.partition, opts)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    let w = build_world(smoke);
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    // Identity first, timing second: the single-queue executor is the
    // reference, and every arm (every shard count, plus the windowed
    // conservative-sync mode) must reproduce its outcome bit-for-bit.
    eprintln!("scale: asserting identity across all arms ...");
    let reference = simulate_stream_chaos(&w.env, &w.reqs, None, None);
    for &n in shard_counts {
        let opts = ShardOpts::with_max_shards(n);
        assert_eq!(
            run_sharded(&w, &opts),
            reference,
            "{n}-shard outcome diverged from the single-queue executor"
        );
        let windowed = ShardOpts {
            windowed: true,
            ..opts
        };
        assert_eq!(
            run_sharded(&w, &windowed),
            reference,
            "windowed {n}-shard outcome diverged from the single-queue executor"
        );
    }

    // Events processed per run (identical across arms, by the identity
    // just asserted): one arrival per request, a start + completion per
    // transfer, one finish per task record.
    let events =
        w.reqs.len() as u64 + 2 * reference.trace.transfers + reference.trace.records.len() as u64;

    eprintln!("scale: timing single-queue reference ...");
    let single_ms = best_of(reps, || simulate_stream_chaos(&w.env, &w.reqs, None, None));

    let mut arms = Vec::new();
    let mut ms_at = std::collections::BTreeMap::new();
    for &n in shard_counts {
        for windowed in [false, true] {
            let opts = ShardOpts {
                windowed,
                ..ShardOpts::with_max_shards(n)
            };
            let label = if windowed {
                format!("{n}-shard windowed")
            } else {
                format!("{n}-shard")
            };
            eprintln!("scale: timing {label} ...");
            let t = best_of(reps, || run_sharded(&w, &opts));
            if !windowed {
                ms_at.insert(n, t);
            }
            arms.push(json!({
                "shards": n,
                "windowed": windowed,
                "ms": t,
                "events_per_sec": events as f64 / (t / 1e3),
            }));
        }
    }

    let base = ms_at[&shard_counts[0]];
    let speedups: Vec<serde_json::Value> = shard_counts
        .iter()
        .map(|&n| json!({ "shards": n, "speedup_vs_1_shard": base / ms_at[&n] }))
        .collect();

    let out = json!({
        "bench": "scale",
        "command": "cargo run --release -p continuum-bench --bin scale",
        "smoke": smoke,
        "nodes": w.env.topology.node_count(),
        "hosts": w.hosts,
        "devices": w.env.fleet.len(),
        "requests": w.reqs.len(),
        "events": events,
        "single_queue_ms": single_ms,
        "arms": arms,
        "speedups": speedups,
        "notes": [
            "Every arm (each shard count, windowed and not) is asserted \
             bit-identical to the single-queue executor — every trace record \
             and f64 metric — before anything is timed.",
            "events counts arrivals + per-transfer start/completion pairs + \
             task finishes; it is identical across arms by the identity \
             assert, so events_per_sec ratios equal wall-time ratios.",
            "Shards are request-confined (no two shards share a device or \
             link), so each shard's flow network and calendar hold only its \
             own flows: per-event cost shrinks with shard count even on a \
             single core, and rayon adds parallelism on multi-core hosts.",
            "The windowed arms drive the conservative-lookahead barrier loop \
             (lookahead = min boundary-link latency) to price the \
             synchronization machinery; confined shards exchange no events, \
             so the delta over the matching unwindowed arm is pure sync \
             overhead.",
        ],
    });
    let rendered = serde_json::to_string_pretty(&out).expect("render json");
    std::fs::write("BENCH_scale.json", &rendered).expect("write BENCH_scale.json");
    println!("{rendered}");
}
