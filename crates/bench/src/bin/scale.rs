//! scale — scaling benchmark for the region-sharded executor.
//!
//! Two sections, one JSON report (`BENCH_scale.json`):
//!
//! **fat_tree** — a ~100k-device `fat_tree(10, 8)` fabric carrying
//! pod-local streaming workloads, partitioned by pod and run through
//! [`simulate_stream_sharded`]'s request-confined mode at 1, 2, 4, and 8
//! shards plus windowed (conservative-lookahead) arms. Every arm is
//! asserted **bit-identical** to the single-queue executor before
//! anything is timed.
//!
//! **continuum** — the workload request confinement cannot shard: a
//! sensor→fog→cloud continuum where ~90% of requests span fog and cloud,
//! so the union-find plan collapses to one shard (asserted). Pinned mode
//! shards it anyway — tasks run where they were placed and boundary
//! transfers ride between shards as conservative envelopes. Every pinned
//! arm is asserted bit-identical to the pinned one-shard reference;
//! speedups are quoted against the single-queue global-flow executor,
//! whose all-flows-in-one-network per-event cost is what pinning removes.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p continuum-bench --bin scale
//! ```
//!
//! `--smoke` shrinks both worlds so CI can assert the identities and
//! JSON emission without paying the full measurement cost; `--continuum`
//! / `--fat-tree` restrict the run to one section.

use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_net::{continuum, continuum_regions, fat_tree, fat_tree_regions, RegionPartition};
use continuum_runtime::{
    plan_shards, simulate_stream_chaos, simulate_stream_sharded, ShardOpts, SimOutcome,
};
use serde_json::json;
use std::time::Instant;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`n` wall time of `f`, in milliseconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            ms(t0)
        })
        .fold(f64::INFINITY, f64::min)
}

/// Arrivals + a start/completion pair per transfer + a finish per task
/// record: the event volume of one run, for events/sec normalization.
fn event_volume(reqs: usize, out: &SimOutcome) -> u64 {
    reqs as u64 + 2 * out.trace.transfers + out.trace.records.len() as u64
}

struct World {
    env: Env,
    reqs: Vec<StreamRequest>,
    partition: RegionPartition,
    hosts: usize,
}

/// The confined-mode scaling world: a fat-tree fabric whose pods each
/// carry an independent stream of staggered requests. Placements
/// round-robin consecutive tasks across the pod's hosts so every DAG
/// edge is a real transfer, and requests overlap in time so each pod
/// keeps many flows in flight — the per-event flow-engine cost the
/// sharding attacks.
fn build_world(smoke: bool) -> World {
    let (k, hpe, dev_per_host, reqs_per_pod, tasks) = if smoke {
        (4, 2, 1, 2, 12)
    } else {
        (10, 8, 250, 10, 80)
    };
    let link = LinkSpec::new(SimDuration::from_micros(50), 1e9);
    let (topo, hosts) = fat_tree(k, hpe, link);
    let mut fleet = Fleet::new();
    for &h in &hosts {
        for _ in 0..dev_per_host {
            fleet.add_class(h, DeviceClass::EdgeGateway);
        }
    }
    let env = Env::new(topo, fleet);
    let partition = RegionPartition::new(&env.topology, fat_tree_regions(k, hpe), 0);

    let hosts_per_pod = (k / 2) * hpe;
    let mut rng = Rng::new(0x5CA1E);
    let mut reqs = Vec::new();
    for pod in 0..k {
        let pod_hosts = &hosts[pod * hosts_per_pod..(pod + 1) * hosts_per_pod];
        let devs: Vec<DeviceId> = pod_hosts
            .iter()
            .flat_map(|&h| env.fleet.at_node(h).iter().copied())
            .collect();
        for i in 0..reqs_per_pod {
            let dag = layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks,
                    width: 8,
                    source: pod_hosts[i % pod_hosts.len()],
                    // ~20 MB median items over 1 Gb/s links: flows are
                    // long-lived and pile up, so flow-engine work (which
                    // scales with the *shard's* active flow set) is the
                    // dominant per-event cost.
                    bytes_mu: (2e7f64).ln(),
                    // ~1 Gflop median on 3 Gflop/s-per-core gateways:
                    // compute keeps devices busy without letting the
                    // network go quiet.
                    work_mu: (1e9f64).ln(),
                    min_mem_bytes: 0,
                    ..LayeredSpec::default()
                },
            );
            // Consecutive tasks on different hosts, cycling through each
            // host's devices across laps.
            let nh = pod_hosts.len();
            let assignment = (0..dag.len())
                .map(|t| devs[(t % nh) * dev_per_host + (t / nh) % dev_per_host])
                .collect();
            reqs.push(StreamRequest {
                dag,
                placement: Placement { assignment },
                arrival: SimTime::from_millis(150 * i as u64),
            });
        }
    }
    World {
        env,
        reqs,
        partition,
        hosts: hosts.len(),
    }
}

fn run_sharded(w: &World, opts: &ShardOpts) -> SimOutcome {
    simulate_stream_sharded(&w.env, &w.reqs, None, None, &w.partition, opts)
}

fn bench_fat_tree(smoke: bool, reps: usize) -> serde_json::Value {
    let w = build_world(smoke);
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    // Identity first, timing second: the single-queue executor is the
    // reference, and every arm (every shard count, plus the windowed
    // conservative-sync mode) must reproduce its outcome bit-for-bit.
    eprintln!("scale[fat_tree]: asserting identity across all arms ...");
    let reference = simulate_stream_chaos(&w.env, &w.reqs, None, None);
    for &n in shard_counts {
        let opts = ShardOpts::with_max_shards(n);
        assert_eq!(
            run_sharded(&w, &opts),
            reference,
            "{n}-shard outcome diverged from the single-queue executor"
        );
        let windowed = ShardOpts {
            windowed: true,
            ..opts
        };
        assert_eq!(
            run_sharded(&w, &windowed),
            reference,
            "windowed {n}-shard outcome diverged from the single-queue executor"
        );
    }

    // Events processed per run (identical across arms, by the identity
    // just asserted).
    let events = event_volume(w.reqs.len(), &reference);

    eprintln!("scale[fat_tree]: timing single-queue reference ...");
    let single_ms = best_of(reps, || simulate_stream_chaos(&w.env, &w.reqs, None, None));

    let mut arms = Vec::new();
    let mut ms_at = std::collections::BTreeMap::new();
    for &n in shard_counts {
        for windowed in [false, true] {
            let opts = ShardOpts {
                windowed,
                ..ShardOpts::with_max_shards(n)
            };
            let label = if windowed {
                format!("{n}-shard windowed")
            } else {
                format!("{n}-shard")
            };
            eprintln!("scale[fat_tree]: timing {label} ...");
            let t = best_of(reps, || run_sharded(&w, &opts));
            if !windowed {
                ms_at.insert(n, t);
            }
            arms.push(json!({
                "shards": n,
                "windowed": windowed,
                "ms": t,
                "events_per_sec": events as f64 / (t / 1e3),
            }));
        }
    }

    let base = ms_at[&shard_counts[0]];
    let speedups: Vec<serde_json::Value> = shard_counts
        .iter()
        .map(|&n| json!({ "shards": n, "speedup_vs_1_shard": base / ms_at[&n] }))
        .collect();

    json!({
        "nodes": w.env.topology.node_count(),
        "hosts": w.hosts,
        "devices": w.env.fleet.len(),
        "requests": w.reqs.len(),
        "events": events,
        "single_queue_ms": single_ms,
        "arms": arms,
        "speedups": speedups,
        "notes": [
            "Every arm (each shard count, windowed and not) is asserted \
             bit-identical to the single-queue executor — every trace record \
             and f64 metric — before anything is timed.",
            "events counts arrivals + per-transfer start/completion pairs + \
             task finishes; it is identical across arms by the identity \
             assert, so events_per_sec ratios equal wall-time ratios.",
            "Shards are request-confined (no two shards share a device or \
             link), so each shard's flow network and calendar hold only its \
             own flows: per-event cost shrinks with shard count even on a \
             single core, and rayon adds parallelism on multi-core hosts.",
            "The windowed arms drive the conservative-lookahead barrier loop \
             (lookahead = min boundary-link latency) to price the \
             synchronization machinery; a single shard now skips the barrier \
             loop entirely (no peer could ever message it), so the windowed \
             1-shard arm matches the plain one instead of paying per-window \
             horizon bookkeeping.",
        ],
    })
}

struct ContWorld {
    env: Env,
    reqs: Vec<StreamRequest>,
    partition: RegionPartition,
    spanning: usize,
}

/// The pinned-mode scaling world: a sensor→fog→cloud continuum where 9
/// of every 10 requests place consecutive tasks alternately on fog and
/// backbone (cloud/HPC) devices, so nearly every DAG edge crosses the
/// fog↔cloud boundary and the union-find plan collapses to one shard.
fn build_continuum_world(smoke: bool) -> ContWorld {
    let spec = if smoke {
        ContinuumSpec {
            fogs: 2,
            edges_per_fog: 2,
            sensors_per_edge: 2,
            clouds: 2,
            hpcs: 1,
            ..ContinuumSpec::default()
        }
    } else {
        ContinuumSpec {
            fogs: 8,
            edges_per_fog: 4,
            sensors_per_edge: 4,
            clouds: 4,
            hpcs: 2,
            ..ContinuumSpec::default()
        }
    };
    let built = continuum(&spec);
    let fleet = standard_fleet(&built);
    let env = Env::new(built.topology.clone(), fleet);
    let regions = continuum_regions(&spec);
    let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
    let (reqs_per_fog, tasks) = if smoke { (2, 10) } else { (24, 40) };
    let mut rng = Rng::new(0xC0117);
    let mut reqs = Vec::new();
    let mut spanning = 0usize;
    for f in 1..regions.len() {
        for i in 0..reqs_per_fog {
            // 90% fog↔cloud spanning; the remainder stays fog-local so
            // the workload is heavy-spanning rather than all-spanning.
            let span = i % 10 != 9;
            let mut nodes = regions[f].clone();
            if span {
                nodes.extend(&regions[0]);
                spanning += 1;
            }
            let source = *regions[f].last().expect("fog region has a sensor");
            let dag = layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks,
                    width: 10,
                    source,
                    // ~20 MB median items: long-lived flows pile up, so
                    // per-event flow recomputation — over ALL flows in
                    // the single queue, per region under pinning — is
                    // the dominant cost.
                    bytes_mu: (2e7f64).ln(),
                    work_mu: (1e9f64).ln(),
                    min_mem_bytes: 0,
                    ..LayeredSpec::default()
                },
            );
            let devs: Vec<DeviceId> = nodes
                .iter()
                .flat_map(|&n| env.fleet.at_node(n).iter().copied())
                .collect();
            // Round-robin over fog-then-backbone devices: consecutive
            // tasks land on opposite sides of the boundary.
            let assignment = (0..dag.len()).map(|t| devs[t % devs.len()]).collect();
            reqs.push(StreamRequest {
                dag,
                placement: Placement { assignment },
                arrival: SimTime::from_millis(50 * i as u64),
            });
        }
    }
    ContWorld {
        env,
        reqs,
        partition,
        spanning,
    }
}

fn bench_continuum(smoke: bool, reps: usize) -> serde_json::Value {
    let w = build_continuum_world(smoke);
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let frac = w.spanning as f64 / w.reqs.len() as f64;
    assert!(
        frac >= 0.8,
        "continuum workload must be spanning-heavy (got {frac:.2})"
    );

    // The point of the exercise: request confinement yields ONE shard on
    // this workload — the old executor cannot shard it at all.
    let plan = plan_shards(&w.env, &w.reqs, &w.partition, usize::MAX);
    assert_eq!(
        plan.groups.len(),
        1,
        "spanning workload should defeat request confinement"
    );

    let pinned = |n: usize| {
        simulate_stream_sharded(
            &w.env,
            &w.reqs,
            None,
            None,
            &w.partition,
            &ShardOpts::pinned(n),
        )
    };

    // Identity first: every pinned arm (and the serial variant) must
    // reproduce the pinned one-shard outcome bit-for-bit.
    eprintln!("scale[continuum]: asserting identity across pinned arms ...");
    let reference = pinned(1);
    for &n in &shard_counts[1..] {
        assert_eq!(
            pinned(n),
            reference,
            "pinned {n}-shard outcome diverged from the pinned 1-shard reference"
        );
        let serial = simulate_stream_sharded(
            &w.env,
            &w.reqs,
            None,
            None,
            &w.partition,
            &ShardOpts {
                parallel: false,
                ..ShardOpts::pinned(n)
            },
        );
        assert_eq!(
            serial, reference,
            "serial pinned {n}-shard outcome diverged"
        );
    }
    let events = event_volume(w.reqs.len(), &reference);

    // The speedup baseline is the single-queue global-flow executor —
    // the only pre-existing way to run this workload. Its outcome is
    // *not* bit-identical to pinned execution (one global max-min flow
    // network vs. per-region domains joined by store-and-forward
    // boundary handoffs), so it gets its own event volume and the
    // comparison is events/sec, not wall time on identical outcomes.
    eprintln!("scale[continuum]: timing single-queue global-flow baseline ...");
    let chaos = simulate_stream_chaos(&w.env, &w.reqs, None, None);
    let chaos_events = event_volume(w.reqs.len(), &chaos);
    let chaos_ms = best_of(reps, || simulate_stream_chaos(&w.env, &w.reqs, None, None));
    let chaos_eps = chaos_events as f64 / (chaos_ms / 1e3);

    let mut arms = Vec::new();
    for &n in shard_counts {
        eprintln!("scale[continuum]: timing pinned {n}-shard ...");
        let t = best_of(reps, || pinned(n));
        let eps = events as f64 / (t / 1e3);
        arms.push(json!({
            "shards": n,
            "ms": t,
            "events_per_sec": eps,
            "events_per_sec_vs_single_queue": eps / chaos_eps,
        }));
    }

    json!({
        "nodes": w.env.topology.node_count(),
        "devices": w.env.fleet.len(),
        "requests": w.reqs.len(),
        "spanning_fraction": frac,
        "confined_plan_shards": 1,
        "events": events,
        "single_queue_ms": chaos_ms,
        "single_queue_events": chaos_events,
        "single_queue_events_per_sec": chaos_eps,
        "arms": arms,
        "notes": [
            "Request confinement collapses to ONE shard on this workload \
             (asserted): ~90% of requests alternate tasks across the \
             fog↔cloud boundary, so every region co-occurs with the \
             backbone. Pinned mode is what makes it shard at all.",
            "Every pinned arm (each shard count, serial and parallel) is \
             asserted bit-identical to the pinned 1-shard reference — every \
             trace record and f64 metric — before anything is timed.",
            "The single-queue baseline runs a different transfer model (one \
             global max-min flow network; pinned execution uses per-region \
             flow domains joined by store-and-forward handoffs at boundary \
             links), so the quoted ratio is events/sec against that \
             baseline's own event volume, not wall time on an identical \
             outcome. The algorithmic win is exactly the model split: each \
             shard recomputes only its own region's flow rates.",
            "On a single-core host the multi-shard arms pay conservative \
             window overhead (one barrier per ~20 ms of virtual time, the \
             fog↔cloud boundary latency) with no parallel payback, so the \
             curve declines with shard count; the per-region flow split \
             still keeps every arm well above the global-flow baseline, and \
             multi-core hosts reclaim the window cost via rayon.",
        ],
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let continuum_only = args.iter().any(|a| a == "--continuum");
    let fat_tree_only = args.iter().any(|a| a == "--fat-tree");
    let reps = if smoke { 1 } else { 3 };

    let fat_tree = (!continuum_only).then(|| bench_fat_tree(smoke, reps));
    let cont = (!fat_tree_only).then(|| bench_continuum(smoke, reps));

    let mut fields = vec![
        ("bench".to_string(), json!("scale")),
        (
            "command".to_string(),
            json!("cargo run --release -p continuum-bench --bin scale"),
        ),
        ("smoke".to_string(), json!(smoke)),
    ];
    if let Some(v) = fat_tree {
        fields.push(("fat_tree".to_string(), v));
    }
    if let Some(v) = cont {
        fields.push(("continuum".to_string(), v));
    }
    let out = serde_json::Value::Object(fields);
    let rendered = serde_json::to_string_pretty(&out).expect("render json");
    std::fs::write("BENCH_scale.json", &rendered).expect("write BENCH_scale.json");
    println!("{rendered}");
}
