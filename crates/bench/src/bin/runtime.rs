//! runtime — before/after benchmarks for the stream-executor overhaul.
//!
//! Runs the dense-state executor (interned item slots, CSR input plans,
//! epoch-tagged route cache, compacting calendar) against the seed-era
//! executor vendored in [`continuum_bench::seed_exec`] (hashed composite
//! keys, per-event input clone+sort+dedup, a fresh route computation per
//! transfer) on identical workloads, in two arms:
//!
//! - **steady**: a multi-request streaming workload on a whole fabric —
//!   no faults, so the route cache only absorbs repeat (src, dst, salt)
//!   lookups and the win comes from the dense request state.
//! - **chaos churn**: the same world under a generated device/link
//!   crash-recover storm. Degraded-fabric routing is where the seed
//!   pays a full Dijkstra per transfer; the cache collapses that to one
//!   per (src, dst) pair per epoch, and the calendar's compaction bounds
//!   the tombstone pile-up from re-armed flow completions.
//!
//! Both arms assert the two executors' [`SimOutcome`]s **bit-identical**
//! (every f64 metric, every trace record) before timing anything — the
//! speedup is not bought with a different execution.
//!
//! Writes `BENCH_runtime.json` in the current directory; run from the
//! workspace root:
//!
//! ```text
//! cargo run --release -p continuum-bench --bin runtime
//! ```
//!
//! `--smoke` shrinks the workload so CI can assert equivalence and JSON
//! emission without paying the full measurement cost.

use continuum_bench::seed_exec::simulate_stream_chaos_seed;
use continuum_core::prelude::*;
use continuum_fabric::{
    endpoints_on, run_fabric_faulty, Backoff, EndpointFaults, FunctionRegistry, Invocation,
    RoutingPolicy,
};
use continuum_model::standard_fleet;
use continuum_obs::{HealthSpec, Telemetry};
use continuum_runtime::{simulate_open_loop, simulate_stream_chaos, OpenLoopOpts, SimOutcome};
use serde_json::json;
use std::rc::Rc;
use std::time::Instant;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`n` wall time of `f`, in milliseconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            ms(t0)
        })
        .fold(f64::INFINITY, f64::min)
}

/// The shared world: the planner bench's ~526-node continuum (hundreds of
/// nodes make each uncached Dijkstra detour expensive, which is the hot
/// path the route cache attacks) carrying a staggered stream of identical
/// requests.
///
/// The placement is deliberately round-robin, not HEFT: this bench
/// stresses the *executor*, so every DAG edge should be a real transfer
/// (HEFT collocates data-heavy neighbors and the event loop goes quiet).
/// All requests share one placement, so the same (src, dst) node pairs
/// recur across the stream — the access pattern the degraded-fabric
/// route cache keys on.
fn build_world(smoke: bool) -> (Env, Vec<StreamRequest>) {
    let spec = ContinuumSpec {
        fogs: 8,
        edges_per_fog: 8,
        sensors_per_edge: 7, // 526 nodes
        ..ContinuumSpec::default()
    };
    let built = continuum_net::continuum(&spec);
    let env = Env::new(built.topology.clone(), standard_fleet(&built));
    let n_reqs = if smoke { 3 } else { 16 };
    let tasks = if smoke { 30 } else { 120 };
    let mut rng = Rng::new(0x57EA);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks,
            width: 10,
            source: built.edges[0],
            min_mem_bytes: 0,
            // ~10 MB median items: flows live long enough for the churn
            // arm's link flaps to abort and re-route them mid-flight.
            bytes_mu: (1e7f64).ln(),
            ..Default::default()
        },
    );
    let placement = RoundRobinPlacer.place(&env, &dag);
    let reqs: Vec<StreamRequest> = (0..n_reqs)
        .map(|i| StreamRequest {
            arrival: SimTime::from_millis(100 * i as u64),
            dag: dag.clone(),
            placement: placement.clone(),
        })
        .collect();
    (env, reqs)
}

/// A device/link churn storm scaled to the steady-state makespan: every
/// crash recovers, link flaps keep the fabric degraded for most of the
/// run (many route-cache epochs, each amortizing its Dijkstras), and
/// device crashes exercise orphan re-placement.
fn churn_plane(env: &Env, base_makespan_s: f64) -> FaultPlane {
    let n_dev = env.fleet.len() as u32;
    let n_links = env.topology.links().len() as u32;
    let schedule = FaultSchedule::generate(
        &FaultScheduleSpec {
            horizon: SimDuration::from_secs_f64(base_makespan_s * 1.5),
            devices: FaultProcess {
                population: n_dev,
                mttf_s: base_makespan_s * 4.0,
                mttr_s: base_makespan_s * 0.3,
            },
            // A modest set of flapping links rather than the whole
            // fabric: with ~duty-cycle-33% outages on dozens of links the
            // fabric is degraded nearly the entire run (every route is a
            // Dijkstra detour in the seed), while the epoch count — each
            // flap invalidates the cache — stays small next to the
            // transfer count, which is what any cache needs to pay off.
            links: FaultProcess {
                population: (n_links / 8).max(8),
                mttf_s: base_makespan_s * 0.4,
                mttr_s: base_makespan_s * 0.2,
            },
            ..Default::default()
        },
        0xC4AF,
    );
    FaultPlane {
        schedule,
        detection: SimDuration::from_millis(250),
    }
}

/// Run one arm: assert the dense executor and the vendored seed executor
/// produce bit-identical outcomes, then time both.
fn bench_arm(
    env: &Env,
    reqs: &[StreamRequest],
    plane: Option<&FaultPlane>,
    reps: usize,
) -> (SimOutcome, serde_json::Value) {
    let dense = simulate_stream_chaos(env, reqs, None, plane);
    let seed = simulate_stream_chaos_seed(env, reqs, None, plane);
    assert_eq!(
        dense, seed,
        "dense executor diverged from the seed oracle — the speedup would be meaningless"
    );
    let dense_ms = best_of(reps, || simulate_stream_chaos(env, reqs, None, plane));
    let seed_ms = best_of(reps, || simulate_stream_chaos_seed(env, reqs, None, plane));
    let events = dense.trace.records.len() as u64
        + dense.trace.transfers
        + plane.map_or(0, |p| p.schedule.len() as u64);
    let stats = json!({
        "requests": reqs.len(),
        "tasks": reqs.iter().map(|r| r.dag.len()).sum::<usize>(),
        "transfers": dense.trace.transfers,
        "makespan_s": dense.metrics.makespan_s,
        "device_crashes": dense.trace.device_crashes,
        "link_failures": dense.trace.link_failures,
        "replacements": dense.trace.replacements,
        "approx_events": events,
        "seed_ms": seed_ms,
        "dense_ms": dense_ms,
        "speedup": seed_ms / dense_ms,
        "bit_identical": true,
    });
    (dense, stats)
}

/// An endpoint-fault fabric leg for the instrumented telemetry run: a
/// burst of invocations on the cloud-tier endpoints under a generated
/// crash/recover storm, so the exported snapshot carries broker
/// failovers, detections, retries, and orphan restarts alongside the
/// executor's counters.
fn fabric_leg(env: &Env, smoke: bool) {
    let mut registry = FunctionRegistry::new();
    let f = registry.register("f", 1e10, 10 << 10, 1 << 10);
    let endpoints = endpoints_on(env, &env.fleet.in_tier(Tier::Cloud));
    let origins: Vec<NodeId> = env
        .topology
        .nodes()
        .iter()
        .filter(|n| n.tier == Tier::Sensor)
        .map(|n| n.id)
        .collect();
    let n = if smoke { 60 } else { 400 };
    let mut rng = Rng::new(0xFAB0);
    let mut t = 0.0;
    let invocations: Vec<Invocation> = (0..n)
        .map(|i| {
            t += rng.exp(40.0);
            Invocation {
                arrival: SimTime::from_secs_f64(t),
                origin: origins[i % origins.len()],
                function: f,
            }
        })
        .collect();
    let faults = EndpointFaults {
        schedule: FaultSchedule::generate(
            &FaultScheduleSpec {
                horizon: SimDuration::from_secs_f64(t + 30.0),
                endpoints: FaultProcess {
                    population: endpoints.len() as u32,
                    mttf_s: 8.0,
                    mttr_s: 3.0,
                },
                ..Default::default()
            },
            0xFA17,
        ),
        heartbeat: SimDuration::from_millis(500),
        backoff: Backoff::default(),
        seed: 0xBAC0,
    };
    let rep = run_fabric_faulty(
        env,
        &registry,
        &endpoints,
        &invocations,
        RoutingPolicy::LeastOutstanding,
        None,
        None,
        Some(&faults),
    );
    assert_eq!(rep.completed + rep.dropped, n as u64);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let want_metrics = argv.iter().any(|a| a == "--metrics");
    let trace_path = argv.iter().position(|a| a == "--trace").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--trace needs a file path");
            std::process::exit(2);
        })
    });
    let reps = if smoke { 1 } else { 5 };
    let (env, reqs) = build_world(smoke);

    eprintln!("runtime: steady arm (no faults) ...");
    let (steady_out, steady) = bench_arm(&env, &reqs, None, reps);

    eprintln!("runtime: chaos churn arm ...");
    let plane = churn_plane(&env, steady_out.metrics.makespan_s);
    let (_, churn) = bench_arm(&env, &reqs, Some(&plane), reps);

    // Health-plane overhead arm: the same workload through the open-loop
    // executor with the SLO burn-rate health plane off vs on. Observation
    // must not perturb the simulation — once the health summary itself is
    // set aside, the two reports agree on every number — and the wall
    // cost of observing stays within noise of the untracked run.
    eprintln!("runtime: open-loop health on/off arm ...");
    let hspec = HealthSpec::default();
    let off_opts = OpenLoopOpts::default();
    let on_opts = OpenLoopOpts {
        health: Some(&hspec),
        ..OpenLoopOpts::default()
    };
    let off_rep = simulate_open_loop(&env, reqs.iter().cloned(), &off_opts);
    let mut on_rep = simulate_open_loop(&env, reqs.iter().cloned(), &on_opts);
    assert!(off_rep.health.is_none() && on_rep.health.is_some());
    let health_summary = on_rep.health.take().expect("health report");
    assert_eq!(
        off_rep, on_rep,
        "the health plane perturbed the open-loop run"
    );
    let health_off_ms = best_of(reps, || {
        simulate_open_loop(&env, reqs.iter().cloned(), &off_opts)
    });
    let health_on_ms = best_of(reps, || {
        simulate_open_loop(&env, reqs.iter().cloned(), &on_opts)
    });
    let health = json!({
        "completed": on_rep.completed,
        "observed": health_summary.observed,
        "violations": health_summary.violations,
        "burn_short_peak": health_summary.burn_short_peak,
        "frames": health_summary.frames.len(),
        "health_off_ms": health_off_ms,
        "health_on_ms": health_on_ms,
        "overhead": health_on_ms / health_off_ms,
        "bit_identical": true,
    });

    // Instrumented section: a telemetry-on chaos replay plus a fabric
    // fault leg, strictly OUTSIDE the timed arms above — the benchmark
    // numbers never include telemetry overhead, and the trace/metrics
    // artifacts come from the same world the chaos arm measured. This
    // leg always runs so the `telemetry` key is always populated;
    // `--metrics` is kept as a no-op for compatibility, `--trace PATH`
    // additionally records and exports a Perfetto trace.
    let _ = want_metrics;
    eprintln!("runtime: instrumented chaos + fabric leg ...");
    let tele = Rc::new(Telemetry::new(trace_path.is_some()));
    continuum_obs::with_ambient(&tele, || {
        std::hint::black_box(simulate_stream_chaos(&env, &reqs, None, Some(&plane)));
        fabric_leg(&env, smoke);
    });
    if let Some(path) = &trace_path {
        std::fs::write(path, tele.tracer.export_string())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("trace: {path} ({} events)", tele.tracer.len());
    }
    let telemetry = serde::Serialize::to_value(&tele.metrics.snapshot());

    let out = json!({
        "bench": "runtime",
        "command": "cargo run --release -p continuum-bench --bin runtime",
        "smoke": smoke,
        "nodes": env.topology.node_count(),
        "devices": env.fleet.len(),
        "steady": steady,
        "chaos_churn": churn,
        "open_loop_health": health,
        "telemetry": telemetry,
        "notes": [
            "Both arms assert SimOutcome bit-identity (every trace record and f64 \
             metric) between the dense-state executor and the vendored seed-era \
             executor before timing either.",
            "The seed oracle keeps the seed's data structures and per-transfer route \
             computations; its only deviations are NodeId-sorted publish order (the \
             seed's HashMap key scan was nondeterministic) and sender-device egress \
             attribution (the seed billed an arbitrary device at multi-device nodes).",
            "chaos_churn is the headline arm: degraded-fabric routing cost a full \
             Dijkstra per transfer in the seed; the epoch-tagged route cache pays one \
             per (src, dst) pair per fault epoch.",
            "telemetry is always populated: it is the metrics snapshot of an \
             untimed instrumented replay of the chaos arm plus a fabric fault leg.",
            "open_loop_health times the open-loop executor with the SLO burn-rate \
             health plane off vs on; the two runs are asserted equal on every \
             simulated number before timing, so `overhead` is pure observation cost.",
        ],
    });
    let rendered = serde_json::to_string_pretty(&out).expect("render json");
    std::fs::write("BENCH_runtime.json", &rendered).expect("write BENCH_runtime.json");
    println!("{rendered}");
}
