//! fabric — federated-dispatch benchmark.
//!
//! Three sections, one JSON report (`BENCH_fabric.json`):
//!
//! **dispatch** — wall-clock dispatch throughput of the federation vs the
//! per-invocation single broker, swept over batch size × site count on a
//! fog-heavy continuum with hundreds of endpoints. The 1-site batch-1
//! federation arm is asserted **bit-identical** to
//! `run_fabric_admission` — every latency, every counter — before
//! anything is timed; the batched arms then amortize the per-invocation
//! overhead (admission scan, candidate build, route resolution, arrival
//! heap traffic) the identity arm still proves equivalent.
//!
//! **placement** — federated (4-site, site-local locality scan) vs
//! centralized (1-site, global scan) placement quality under the
//! locality policy: latency percentiles, balance, and wall time.
//!
//! **failure** — a mid-run site outage with broker-peer takeover at 2
//! and 4 sites: tail-latency inflation vs the fault-free run, adopted
//! work, and drops.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p continuum-bench --bin fabric
//! ```
//!
//! `--smoke` shrinks the world so CI can assert the identity and the
//! JSON shape without paying the full measurement cost.

use continuum_fabric::{
    endpoints_on, run_fabric_admission, run_federation, sites_from_partition, Admission, Backoff,
    Endpoint, FederationCfg, FunctionRegistry, Invocation, RoutingPolicy, SiteFaultEvent,
    SiteFaults,
};
use continuum_model::{standard_fleet, DeviceClass};
use continuum_net::{continuum, continuum_regions, ContinuumSpec, NodeId, RegionPartition, Tier};
use continuum_placement::Env;
use continuum_sim::{Rng, SimDuration, SimTime};
use serde_json::json;
use std::time::Instant;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`n` wall time of `f`, in milliseconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            ms(t0)
        })
        .fold(f64::INFINITY, f64::min)
}

struct World {
    env: Env,
    partition: RegionPartition,
    sensors: Vec<NodeId>,
    endpoints: Vec<Endpoint>,
}

/// A fog-heavy continuum: many fog sites, each densified to 8 fog
/// servers, so the endpoint pool is large enough that the single
/// broker's per-invocation O(endpoints) admission scan and candidate
/// build are the dominant dispatch cost — the overhead batching
/// amortizes away.
fn build_world(smoke: bool) -> World {
    let (spec, extra_fog_devices) = if smoke {
        (
            ContinuumSpec {
                fogs: 4,
                edges_per_fog: 2,
                sensors_per_edge: 2,
                clouds: 2,
                hpcs: 1,
                ..ContinuumSpec::default()
            },
            1,
        )
    } else {
        (
            ContinuumSpec {
                fogs: 32,
                edges_per_fog: 2,
                sensors_per_edge: 2,
                clouds: 4,
                hpcs: 2,
                ..ContinuumSpec::default()
            },
            7,
        )
    };
    let built = continuum(&spec);
    let mut fleet = standard_fleet(&built);
    for &f in &built.fogs {
        for _ in 0..extra_fog_devices {
            fleet.add_class(f, DeviceClass::FogServer);
        }
    }
    let sensors = built.sensors.clone();
    let env = Env::new(built.topology.clone(), fleet);
    let partition = RegionPartition::new(&env.topology, continuum_regions(&spec), 0);
    let mut devices = env.fleet.in_tier(Tier::Fog);
    devices.extend(env.fleet.in_tier(Tier::Cloud));
    let endpoints = endpoints_on(&env, &devices);
    World {
        env,
        partition,
        sensors,
        endpoints,
    }
}

fn workload(
    w: &World,
    n: usize,
    rate: f64,
    work_flops: f64,
) -> (FunctionRegistry, Vec<Invocation>) {
    let mut registry = FunctionRegistry::new();
    let f = registry.register("infer", work_flops, 10 << 10, 1 << 10);
    let mut rng = Rng::new(0xFAB);
    let mut t = 0.0;
    let invocations = (0..n)
        .map(|i| {
            t += rng.exp(rate);
            Invocation {
                arrival: SimTime::from_secs_f64(t),
                origin: w.sensors[i % w.sensors.len()],
                function: f,
            }
        })
        .collect();
    (registry, invocations)
}

fn bench_dispatch(w: &World, smoke: bool, reps: usize) -> serde_json::Value {
    let (n, rate) = if smoke {
        (2_000, 500.0)
    } else {
        (40_000, 2_000.0)
    };
    let (registry, invocations) = workload(w, n, rate, 2e9);
    let admission = Some(Admission {
        max_outstanding: 2_048,
    });
    let policy = RoutingPolicy::RoundRobin;
    let site_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let batches: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 32] };

    // Identity first, timing second: the per-invocation single broker is
    // the reference, and the 1-site batch-1 federation must reproduce its
    // report bit-for-bit — every latency in order, every counter.
    eprintln!("fabric[dispatch]: asserting 1-site batch-1 identity vs single broker ...");
    let oracle = run_fabric_admission(
        &w.env,
        &registry,
        &w.endpoints,
        &invocations,
        policy,
        None,
        None,
        None,
        admission,
    );
    let fed_cfg = |batch: usize| {
        let mut cfg = FederationCfg::new(policy);
        cfg.batch = batch;
        cfg.drain_every = SimDuration::from_millis(5);
        cfg.admission = admission;
        cfg
    };
    let one_site = sites_from_partition(&w.env, &w.partition, &w.endpoints, 1);
    let identity = run_federation(
        &w.env,
        &registry,
        &w.endpoints,
        &one_site,
        &invocations,
        &fed_cfg(1),
    );
    assert_eq!(
        identity.fabric, oracle,
        "1-site batch-1 federation diverged from run_fabric_admission"
    );

    eprintln!("fabric[dispatch]: timing single-broker baseline ...");
    let baseline_ms = best_of(reps, || {
        run_fabric_admission(
            &w.env,
            &registry,
            &w.endpoints,
            &invocations,
            policy,
            None,
            None,
            None,
            admission,
        )
    });
    let baseline_thpt = n as f64 / (baseline_ms / 1e3);

    let mut arms = Vec::new();
    let mut speedup_batch32_1site = 0.0;
    let mut best_speedup = 0.0f64;
    for &sites_n in site_counts {
        let sites = sites_from_partition(&w.env, &w.partition, &w.endpoints, sites_n);
        for &batch in batches {
            let cfg = fed_cfg(batch);
            eprintln!("fabric[dispatch]: timing {sites_n}-site batch-{batch} ...");
            let rep = run_federation(&w.env, &registry, &w.endpoints, &sites, &invocations, &cfg);
            let t = best_of(reps, || {
                run_federation(&w.env, &registry, &w.endpoints, &sites, &invocations, &cfg)
            });
            let speedup = baseline_ms / t;
            if sites_n == 1 && batch == *batches.last().expect("non-empty") {
                speedup_batch32_1site = speedup;
            }
            best_speedup = best_speedup.max(speedup);
            arms.push(json!({
                "sites": sites.len(),
                "batch": batch,
                "ms": t,
                "dispatch_throughput_per_sec": n as f64 / (t / 1e3),
                "speedup_vs_single_broker": speedup,
                "completed": rep.fabric.completed,
                "rejected": rep.fabric.rejected,
                "drains": rep.drains,
                "mean_batch": if rep.drains > 0 { rep.batched as f64 / rep.drains as f64 } else { 0.0 },
                "max_batch": rep.max_batch,
                "route_hit_rate": rep.route_hits as f64
                    / (rep.route_hits + rep.route_misses).max(1) as f64,
            }));
        }
    }

    json!({
        "endpoints": w.endpoints.len(),
        "invocations": n,
        "offered_rate_hz": rate,
        "policy": "round-robin",
        "identity_asserted": true,
        "single_broker_ms": baseline_ms,
        "single_broker_throughput_per_sec": baseline_thpt,
        "arms": arms,
        "speedup_at_max_batch_1site": speedup_batch32_1site,
        "best_speedup": best_speedup,
        "notes": [
            "The 1-site batch-1 federation arm is asserted bit-identical to \
             run_fabric_admission (every latency, every counter) before any \
             arm is timed; batched arms change only *when* dispatch work \
             happens, never the admission decision or the policy pick.",
            "Throughput is invocations per wall-second of simulation: the \
             single broker pays an O(endpoints) admission scan and candidate \
             build plus two arrival heap operations per invocation; the \
             federation pays an O(1) maintained in-system count, a cached \
             per-site candidate list, a cached route probe, and amortizes \
             drain bookkeeping across the batch.",
            "Mean batch occupancy stays below the configured cap at moderate \
             load because the drain-timer fires before the buffer fills; \
             max_batch shows the cap engaging under bursts.",
        ],
    })
}

fn bench_placement(w: &World, smoke: bool, reps: usize) -> serde_json::Value {
    let (n, rate) = if smoke {
        (1_000, 300.0)
    } else {
        (8_000, 800.0)
    };
    let (registry, invocations) = workload(w, n, rate, 5e9);
    let policy = RoutingPolicy::Locality;
    let mut arms = Vec::new();
    for sites_n in [1usize, 4] {
        let sites = sites_from_partition(&w.env, &w.partition, &w.endpoints, sites_n);
        let cfg = FederationCfg::new(policy);
        let rep = run_federation(&w.env, &registry, &w.endpoints, &sites, &invocations, &cfg);
        let t = best_of(reps, || {
            run_federation(&w.env, &registry, &w.endpoints, &sites, &invocations, &cfg)
        });
        let (p50, p95, p99) = rep.fabric.latency_percentiles();
        arms.push(json!({
            "sites": sites.len(),
            "label": if sites_n == 1 { "centralized" } else { "federated" },
            "ms": t,
            "p50_s": p50,
            "p95_s": p95,
            "p99_s": p99,
            "jain": rep.fabric.jain,
            "throughput_hz": rep.fabric.throughput_hz,
        }));
    }
    json!({
        "policy": "locality",
        "invocations": n,
        "arms": arms,
        "notes": [
            "Centralized locality scans every endpoint per invocation; \
             federated locality first picks the cheapest-broker site, then \
             scans only that site's endpoints — cheaper, but blind to a \
             marginally better endpoint in another site. The quality gap is \
             the price of the cheaper scan; the wall-time gap is its payoff.",
        ],
    })
}

fn bench_failure(w: &World, smoke: bool) -> serde_json::Value {
    let (n, rate) = if smoke {
        (1_500, 300.0)
    } else {
        (10_000, 800.0)
    };
    let (registry, invocations) = workload(w, n, rate, 2e9);
    let policy = RoutingPolicy::LeastOutstanding;
    let span = invocations.last().expect("n > 0").arrival;
    let site_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let mut arms = Vec::new();
    for &sites_n in site_counts {
        let sites = sites_from_partition(&w.env, &w.partition, &w.endpoints, sites_n);
        let clean_cfg = FederationCfg::new(policy);
        let clean = run_federation(
            &w.env,
            &registry,
            &w.endpoints,
            &sites,
            &invocations,
            &clean_cfg,
        );
        let mut cfg = FederationCfg::new(policy);
        cfg.site_faults = Some(SiteFaults {
            events: vec![
                SiteFaultEvent {
                    at: SimTime::from_secs_f64(span.as_secs_f64() * 0.4),
                    site: 0,
                    crash: true,
                },
                SiteFaultEvent {
                    at: SimTime::from_secs_f64(span.as_secs_f64() * 0.4 + 20.0),
                    site: 0,
                    crash: false,
                },
            ],
            heartbeat: SimDuration::from_millis(500),
            backoff: Backoff::default(),
            seed: 0xFA11,
        });
        let faulty = run_federation(&w.env, &registry, &w.endpoints, &sites, &invocations, &cfg);
        assert_eq!(
            faulty.fabric.completed + faulty.fabric.dropped + faulty.fabric.rejected,
            n as u64,
            "site-failure run lost an invocation"
        );
        let (_, _, clean_p99) = clean.fabric.latency_percentiles();
        let (_, _, faulty_p99) = faulty.fabric.latency_percentiles();
        arms.push(json!({
            "sites": sites.len(),
            "takeovers": faulty.takeovers,
            "adopted": faulty.sites.iter().map(|s| s.adopted).sum::<u64>(),
            "completed": faulty.fabric.completed,
            "dropped": faulty.fabric.dropped,
            "retries": faulty.fabric.retries,
            "clean_p99_s": clean_p99,
            "faulty_p99_s": faulty_p99,
            "p99_inflation": if clean_p99 > 0.0 { faulty_p99 / clean_p99 } else { 0.0 },
        }));
    }
    json!({
        "policy": "least-outstanding",
        "invocations": n,
        "arms": arms,
        "notes": [
            "Site 0 dies 40% into the arrival span and returns 20 s later; \
             after the 500 ms heartbeat the least-loaded surviving site \
             adopts the orphaned, queued, and buffered work as one ingress \
             batch. More sites mean a smaller blast radius: the 4-site \
             outage displaces roughly half as much work as the 2-site one.",
        ],
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };

    let w = build_world(smoke);
    eprintln!(
        "fabric: world has {} endpoints across {} regions",
        w.endpoints.len(),
        w.partition.regions().len()
    );
    let dispatch = bench_dispatch(&w, smoke, reps);
    let placement = bench_placement(&w, smoke, reps);
    let failure = bench_failure(&w, smoke);

    let out = json!({
        "bench": "fabric",
        "command": "cargo run --release -p continuum-bench --bin fabric",
        "smoke": smoke,
        "dispatch": dispatch,
        "placement": placement,
        "failure": failure,
    });
    let rendered = serde_json::to_string_pretty(&out).expect("render json");
    std::fs::write("BENCH_fabric.json", &rendered).expect("write BENCH_fabric.json");
    println!("{rendered}");
}
