//! hotpaths — microbenchmarks for the three optimized hot paths.
//!
//! Measures (1) all-pairs route-table construction, serial vs parallel,
//! on a ~1000-node fat-tree; (2) 10k-flow start/remove churn through
//! `FlowNetwork` on a ~500-node fat-tree, incremental engine vs the
//! pre-overhaul engine vendored below as [`seed_flow`]; and (3) a HEFT
//! placement sweep over a ~500-node continuum, which exercises the
//! sweep-line device timelines.
//!
//! Writes `BENCH_hotpaths.json` in the current directory so the repo's
//! perf trajectory is recorded; run from the workspace root:
//!
//! ```text
//! cargo run --release -p continuum-bench --bin hotpaths
//! ```

use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_net::{fat_tree, ContinuumSpec, FlowNetwork, LinkSpec, RouteTable};
use continuum_sim::{Rng, SimDuration, SimTime};
use serde_json::json;
use std::time::Instant;

/// The flow engine as it stood before the incremental overhaul, vendored
/// verbatim (minus unused methods) so the churn benchmark measures the
/// real before/after rather than a proxy: `HashMap` flow storage, a
/// `Vec<LinkId>` path clone per start, and a from-scratch progressive
/// filling over *all* links on every mutation.
mod seed_flow {
    use continuum_net::{LinkId, Path, Topology};
    use continuum_sim::SimTime;
    use std::collections::HashMap;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct FlowId(pub u64);

    #[derive(Debug, Clone)]
    struct Flow {
        links: Vec<LinkId>,
        remaining: f64,
        rate: f64,
    }

    #[derive(Debug)]
    pub struct FlowNetwork {
        capacity: Vec<f64>,
        flows: HashMap<FlowId, Flow>,
        next_id: u64,
        clock: SimTime,
    }

    impl FlowNetwork {
        pub fn new(topo: &Topology) -> FlowNetwork {
            FlowNetwork {
                capacity: topo.links().iter().map(|l| l.bandwidth_bps).collect(),
                flows: HashMap::new(),
                next_id: 0,
                clock: SimTime::ZERO,
            }
        }

        pub fn start(&mut self, now: SimTime, path: &Path, bytes: u64) -> Option<FlowId> {
            if path.links.is_empty() {
                return None;
            }
            self.advance(now);
            let id = FlowId(self.next_id);
            self.next_id += 1;
            self.flows.insert(
                id,
                Flow {
                    links: path.links.to_vec(),
                    remaining: bytes.max(1) as f64,
                    rate: 0.0,
                },
            );
            self.recompute_rates();
            Some(id)
        }

        pub fn remove(&mut self, now: SimTime, id: FlowId) {
            self.advance(now);
            self.flows.remove(&id);
            self.recompute_rates();
        }

        pub fn advance(&mut self, now: SimTime) {
            debug_assert!(now >= self.clock, "flow network time went backwards");
            if now <= self.clock {
                return;
            }
            let dt = now.since(self.clock).as_secs_f64();
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            self.clock = now;
        }

        pub fn rate(&self, id: FlowId) -> Option<f64> {
            self.flows.get(&id).map(|f| f.rate)
        }

        fn recompute_rates(&mut self) {
            let mut residual = self.capacity.clone();
            let mut count = vec![0u32; self.capacity.len()];
            for f in self.flows.values() {
                for &l in &f.links {
                    count[l.0 as usize] += 1;
                }
            }
            let mut frozen: HashMap<FlowId, f64> = HashMap::with_capacity(self.flows.len());
            let mut unfrozen: Vec<FlowId> = self.flows.keys().copied().collect();
            unfrozen.sort_unstable(); // determinism
            while !unfrozen.is_empty() {
                let mut best: Option<(f64, usize)> = None;
                for (li, (&res, &cnt)) in residual.iter().zip(count.iter()).enumerate() {
                    if cnt > 0 {
                        let share = res / cnt as f64;
                        if best.map(|(s, _)| share < s).unwrap_or(true) {
                            best = Some((share, li));
                        }
                    }
                }
                let Some((share, bottleneck)) = best else {
                    break;
                };
                let mut still = Vec::with_capacity(unfrozen.len());
                for id in unfrozen.drain(..) {
                    let f = &self.flows[&id];
                    if f.links.iter().any(|l| l.0 as usize == bottleneck) {
                        frozen.insert(id, share);
                        for &l in &f.links {
                            residual[l.0 as usize] -= share;
                            count[l.0 as usize] -= 1;
                        }
                    } else {
                        still.push(id);
                    }
                }
                unfrozen = still;
                for r in &mut residual {
                    if *r < 0.0 {
                        *r = 0.0;
                    }
                }
            }
            for (id, f) in self.flows.iter_mut() {
                f.rate = frozen.get(id).copied().unwrap_or(0.0);
            }
        }
    }
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`n` wall time of `f`, in milliseconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            ms(t0)
        })
        .fold(f64::INFINITY, f64::min)
}

/// All-pairs Dijkstra over a ~1000-node fat-tree, serial vs rayon.
fn bench_route_table() -> serde_json::Value {
    let link = LinkSpec::new(SimDuration::from_micros(50), 1.25e9);
    let (topo, _) = fat_tree(14, 8, link); // 49 + 98 + 98 + 784 = 1029 nodes
    let serial_ms = best_of(3, || RouteTable::build_serial(&topo));
    let parallel_ms = best_of(3, || RouteTable::build(&topo));
    json!({
        "nodes": topo.node_count(),
        "links": topo.link_count(),
        "serial_ms": serial_ms,
        "parallel_ms": parallel_ms,
        "speedup": serial_ms / parallel_ms,
        "threads": rayon::current_num_threads(),
    })
}

/// Start/remove 10k flows over a ~500-node fat-tree, holding at most
/// `CAP` concurrent, through the incremental engine and through the
/// vendored pre-overhaul engine ([`seed_flow`]), end to end.
fn bench_flow_churn() -> serde_json::Value {
    const FLOWS: usize = 10_000;
    const CAP: usize = 512;
    let link = LinkSpec::new(SimDuration::from_micros(50), 1.25e9);
    let (topo, hosts) = fat_tree(10, 8, link); // 25 + 50 + 50 + 400 = 525 nodes
    let rt = RouteTable::build(&topo);
    let mut rng = Rng::new(0xB0_7CA75);
    let mut picks = Vec::with_capacity(FLOWS);
    for _ in 0..FLOWS {
        let a = hosts[rng.index(hosts.len())];
        let mut b = hosts[rng.index(hosts.len())];
        while b == a {
            b = hosts[rng.index(hosts.len())];
        }
        let path = rt.path(&topo, a, b).expect("fat-tree is connected");
        picks.push((path, rng.range_u64(1 << 10, 1 << 24)));
    }

    // Identical start/remove sequence through both engines. The rate
    // probe at the end of each pass both defeats dead-code elimination
    // and cross-checks that the engines agree.
    let run_incremental = || -> (f64, f64) {
        let mut net = FlowNetwork::new(&topo);
        let mut live = std::collections::VecDeque::with_capacity(CAP + 1);
        let mut probe = 0.0;
        let t0 = Instant::now();
        for (path, bytes) in &picks {
            if let Some(id) = net.start(SimTime::ZERO, path, *bytes) {
                live.push_back(id);
            }
            if live.len() > CAP {
                let id = live.pop_front().expect("nonempty");
                probe += net.rate(id).expect("live flow");
                net.remove(SimTime::ZERO, id);
            }
        }
        while let Some(id) = live.pop_front() {
            probe += net.rate(id).expect("live flow");
            net.remove(SimTime::ZERO, id);
        }
        (ms(t0), probe)
    };
    let run_seed = || -> (f64, f64) {
        let mut net = seed_flow::FlowNetwork::new(&topo);
        let mut live = std::collections::VecDeque::with_capacity(CAP + 1);
        let mut probe = 0.0;
        let t0 = Instant::now();
        for (path, bytes) in &picks {
            if let Some(id) = net.start(SimTime::ZERO, path, *bytes) {
                live.push_back(id);
            }
            if live.len() > CAP {
                let id = live.pop_front().expect("nonempty");
                probe += net.rate(id).expect("live flow");
                net.remove(SimTime::ZERO, id);
            }
        }
        while let Some(id) = live.pop_front() {
            probe += net.rate(id).expect("live flow");
            net.remove(SimTime::ZERO, id);
        }
        (ms(t0), probe)
    };

    let (incremental_ms, got) = run_incremental();
    let (seed_ms, want) = run_seed();
    assert!(
        (got - want).abs() <= 1e-6 * want.abs(),
        "engines disagree: incremental rate sum {got} vs seed {want}"
    );
    json!({
        "nodes": topo.node_count(),
        "links": topo.link_count(),
        "flows": FLOWS,
        "max_concurrent": CAP,
        "seed_ms": seed_ms,
        "incremental_ms": incremental_ms,
        "speedup": seed_ms / incremental_ms,
    })
}

/// HEFT placement + simulation over a ~500-node continuum: exercises the
/// sweep-line `DeviceTimeline` peak-usage queries on a large fleet.
fn bench_heft_sweep() -> serde_json::Value {
    let spec = ContinuumSpec {
        fogs: 8,
        edges_per_fog: 8,
        sensors_per_edge: 7, // 448 + 64 + 8 + 4 + 2 = 526 nodes
        ..ContinuumSpec::default()
    };
    let built = continuum_net::continuum(&spec);
    let fleet = standard_fleet(&built);
    let world = Continuum::from_parts(built.clone(), fleet);
    let mut rng = Rng::new(0x4EF7);
    let dags: Vec<Dag> = built
        .edges
        .iter()
        .take(16)
        .map(|&e| {
            layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 40,
                    width: 8,
                    source: e,
                    min_mem_bytes: 0,
                    ..Default::default()
                },
            )
        })
        .collect();
    let tasks: usize = dags.iter().map(|d| d.tasks().len()).sum();
    let total_ms = best_of(2, || {
        for dag in &dags {
            std::hint::black_box(world.run(dag, &HeftPlacer::default()));
        }
    });
    json!({
        "nodes": built.topology.node_count(),
        "dags": dags.len(),
        "tasks": tasks,
        "total_ms": total_ms,
        "ms_per_task": total_ms / tasks as f64,
    })
}

fn main() {
    eprintln!("hotpaths: route-table build ...");
    let route_table = bench_route_table();
    eprintln!("hotpaths: 10k-flow churn ...");
    let churn = bench_flow_churn();
    eprintln!("hotpaths: HEFT sweep ...");
    let heft = bench_heft_sweep();
    let out = json!({
        "bench": "hotpaths",
        "command": "cargo run --release -p continuum-bench --bin hotpaths",
        "threads": rayon::current_num_threads(),
        "route_table_build_1000": route_table,
        "flow_churn_10k": churn,
        "heft_sweep_500": heft,
        "notes": [
            "seed_ms runs the pre-overhaul engine (vendored in this binary) end-to-end over \
             the identical start/remove sequence; both engines' rate sums are cross-checked.",
            "route-table serial/parallel parity is expected when threads == 1; the rayon \
             split is across source nodes and scales with cores.",
        ],
    });
    let rendered = serde_json::to_string_pretty(&out).expect("render json");
    std::fs::write("BENCH_hotpaths.json", &rendered).expect("write BENCH_hotpaths.json");
    println!("{rendered}");
}
