//! Regenerate every table and figure of the reproduction.
//!
//! ```sh
//! cargo run --release -p continuum-bench --bin experiments            # all
//! cargo run --release -p continuum-bench --bin experiments -- f1 f4  # some
//! cargo run --release -p continuum-bench --bin experiments -- --json f1
//! ```

use continuum_bench::experiments as exp;
use continuum_bench::Table;

struct Args {
    json: bool,
    which: Vec<String>,
}

fn parse_args() -> Args {
    let mut json = false;
    let mut which = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--json] [t1 t4 t5 f1 f2 f3 f4 f5 f6 t2 f7 t3 f8 f9 f10 f11 f12 f13 f14 ablations]"
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    Args { json, which }
}

fn emit(args: &Args, tables: &[Table], json_rows: serde_json::Value) {
    if args.json {
        println!("{json_rows}");
    } else {
        for t in tables {
            println!("{}", t.render());
        }
    }
}

fn main() {
    let args = parse_args();
    let all = [
        "t1",
        "t4",
        "t5",
        "f1",
        "f2",
        "f3",
        "f4",
        "f5",
        "f6",
        "t2",
        "f7",
        "t3",
        "f8",
        "f9",
        "f10",
        "f11",
        "f12",
        "f13",
        "f14",
        "ablations",
    ];
    let which: Vec<&str> = if args.which.is_empty() {
        all.to_vec()
    } else {
        args.which.iter().map(String::as_str).collect()
    };

    for w in which {
        match w {
            "t1" => {
                let t = exp::t1::run();
                emit(
                    &args,
                    std::slice::from_ref(&t),
                    serde_json::json!({"id": "t1"}),
                );
            }
            "t4" => {
                let (t, rows) = exp::t4::run();
                emit(&args, &[t], serde_json::json!({"id": "t4", "rows": rows}));
            }
            "t5" => {
                let (t, rows) = exp::t5::run();
                emit(&args, &[t], serde_json::json!({"id": "t5", "rows": rows}));
            }
            "f1" => {
                let (t, rows) = exp::f1::run();
                emit(&args, &[t], serde_json::json!({"id": "f1", "rows": rows}));
            }
            "f2" => {
                let (t, rows) = exp::f2::run();
                emit(&args, &[t], serde_json::json!({"id": "f2", "rows": rows}));
            }
            "f3" => {
                let (t, rows) = exp::f3::run();
                emit(&args, &[t], serde_json::json!({"id": "f3", "rows": rows}));
            }
            "f4" => {
                let (t, rows) = exp::f4::run();
                emit(&args, &[t], serde_json::json!({"id": "f4", "rows": rows}));
            }
            "f5" => {
                let (ts, rows) = exp::f5::run();
                emit(&args, &ts, serde_json::json!({"id": "f5", "rows": rows}));
            }
            "f6" => {
                let (t, rows) = exp::f6::run();
                emit(&args, &[t], serde_json::json!({"id": "f6", "rows": rows}));
            }
            "t2" => {
                let (t, rows) = exp::t2::run();
                emit(&args, &[t], serde_json::json!({"id": "t2", "rows": rows}));
            }
            "f7" => {
                let (t, rows) = exp::f7::run();
                emit(&args, &[t], serde_json::json!({"id": "f7", "rows": rows}));
            }
            "t3" => {
                let (t, rows) = exp::t3::run();
                emit(&args, &[t], serde_json::json!({"id": "t3", "rows": rows}));
            }
            "f8" => {
                let (t, rows) = exp::f8::run();
                emit(&args, &[t], serde_json::json!({"id": "f8", "rows": rows}));
            }
            "f9" => {
                let (t, rows) = exp::f9::run();
                emit(&args, &[t], serde_json::json!({"id": "f9", "rows": rows}));
            }
            "f10" => {
                let (t, rows) = exp::f10::run();
                emit(&args, &[t], serde_json::json!({"id": "f10", "rows": rows}));
            }
            "f11" => {
                let (t, rows) = exp::f11::run();
                emit(&args, &[t], serde_json::json!({"id": "f11", "rows": rows}));
            }
            "f12" => {
                let (t, rows) = exp::f12::run();
                emit(&args, &[t], serde_json::json!({"id": "f12", "rows": rows}));
            }
            "f13" => {
                let (t, rows) = exp::f13::run();
                emit(&args, &[t], serde_json::json!({"id": "f13", "rows": rows}));
            }
            "f14" => {
                let (t, rows) = exp::f14::run();
                emit(&args, &[t], serde_json::json!({"id": "f14", "rows": rows}));
            }
            "ablations" => {
                let (ts, rows) = exp::ablations::run();
                emit(
                    &args,
                    &ts,
                    serde_json::json!({"id": "ablations", "rows": rows}),
                );
            }
            other => {
                eprintln!("unknown experiment '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
}
