//! Regenerate every table and figure of the reproduction.
//!
//! ```sh
//! cargo run --release -p continuum-bench --bin experiments            # all
//! cargo run --release -p continuum-bench --bin experiments -- f1 f4  # some
//! cargo run --release -p continuum-bench --bin experiments -- --json f1
//! cargo run --release -p continuum-bench --bin experiments -- --serial
//! ```
//!
//! Cells are independent — each seeds its own RNGs from fixed constants —
//! so the suite fans out across rayon workers and a cell's output is
//! bit-identical whether it ran alone, serially, or in parallel. Results
//! are collected and emitted in request order regardless of which cell
//! finished first. `--serial` forces one-at-a-time execution; use it when
//! timing an individual cell (under the parallel driver, cells that
//! measure their own wall-clock — F5's thread-scaling sweep — contend
//! with sibling cells for cores).

use continuum_bench::experiments as exp;
use continuum_bench::Table;
use continuum_obs::{MetricsSnapshot, Telemetry, TraceEvent, Tracer};
use std::rc::Rc;
use std::time::Instant;

/// Every cell, in canonical emission order.
const ALL: [&str; 22] = [
    "t1",
    "t4",
    "t5",
    "f1",
    "f2",
    "f3",
    "f4",
    "f5",
    "f6",
    "t2",
    "f7",
    "t3",
    "f8",
    "f9",
    "f10",
    "f11",
    "f12",
    "f13",
    "f14",
    "f15",
    "f16",
    "ablations",
];

struct Args {
    json: bool,
    serial: bool,
    metrics: bool,
    trace: Option<String>,
    which: Vec<String>,
}

fn parse_args() -> Args {
    let mut json = false;
    let mut serial = false;
    let mut metrics = false;
    let mut trace = None;
    let mut which = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => json = true,
            "--serial" => serial = true,
            "--metrics" => metrics = true,
            // Shrink load-sweep cells (F15) so CI smoke runs stay fast.
            // Set before any cell runs; cells read it lazily per run.
            "--smoke" => std::env::set_var("CONTINUUM_SMOKE", "1"),
            "--trace" => {
                trace = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--json] [--serial] [--metrics] [--smoke] [--trace FILE] [{}]",
                    ALL.join(" ")
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    Args {
        json,
        serial,
        metrics,
        trace,
        which,
    }
}

/// Run one named cell to completion, returning its rendered tables and
/// JSON row dump. Panics on unknown names — `main` validates them first.
fn run_one(name: &str) -> (Vec<Table>, serde_json::Value) {
    use serde_json::json;
    match name {
        "t1" => (vec![exp::t1::run()], json!({"id": "t1"})),
        "t4" => {
            let (t, rows) = exp::t4::run();
            (vec![t], json!({"id": "t4", "rows": rows}))
        }
        "t5" => {
            let (t, rows) = exp::t5::run();
            (vec![t], json!({"id": "t5", "rows": rows}))
        }
        "f1" => {
            let (t, rows) = exp::f1::run();
            (vec![t], json!({"id": "f1", "rows": rows}))
        }
        "f2" => {
            let (t, rows) = exp::f2::run();
            (vec![t], json!({"id": "f2", "rows": rows}))
        }
        "f3" => {
            let (t, rows) = exp::f3::run();
            (vec![t], json!({"id": "f3", "rows": rows}))
        }
        "f4" => {
            let (t, rows) = exp::f4::run();
            (vec![t], json!({"id": "f4", "rows": rows}))
        }
        "f5" => {
            let (ts, rows) = exp::f5::run();
            (ts, json!({"id": "f5", "rows": rows}))
        }
        "f6" => {
            let (t, rows) = exp::f6::run();
            (vec![t], json!({"id": "f6", "rows": rows}))
        }
        "t2" => {
            let (t, rows) = exp::t2::run();
            (vec![t], json!({"id": "t2", "rows": rows}))
        }
        "f7" => {
            let (t, rows) = exp::f7::run();
            (vec![t], json!({"id": "f7", "rows": rows}))
        }
        "t3" => {
            let (t, rows) = exp::t3::run();
            (vec![t], json!({"id": "t3", "rows": rows}))
        }
        "f8" => {
            let (t, rows) = exp::f8::run();
            (vec![t], json!({"id": "f8", "rows": rows}))
        }
        "f9" => {
            let (t, rows) = exp::f9::run();
            (vec![t], json!({"id": "f9", "rows": rows}))
        }
        "f10" => {
            let (t, rows) = exp::f10::run();
            (vec![t], json!({"id": "f10", "rows": rows}))
        }
        "f11" => {
            let (t, rows) = exp::f11::run();
            (vec![t], json!({"id": "f11", "rows": rows}))
        }
        "f12" => {
            let (t, rows) = exp::f12::run();
            (vec![t], json!({"id": "f12", "rows": rows}))
        }
        "f13" => {
            let (t, rows) = exp::f13::run();
            (vec![t], json!({"id": "f13", "rows": rows}))
        }
        "f14" => {
            let (t, rows) = exp::f14::run();
            (vec![t], json!({"id": "f14", "rows": rows}))
        }
        "f15" => {
            let (t, rows) = exp::f15::run();
            (vec![t], json!({"id": "f15", "rows": rows}))
        }
        "f16" => {
            let (t, rows) = exp::f16::run();
            (vec![t], json!({"id": "f16", "rows": rows}))
        }
        "ablations" => {
            let (ts, rows) = exp::ablations::run();
            (ts, json!({"id": "ablations", "rows": rows}))
        }
        other => unreachable!("cell '{other}' passed validation but has no runner"),
    }
}

/// Telemetry harvested from one cell after it returns. Both halves are
/// plain owned data (`Send`), so cells run under rayon and still carry
/// their telemetry back to the ordered emitter on the main thread.
struct CellTelemetry {
    metrics: MetricsSnapshot,
    events: Vec<TraceEvent>,
}

/// [`run_one`] with an optional ambient telemetry plane. Each cell gets
/// its own [`Telemetry`] (pid = cell index + 1, so merged traces keep the
/// cells apart) created *inside* the rayon closure; after the cell
/// returns, the sole `Rc` is unwrapped and the snapshot + trace events
/// travel back as plain data. With both flags off this is exactly
/// [`run_one`] — no registry, no ambient lookup in any hot loop.
fn run_cell(
    name: &str,
    pid: u32,
    metrics: bool,
    trace: bool,
) -> (Vec<Table>, serde_json::Value, Option<CellTelemetry>) {
    if !metrics && !trace {
        let (tables, rows) = run_one(name);
        return (tables, rows, None);
    }
    let tele = Rc::new(Telemetry::with_pid(trace, pid));
    let (tables, mut rows) = continuum_obs::with_ambient(&tele, || run_one(name));
    let Ok(tele) = Rc::try_unwrap(tele) else {
        unreachable!("ambient guard dropped; no other Rc clones remain")
    };
    let snap = tele.metrics.snapshot();
    if metrics {
        if let serde_json::Value::Object(pairs) = &mut rows {
            pairs.push(("metrics".to_string(), serde::Serialize::to_value(&snap)));
        }
    }
    let mut events = tele.tracer.into_events();
    if trace {
        let marker = Tracer::new();
        marker.process_name(pid, format!("cell {name}"));
        events.extend(marker.into_events());
    }
    (
        tables,
        rows,
        Some(CellTelemetry {
            metrics: snap,
            events,
        }),
    )
}

fn emit(args: &Args, tables: &[Table], json_rows: &serde_json::Value) {
    if args.json {
        println!("{json_rows}");
    } else {
        for t in tables {
            println!("{}", t.render());
        }
    }
}

fn main() {
    let args = parse_args();
    let which: Vec<&str> = if args.which.is_empty() {
        ALL.to_vec()
    } else {
        args.which.iter().map(String::as_str).collect()
    };
    // Validate every requested name before running anything: a typo at
    // position N shouldn't cost the wall-clock of cells 0..N first.
    for w in &which {
        if !ALL.contains(w) {
            eprintln!("unknown experiment '{w}' (try --help)");
            std::process::exit(2);
        }
    }

    // `CONTINUUM_EXPERIMENT_THREADS` overrides the worker count — handy
    // for forcing the fan-out on boxes where `available_parallelism` is
    // pinned to 1, or throttling it on shared CI runners.
    let pool = std::env::var("CONTINUUM_EXPERIMENT_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n.max(1))
                .build()
                .expect("rayon pool")
        });
    let threads = pool
        .as_ref()
        .map_or_else(rayon::current_num_threads, |p| p.current_num_threads());
    let parallel = !args.serial && threads > 1 && which.len() > 1;
    let (want_metrics, want_trace) = (args.metrics, args.trace.is_some());
    let t0 = Instant::now();
    let indexed: Vec<(usize, &str)> = which.iter().copied().enumerate().collect();
    let fan_out = || -> Vec<(Vec<Table>, serde_json::Value, Option<CellTelemetry>)> {
        use rayon::prelude::*;
        indexed
            .par_iter()
            .map(|&(i, w)| run_cell(w, i as u32 + 1, want_metrics, want_trace))
            .collect()
    };
    let results: Vec<(Vec<Table>, serde_json::Value, Option<CellTelemetry>)> = if !parallel {
        which
            .iter()
            .enumerate()
            .map(|(i, w)| run_cell(w, i as u32 + 1, want_metrics, want_trace))
            .collect()
    } else if let Some(pool) = &pool {
        pool.install(fan_out)
    } else {
        fan_out()
    };
    let n_cells = results.len();
    for (tables, rows, _) in &results {
        emit(&args, tables, rows);
    }
    if want_metrics || want_trace {
        let mut total = MetricsSnapshot::default();
        let merged = Tracer::new();
        for (_, _, tele) in results {
            if let Some(t) = tele {
                total.merge(&t.metrics);
                merged.absorb_events(t.events);
            }
        }
        if want_metrics && !args.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&total).expect("metrics serialize")
            );
        }
        if let Some(path) = &args.trace {
            std::fs::write(path, merged.export_string())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("trace: {path} ({} events)", merged.len());
        }
    }
    eprintln!(
        "experiments: {} cell(s) in {:.1}s ({} on {} thread(s))",
        n_cells,
        t0.elapsed().as_secs_f64(),
        if parallel { "parallel" } else { "serial" },
        if parallel { threads } else { 1 },
    );
}
