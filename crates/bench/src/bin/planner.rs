//! planner — microbenchmarks for the planner hot-path overhaul.
//!
//! Measures (1) the HEFT placement sweep from the hotpaths bench (same
//! shape and seeds, so `ms_per_task` is directly comparable to the
//! committed `BENCH_hotpaths.json` baseline), now running on the cached
//! transfer matrix and the single-sweep `earliest_slot`; (2) the
//! annealing move loop three ways — the seed-era engine (vendored in
//! this binary: full replay per move with per-probe route walks and
//! quadratic slot scans), the current full-recompute oracle, and
//! delta-cost scoring — with all three placements cross-checked for
//! equality; (3) an
//! `earliest_slot` micro on a deep timeline, sweep vs the seed's
//! candidate scan; and (4) the HEFT candidate scan, parallel vs serial.
//!
//! Writes `BENCH_planner.json` in the current directory; run from the
//! workspace root:
//!
//! ```text
//! cargo run --release -p continuum-bench --bin planner
//! ```
//!
//! `--smoke` shrinks every section so CI can assert the binary works and
//! the JSON is emitted without paying the full measurement cost.

use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_net::ContinuumSpec;
use continuum_placement::{metrics_from_parts, DeviceTimeline, Env, WeightedObjective};
use continuum_sim::{Rng, SimDuration, SimTime};
use serde_json::json;
use std::time::Instant;

/// `ms_per_task` of the `heft_sweep_500` section in the committed
/// `BENCH_hotpaths.json` (recorded before this overhaul), the comparison
/// point for the sweep below.
const HOTPATHS_BASELINE_MS_PER_TASK: f64 = 0.0775;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`n` wall time of `f`, in milliseconds.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            ms(t0)
        })
        .fold(f64::INFINITY, f64::min)
}

/// The ~500-node HEFT sweep from the hotpaths bench, byte-for-byte the
/// same workload (spec, seeds, DAG shapes), so `ms_per_task` tracks the
/// planner's end-to-end trajectory across PRs.
fn bench_heft_sweep(smoke: bool) -> serde_json::Value {
    let spec = ContinuumSpec {
        fogs: 8,
        edges_per_fog: 8,
        sensors_per_edge: 7, // 448 + 64 + 8 + 4 + 2 = 526 nodes
        ..ContinuumSpec::default()
    };
    let built = continuum_net::continuum(&spec);
    let fleet = standard_fleet(&built);
    let world = Continuum::from_parts(built.clone(), fleet);
    let n_dags = if smoke { 4 } else { 16 };
    let mut rng = Rng::new(0x4EF7);
    let dags: Vec<Dag> = built
        .edges
        .iter()
        .take(n_dags)
        .map(|&e| {
            layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 40,
                    width: 8,
                    source: e,
                    min_mem_bytes: 0,
                    ..Default::default()
                },
            )
        })
        .collect();
    let tasks: usize = dags.iter().map(|d| d.tasks().len()).sum();
    let total_ms = best_of(if smoke { 1 } else { 2 }, || {
        for dag in &dags {
            std::hint::black_box(world.run(dag, &HeftPlacer::default()));
        }
    });
    let ms_per_task = total_ms / tasks as f64;
    json!({
        "nodes": built.topology.node_count(),
        "dags": dags.len(),
        "tasks": tasks,
        "total_ms": total_ms,
        "ms_per_task": ms_per_task,
        "hotpaths_baseline_ms_per_task": HOTPATHS_BASELINE_MS_PER_TASK,
        "speedup_vs_hotpaths": HOTPATHS_BASELINE_MS_PER_TASK / ms_per_task,
    })
}

/// Pre-overhaul move scoring, vendored for the before/after comparison
/// (the hotpaths bench does the same for the flow engine): replay the
/// whole DAG with a per-probe route materialization (no transfer matrix)
/// and the seed's quadratic candidate-scan slot search. Slow only in
/// *how* it computes — the schedule it produces is identical.
fn seed_replay(env: &Env, dag: &Dag, order: &[TaskId], assignment: &[DeviceId]) -> Metrics {
    let n = dag.len();
    let mut start = vec![SimTime::ZERO; n];
    let mut finish = vec![SimTime::ZERO; n];
    let mut timelines: Vec<DeviceTimeline> = (0..env.fleet.len())
        .map(|i| DeviceTimeline::new(env.fleet.device(DeviceId(i as u32)).spec.cores))
        .collect();
    for &t in order {
        let ti = t.0 as usize;
        let dev = assignment[ti];
        let node = env.node_of(dev);
        let task = dag.task(t);
        let mut ready = SimTime::ZERO;
        for &d in &task.inputs {
            let item = dag.data(d);
            let (src, avail) = match dag.producer(d) {
                None => (item.home.expect("external item has a home"), SimTime::ZERO),
                Some(p) => (env.node_of(assignment[p.0 as usize]), finish[p.0 as usize]),
            };
            let arrival = env
                .path(src, node)
                .expect("connected topology")
                .arrival(avail, item.bytes);
            ready = ready.max(arrival);
        }
        let spec = &env.fleet.device(dev).spec;
        let dur = spec.compute_time_parallel(task.work_flops, task.parallelism);
        let need = task.occupancy(spec.cores);
        let tl = &mut timelines[dev.0 as usize];
        let s = tl.earliest_slot_scan(ready, dur, need, true);
        tl.reserve(s, dur, need);
        start[ti] = s;
        finish[ti] = s + dur;
    }
    metrics_from_parts(env, dag, assignment, &start, &finish)
}

/// The seed-era annealing loop: identical RNG stream, cooling schedule,
/// and Metropolis rule as [`AnnealingPlacer`], but every move is scored
/// by [`seed_replay`]. Returns the same placement the in-crate annealer
/// finds (asserted by the caller).
fn seed_anneal(
    env: &Env,
    dag: &Dag,
    objective: &WeightedObjective,
    iters: u32,
    restarts: u32,
    base_seed: u64,
) -> Placement {
    let init = HeftPlacer::default().place(env, dag);
    let order = dag.topo_order();
    let mut results: Vec<(u32, Placement, f64)> = Vec::new();
    for i in 0..restarts {
        let mut rng = Rng::new(base_seed.wrapping_add(i as u64));
        let mut cur = init.clone();
        let mut cur_score = objective.score(&seed_replay(env, dag, &order, &cur.assignment));
        let mut best = cur.clone();
        let mut best_score = cur_score;
        let t0 = (cur_score * 0.10).max(f64::MIN_POSITIVE);
        let t_end = (cur_score * 1e-4).max(f64::MIN_POSITIVE);
        let alpha = (t_end / t0).powf(1.0 / iters.max(1) as f64);
        let mut temp = t0;
        let movable: Vec<u32> = dag
            .tasks()
            .iter()
            .filter(|t| t.constraints.pinned_node.is_none())
            .map(|t| t.id.0)
            .collect();
        for _ in 0..iters {
            let ti = movable[rng.index(movable.len())];
            let task = dag.task(TaskId(ti));
            let feas = env.feasible_devices(task);
            let new_dev = *rng.choose(&feas);
            let old_dev = cur.assignment[ti as usize];
            if new_dev == old_dev {
                temp *= alpha;
                continue;
            }
            cur.assignment[ti as usize] = new_dev;
            let score = objective.score(&seed_replay(env, dag, &order, &cur.assignment));
            let accept = score <= cur_score || rng.f64() < ((cur_score - score) / temp).exp();
            if accept {
                cur_score = score;
                if score < best_score {
                    best_score = score;
                    best = cur.clone();
                }
            } else {
                cur.assignment[ti as usize] = old_dev;
            }
            temp *= alpha;
        }
        results.push((i, best, best_score));
    }
    results
        .into_iter()
        .min_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .expect("NaN score")
                .then(a.0.cmp(&b.0))
        })
        .map(|(_, p, _)| p)
        .expect("at least one restart")
}

/// The annealing move loop, three ways on identical trajectories: the
/// seed-era engine (clone + full replay with per-probe route walks and
/// quadratic slot scans), the current full-recompute oracle (replay on
/// the transfer matrix and sweep slots), and delta-cost scoring. All
/// three final placements are asserted equal — the speedup is not bought
/// with a different search trajectory.
fn bench_anneal_moves(smoke: bool) -> serde_json::Value {
    let spec = ContinuumSpec {
        fogs: 8,
        edges_per_fog: 8,
        sensors_per_edge: 7,
        ..ContinuumSpec::default()
    };
    let built = continuum_net::continuum(&spec);
    let env = Env::new(built.topology.clone(), standard_fleet(&built));
    let mut rng = Rng::new(0xA11);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: if smoke { 20 } else { 300 },
            // Wide, shallow stages: a move's downstream ripple cone stays
            // a fraction of the DAG, which is the locality delta scoring
            // exploits.
            width: 200,
            source: built.edges[0],
            min_mem_bytes: 0,
            // Data-heavy items (~100 MB median): enough gravity that HEFT
            // spreads work across the continuum instead of piling it all
            // onto the two cloud VMs, so device suffixes stay short too.
            bytes_mu: (1e8f64).ln(),
            ..Default::default()
        },
    );
    let delta = AnnealingPlacer {
        iters: if smoke { 40 } else { 600 },
        restarts: 2,
        // Cost-aware Pareto point (the F6 sweep regime).
        objective: WeightedObjective {
            w_time: 1.0,
            w_energy: 2.0,
            w_cost: 200.0,
        },
        ..Default::default()
    };
    let oracle = AnnealingPlacer {
        full_recompute: true,
        ..delta.clone()
    };
    let p_delta = delta.place(&env, &dag);
    let p_oracle = oracle.place(&env, &dag);
    let p_seed = seed_anneal(
        &env,
        &dag,
        &delta.objective,
        delta.iters,
        delta.restarts,
        delta.seed,
    );
    assert_eq!(
        p_delta, p_oracle,
        "delta and full-recompute anneal diverged"
    );
    assert_eq!(p_delta, p_seed, "delta and seed-era anneal diverged");
    let reps = if smoke { 1 } else { 2 };
    let delta_ms = best_of(reps, || delta.place(&env, &dag));
    let oracle_ms = best_of(reps, || oracle.place(&env, &dag));
    let seed_ms = best_of(reps, || {
        seed_anneal(
            &env,
            &dag,
            &delta.objective,
            delta.iters,
            delta.restarts,
            delta.seed,
        )
    });
    let moves = (delta.iters * delta.restarts) as f64;
    json!({
        "tasks": dag.len(),
        "iters": delta.iters,
        "restarts": delta.restarts,
        "seed_style_ms": seed_ms,
        "full_recompute_ms": oracle_ms,
        "delta_ms": delta_ms,
        "seed_us_per_move": seed_ms * 1e3 / moves,
        "full_us_per_move": oracle_ms * 1e3 / moves,
        "delta_us_per_move": delta_ms * 1e3 / moves,
        "speedup": seed_ms / delta_ms,
        "speedup_vs_full_recompute": oracle_ms / delta_ms,
    })
}

/// `earliest_slot` on a deep timeline: the single-sweep search vs the
/// seed's candidate × peak-scan probe, identical answers asserted.
fn bench_earliest_slot(smoke: bool) -> serde_json::Value {
    let reservations = if smoke { 200 } else { 2000 };
    let queries = if smoke { 500 } else { 5000 };
    let mut tl = DeviceTimeline::new(8);
    let mut rng = Rng::new(0x5107);
    for _ in 0..reservations {
        let ready = SimTime::from_millis(rng.range_u64(0, 60_000));
        let dur = SimDuration::from_millis(rng.range_u64(1, 400));
        let need = 1 + (rng.index(3) as u32);
        let s = tl.earliest_slot(ready, dur, need, true);
        tl.reserve(s, dur, need);
    }
    let probes: Vec<(SimTime, SimDuration, u32, bool)> = (0..queries)
        .map(|_| {
            (
                SimTime::from_millis(rng.range_u64(0, 70_000)),
                SimDuration::from_millis(rng.range_u64(1, 400)),
                1 + (rng.index(3) as u32),
                rng.index(2) == 0,
            )
        })
        .collect();
    for &(ready, dur, need, ins) in &probes {
        assert_eq!(
            tl.earliest_slot(ready, dur, need, ins),
            tl.earliest_slot_scan(ready, dur, need, ins),
            "sweep and scan disagree"
        );
    }
    let reps = if smoke { 1 } else { 3 };
    let sweep_ms = best_of(reps, || {
        for &(ready, dur, need, ins) in &probes {
            std::hint::black_box(tl.earliest_slot(ready, dur, need, ins));
        }
    });
    let scan_ms = best_of(reps, || {
        for &(ready, dur, need, ins) in &probes {
            std::hint::black_box(tl.earliest_slot_scan(ready, dur, need, ins));
        }
    });
    json!({
        "reservations": reservations,
        "queries": queries,
        "scan_ms": scan_ms,
        "sweep_ms": sweep_ms,
        "speedup": scan_ms / sweep_ms,
    })
}

/// HEFT with parallel vs serial candidate scans on the big continuum
/// (hundreds of feasible devices per task). Parity is expected at
/// threads == 1; the split is across candidates and scales with cores.
fn bench_candidate_scan(smoke: bool) -> serde_json::Value {
    let spec = ContinuumSpec {
        fogs: 8,
        edges_per_fog: 8,
        sensors_per_edge: 7,
        ..ContinuumSpec::default()
    };
    let built = continuum_net::continuum(&spec);
    let env = Env::new(built.topology.clone(), standard_fleet(&built));
    let mut rng = Rng::new(0x5CA9);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: if smoke { 40 } else { 120 },
            width: 8,
            source: built.edges[0],
            min_mem_bytes: 0,
            ..Default::default()
        },
    );
    assert_eq!(
        HeftPlacer::default().place(&env, &dag),
        HeftPlacer::serial().place(&env, &dag),
        "parallel and serial scans diverged"
    );
    let reps = if smoke { 1 } else { 3 };
    let serial_ms = best_of(reps, || HeftPlacer::serial().place(&env, &dag));
    let parallel_ms = best_of(reps, || HeftPlacer::default().place(&env, &dag));
    json!({
        "devices": env.fleet.len(),
        "tasks": dag.len(),
        "serial_ms": serial_ms,
        "parallel_ms": parallel_ms,
        "speedup": serial_ms / parallel_ms,
        "threads": rayon::current_num_threads(),
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    eprintln!("planner: HEFT sweep ...");
    let heft = bench_heft_sweep(smoke);
    eprintln!("planner: anneal move loop ...");
    let anneal = bench_anneal_moves(smoke);
    eprintln!("planner: earliest_slot micro ...");
    let slot = bench_earliest_slot(smoke);
    eprintln!("planner: candidate scan ...");
    let scan = bench_candidate_scan(smoke);
    let out = json!({
        "bench": "planner",
        "command": "cargo run --release -p continuum-bench --bin planner",
        "smoke": smoke,
        "threads": rayon::current_num_threads(),
        "heft_sweep": heft,
        "anneal_moves": anneal,
        "earliest_slot": slot,
        "candidate_scan": scan,
        "notes": [
            "heft_sweep replays the exact hotpaths workload (same spec and seeds); \
             ms_per_task compares against the committed BENCH_hotpaths.json baseline.",
            "anneal_moves.seed_style_ms runs the pre-overhaul move loop (vendored in \
             this binary): full replay per move with per-probe route materialization \
             and the quadratic candidate-scan slot search. speedup is seed_style/delta; \
             speedup_vs_full_recompute isolates delta scoring against the current \
             (already matrix+sweep) full-replay oracle.",
            "anneal_moves cross-checks that all three arms — seed-style, full-recompute, \
             and delta — return identical placements before timing any of them.",
            "candidate_scan parity is expected when threads == 1; the rayon split is \
             across device candidates and scales with cores.",
        ],
    });
    let rendered = serde_json::to_string_pretty(&out).expect("render json");
    std::fs::write("BENCH_planner.json", &rendered).expect("write BENCH_planner.json");
    println!("{rendered}");
}
