//! The seed-era stream executor, vendored as an equivalence oracle.
//!
//! This is the pre-overhaul `simulate_stream_chaos` byte-for-byte in *how*
//! it computes — `HashMap<(DataId, NodeId), _>` item/waiter state touched
//! with hashed composite keys on every event, per-event `inputs.clone()` +
//! sort + dedup, and a fresh route computation (`path_ecmp` or Dijkstra
//! detour) per transfer with no caching. The `runtime` bench bin runs it
//! against the dense-state executor on identical workloads, asserts the
//! [`SimOutcome`]s bit-identical, and only then times both.
//!
//! Two deliberate deviations from the seed, both required for the
//! comparison to be meaningful (neither changes what the seed *computes*,
//! only a hash-order accident and a billing bug):
//!
//! - **Publish order**: the seed scanned `waiters.keys()` to find a
//!   finished task's consumer nodes — `HashMap` iteration order, so
//!   equal-latency deliveries tie-broke nondeterministically and f64
//!   egress sums could reassociate between runs. The oracle sorts the
//!   destinations by `NodeId`, which is the deterministic order the dense
//!   executor's `item_slots` lists maintain by construction.
//! - **Egress attribution**: the seed billed every transfer to
//!   `fleet.at_node(src).first()` — an arbitrary device at multi-device
//!   nodes. The oracle bills the device that actually sent the bytes
//!   (the finished producer's device), matching the fixed executor.

use continuum_model::{CostMeter, DeviceId, EnergyMeter};
use continuum_net::{shortest_path_avoiding, FlowId, FlowNetwork, LinkId, NodeId, Path};
use continuum_placement::{Env, Metrics, OnlinePlacer};
use continuum_runtime::{
    ExecutionTrace, FaultPlane, FaultSpec, SimOutcome, StreamRequest, TaskRecord,
};
use continuum_sim::{EventId, EventQueue, FaultKind, SimTime};
use continuum_workflow::{DataId, TaskId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    StartFlow {
        req: usize,
        item: DataId,
        dst: NodeId,
        bytes: u64,
    },
    FlowDone(FlowId),
    TaskFinished {
        req: usize,
        task: TaskId,
        epoch: u32,
    },
    RetryTask {
        req: usize,
        task: TaskId,
    },
    Fault(usize),
    OrphanSweep {
        dev: usize,
        gen: u32,
    },
}

#[inline]
fn xfer_salt(req: usize, item: DataId) -> u64 {
    ((req as u64) << 32) | (item.0 as u64) | (1 << 63)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemState {
    InFlight,
    Present,
}

struct ReqState {
    missing: Vec<u32>,
    unfinished: usize,
    /// Item presence per destination node — the seed's hashed composite
    /// key, re-hashed on every touch.
    items: HashMap<(DataId, NodeId), ItemState>,
    /// Tasks waiting on (item, node).
    waiters: HashMap<(DataId, NodeId), Vec<TaskId>>,
    started: Vec<bool>,
}

/// Uncached route choice: a fresh `path_ecmp` or Dijkstra detour per call.
fn route(
    env: &Env,
    src: NodeId,
    dst: NodeId,
    salt: u64,
    dead_links: &[bool],
    n_dead: usize,
) -> Option<Path> {
    if n_dead == 0 {
        env.path_ecmp(src, dst, salt)
    } else {
        shortest_path_avoiding(&env.topology, src, dst, dead_links)
    }
}

/// Counter-based fault draw, mirroring the dense executor's: a pure
/// function of `(seed, request, task, attempt)` so verdicts do not depend
/// on completion interleaving.
fn seed_fault_draw(
    fs: &continuum_runtime::FaultSpec,
    req: usize,
    task: TaskId,
    attempt: u32,
) -> bool {
    let mut seed = continuum_sim::Rng::new(fs.seed);
    let mut per_req = seed.split(req as u64);
    let mut per_task = per_req.split(u64::from(task.0));
    per_task.split(u64::from(attempt)).chance(fs.fail_prob)
}

/// The seed-era executor. Same contract as
/// [`continuum_runtime::simulate_stream_chaos`].
pub fn simulate_stream_chaos_seed(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
    plane: Option<&FaultPlane>,
) -> SimOutcome {
    if let Some(f) = faults {
        assert!(
            (0.0..1.0).contains(&f.fail_prob),
            "fail_prob must be in [0,1)"
        );
        assert!(f.max_attempts >= 1);
    }
    let mut attempts: HashMap<(usize, u32), u32> = HashMap::new();
    for r in requests {
        assert_eq!(
            r.placement.assignment.len(),
            r.dag.len(),
            "placement does not match dag '{}'",
            r.dag.name
        );
    }

    let n_dev = env.fleet.len();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut network = FlowNetwork::new(&env.topology);
    let mut free_cores: Vec<u32> = env.fleet.devices().iter().map(|d| d.spec.cores).collect();
    let mut device_q: Vec<VecDeque<(usize, TaskId)>> = vec![VecDeque::new(); n_dev];
    let mut flow_dest: HashMap<FlowId, (usize, DataId, NodeId)> = HashMap::new();
    let mut pending_completion: Option<(EventId, FlowId)> = None;

    let mut assign: Vec<Vec<DeviceId>> = requests
        .iter()
        .map(|r| r.placement.assignment.clone())
        .collect();
    let n_links = env.topology.links().len();
    let mut dev_up = vec![true; n_dev];
    let mut dev_known_down = vec![false; n_dev];
    let mut dev_gen = vec![0u32; n_dev];
    let mut running: Vec<Vec<(usize, TaskId, usize)>> = vec![Vec::new(); n_dev];
    let mut orphans: Vec<Vec<(usize, TaskId)>> = vec![Vec::new(); n_dev];
    let mut attempt_no: Vec<Vec<u32>> = requests.iter().map(|r| vec![0; r.dag.len()]).collect();
    let mut finished: Vec<Vec<bool>> = requests.iter().map(|r| vec![false; r.dag.len()]).collect();
    let mut parked: Vec<(usize, TaskId)> = Vec::new();
    let mut stalled: Vec<(usize, DataId, NodeId, u64)> = Vec::new();
    let mut dead_links = vec![false; n_links];
    let mut n_dead = 0usize;
    let mut placer = plane.map(|_| OnlinePlacer::continuum(env));

    let mut states: Vec<ReqState> = requests
        .iter()
        .map(|r| {
            let missing = r
                .dag
                .tasks()
                .iter()
                .map(|t| {
                    // The per-event clone + sort + dedup the dense
                    // executor's ReqPlan replaces.
                    let mut d: Vec<DataId> = t.inputs.clone();
                    d.sort_unstable();
                    d.dedup();
                    d.len() as u32
                })
                .collect();
            ReqState {
                missing,
                unfinished: r.dag.len(),
                items: HashMap::new(),
                waiters: HashMap::new(),
                started: vec![false; r.dag.len()],
            }
        })
        .collect();

    let mut trace = ExecutionTrace {
        request_arrival: requests.iter().map(|r| r.arrival).collect(),
        request_finish: vec![SimTime::ZERO; requests.len()],
        ..Default::default()
    };
    let mut egress_log: Vec<(Option<DeviceId>, u64)> = Vec::new();
    let mut energy = EnergyMeter::new(&env.fleet);
    let mut cost = CostMeter::new(&env.fleet);
    let mut lost_dev: Vec<f64> = vec![0.0; n_dev];

    for (i, r) in requests.iter().enumerate() {
        queue.schedule_at(r.arrival, Ev::Arrival(i));
    }
    if let Some(p) = plane {
        for (idx, fe) in p.schedule.events().iter().enumerate() {
            match fe.kind {
                FaultKind::DeviceCrash | FaultKind::DeviceRecover => assert!(
                    (fe.target as usize) < n_dev,
                    "fault schedule targets device {} but only {n_dev} exist",
                    fe.target
                ),
                FaultKind::LinkFail | FaultKind::LinkRestore => assert!(
                    (fe.target as usize) < n_links,
                    "fault schedule targets link {} but only {n_links} exist",
                    fe.target
                ),
                FaultKind::EndpointCrash | FaultKind::EndpointRecover => continue,
            }
            queue.schedule_at(fe.at, Ev::Fault(idx));
        }
    }

    while let Some((now, ev)) = queue.pop() {
        let mut made_present: Vec<(usize, DataId, NodeId)> = Vec::new();
        let mut dispatch_devices: Vec<usize> = Vec::new();
        let mut to_replace: Vec<(usize, TaskId)> = Vec::new();
        let mut network_changed = false;

        match ev {
            Ev::Arrival(req) => {
                let r = &requests[req];
                let mut to_deliver: Vec<(DataId, NodeId, NodeId)> = Vec::new();
                {
                    let st = &mut states[req];
                    for t in r.dag.tasks() {
                        let dst = env.node_of(assign[req][t.id.0 as usize]);
                        let mut ins = t.inputs.clone();
                        ins.sort_unstable();
                        ins.dedup();
                        for d in ins {
                            if r.dag.producer(d).is_none() {
                                let home = r
                                    .dag
                                    .data(d)
                                    .home
                                    .expect("validated dag: external has home");
                                match st.items.entry((d, dst)) {
                                    Entry::Occupied(_) => {}
                                    Entry::Vacant(v) => {
                                        v.insert(ItemState::InFlight);
                                        to_deliver.push((d, home, dst));
                                    }
                                }
                                st.waiters.entry((d, dst)).or_default().push(t.id);
                            } else {
                                st.waiters.entry((d, dst)).or_default().push(t.id);
                            }
                        }
                    }
                }
                for (d, src, dst) in to_deliver {
                    if src == dst {
                        made_present.push((req, d, dst));
                    } else {
                        let bytes = requests[req].dag.data(d).bytes;
                        egress_log.push((env.fleet.at_node(src).first().copied(), bytes));
                        match route(env, src, dst, xfer_salt(req, d), &dead_links, n_dead) {
                            Some(path) => {
                                queue.schedule_at(
                                    now + path.latency,
                                    Ev::StartFlow {
                                        req,
                                        item: d,
                                        dst,
                                        bytes,
                                    },
                                );
                            }
                            None => {
                                assert!(n_dead > 0, "disconnected topology");
                                stalled.push((req, d, dst, bytes));
                            }
                        }
                    }
                }
                for t in r.dag.tasks() {
                    if states[req].missing[t.id.0 as usize] == 0 {
                        let dev = assign[req][t.id.0 as usize];
                        if dev_known_down[dev.0 as usize] {
                            to_replace.push((req, t.id));
                        } else {
                            device_q[dev.0 as usize].push_back((req, t.id));
                            dispatch_devices.push(dev.0 as usize);
                        }
                    }
                }
            }
            Ev::StartFlow {
                req,
                item,
                dst,
                bytes,
            } => {
                let r = &requests[req];
                let src = match r.dag.producer(item) {
                    None => r.dag.data(item).home.expect("external item has home"),
                    Some(p) => env.node_of(assign[req][p.0 as usize]),
                };
                match route(env, src, dst, xfer_salt(req, item), &dead_links, n_dead) {
                    Some(path) => match network.start(now, &path, bytes) {
                        Some(fid) => {
                            flow_dest.insert(fid, (req, item, dst));
                            network_changed = true;
                        }
                        None => made_present.push((req, item, dst)),
                    },
                    None => {
                        assert!(n_dead > 0, "disconnected topology");
                        stalled.push((req, item, dst, bytes));
                    }
                }
            }
            Ev::FlowDone(fid) => {
                debug_assert_eq!(pending_completion.map(|(_, f)| f), Some(fid));
                pending_completion = None;
                network.remove(now, fid);
                let (req, item, dst) = flow_dest.remove(&fid).expect("unknown flow");
                made_present.push((req, item, dst));
                network_changed = true;
            }
            Ev::TaskFinished { req, task, epoch } => {
                if epoch != attempt_no[req][task.0 as usize] {
                    continue;
                }
                let r = &requests[req];
                let dev = assign[req][task.0 as usize];
                let spec = &env.fleet.device(dev).spec;
                let need = r.dag.task(task).occupancy(spec.cores);
                free_cores[dev.0 as usize] += need;
                let pos = running[dev.0 as usize]
                    .iter()
                    .position(|&(rq, t, _)| rq == req && t == task)
                    .expect("finished task is running");
                running[dev.0 as usize].swap_remove(pos);

                if let Some(fs) = faults {
                    let tries = attempts.entry((req, task.0)).or_insert(1);
                    if seed_fault_draw(fs, req, task, *tries) {
                        assert!(
                            *tries < fs.max_attempts,
                            "task {} of request {req} exhausted {} attempts",
                            task,
                            fs.max_attempts
                        );
                        *tries += 1;
                        trace.failed_attempts += 1;
                        states[req].started[task.0 as usize] = false;
                        queue.schedule_at(now + fs.retry_delay, Ev::RetryTask { req, task });
                        dispatch_devices.push(dev.0 as usize);
                        dispatch_devices.sort_unstable();
                        dispatch_devices.dedup();
                        for di in dispatch_devices.drain(..) {
                            dispatch_queue(
                                env,
                                requests,
                                &mut states,
                                &assign,
                                &attempt_no,
                                &mut running,
                                &mut device_q,
                                &mut free_cores,
                                &mut trace,
                                &mut energy,
                                &mut cost,
                                &mut queue,
                                di,
                                now,
                            );
                        }
                        continue;
                    }
                }

                finished[req][task.0 as usize] = true;
                let st = &mut states[req];
                st.unfinished -= 1;
                if st.unfinished == 0 {
                    trace.request_finish[req] = now;
                }
                let my_node = env.node_of(dev);
                let mut to_deliver: Vec<(DataId, NodeId)> = Vec::new();
                for &out in &r.dag.task(task).outputs {
                    // All nodes that registered interest in this item.
                    // Seed scanned waiters.keys() in hash order; sorted
                    // here (see module docs) to match the dense
                    // executor's NodeId-ordered item_slots.
                    let mut dests: Vec<NodeId> = st
                        .waiters
                        .keys()
                        .filter(|(d, _)| *d == out)
                        .map(|&(_, n)| n)
                        .collect();
                    dests.sort_unstable();
                    for dst in dests {
                        match st.items.entry((out, dst)) {
                            Entry::Occupied(_) => {}
                            Entry::Vacant(v) => {
                                v.insert(ItemState::InFlight);
                                to_deliver.push((out, dst));
                            }
                        }
                    }
                }
                for (d, dst) in to_deliver {
                    if dst == my_node {
                        made_present.push((req, d, dst));
                    } else {
                        let bytes = r.dag.data(d).bytes;
                        egress_log.push((Some(dev), bytes));
                        match route(env, my_node, dst, xfer_salt(req, d), &dead_links, n_dead) {
                            Some(path) => {
                                queue.schedule_at(
                                    now + path.latency,
                                    Ev::StartFlow {
                                        req,
                                        item: d,
                                        dst,
                                        bytes,
                                    },
                                );
                            }
                            None => {
                                assert!(n_dead > 0, "disconnected topology");
                                stalled.push((req, d, dst, bytes));
                            }
                        }
                    }
                }
            }
            Ev::RetryTask { req, task } => {
                let dev = assign[req][task.0 as usize];
                if dev_known_down[dev.0 as usize] {
                    to_replace.push((req, task));
                } else {
                    device_q[dev.0 as usize].push_back((req, task));
                    dispatch_devices.push(dev.0 as usize);
                }
            }
            Ev::Fault(idx) => {
                let fe = plane.expect("fault event implies plane").schedule.events()[idx];
                match fe.kind {
                    FaultKind::DeviceCrash => {
                        let d = fe.target as usize;
                        if dev_up[d] {
                            dev_up[d] = false;
                            dev_gen[d] += 1;
                            trace.device_crashes += 1;
                            for (rq, t, rec) in std::mem::take(&mut running[d]) {
                                let started_at = trace.records[rec].start;
                                trace.records[rec].finish = now;
                                lost_dev[d] += now.since(started_at).as_secs_f64();
                                trace.killed_attempts += 1;
                                attempt_no[rq][t.0 as usize] += 1;
                                states[rq].started[t.0 as usize] = false;
                                orphans[d].push((rq, t));
                            }
                            free_cores[d] = 0;
                            let det = plane.expect("checked above").detection;
                            queue.schedule_at(
                                now + det,
                                Ev::OrphanSweep {
                                    dev: d,
                                    gen: dev_gen[d],
                                },
                            );
                        }
                    }
                    FaultKind::DeviceRecover => {
                        let d = fe.target as usize;
                        if !dev_up[d] {
                            dev_up[d] = true;
                            dev_known_down[d] = false;
                            free_cores[d] = env.fleet.devices()[d].spec.cores;
                            for (rq, t) in std::mem::take(&mut orphans[d]) {
                                device_q[d].push_back((rq, t));
                            }
                            dispatch_devices.push(d);
                            to_replace.append(&mut parked);
                        }
                    }
                    FaultKind::LinkFail => {
                        let l = fe.target as usize;
                        if !dead_links[l] {
                            dead_links[l] = true;
                            n_dead += 1;
                            trace.link_failures += 1;
                            for a in network.fail_link(now, LinkId(l as u32)) {
                                let (rq, item, dst) =
                                    flow_dest.remove(&a.id).expect("aborted flow is tracked");
                                let rest = (a.remaining.ceil() as u64).max(1);
                                queue.schedule_at(
                                    now,
                                    Ev::StartFlow {
                                        req: rq,
                                        item,
                                        dst,
                                        bytes: rest,
                                    },
                                );
                            }
                            network_changed = true;
                        }
                    }
                    FaultKind::LinkRestore => {
                        let l = fe.target as usize;
                        if dead_links[l] {
                            dead_links[l] = false;
                            n_dead -= 1;
                            network.restore_link(now, LinkId(l as u32));
                            network_changed = true;
                            for (rq, item, dst, bytes) in std::mem::take(&mut stalled) {
                                queue.schedule_at(
                                    now,
                                    Ev::StartFlow {
                                        req: rq,
                                        item,
                                        dst,
                                        bytes,
                                    },
                                );
                            }
                        }
                    }
                    FaultKind::EndpointCrash | FaultKind::EndpointRecover => {
                        unreachable!("endpoint faults are not scheduled here")
                    }
                }
            }
            Ev::OrphanSweep { dev, gen } => {
                if !dev_up[dev] && dev_gen[dev] == gen {
                    dev_known_down[dev] = true;
                    to_replace.extend(std::mem::take(&mut orphans[dev]));
                    to_replace.extend(device_q[dev].drain(..));
                }
            }
        }

        while !made_present.is_empty() || !to_replace.is_empty() {
            for (req, item, node) in std::mem::take(&mut made_present) {
                let st = &mut states[req];
                st.items.insert((item, node), ItemState::Present);
                if let Some(waiters) = st.waiters.remove(&(item, node)) {
                    for t in waiters {
                        let dev = assign[req][t.0 as usize];
                        if env.node_of(dev) != node {
                            continue;
                        }
                        let m = &mut st.missing[t.0 as usize];
                        debug_assert!(*m > 0);
                        *m -= 1;
                        if *m == 0 {
                            if dev_known_down[dev.0 as usize] {
                                to_replace.push((req, t));
                            } else {
                                device_q[dev.0 as usize].push_back((req, t));
                                dispatch_devices.push(dev.0 as usize);
                            }
                        }
                    }
                }
            }
            for (req, task) in std::mem::take(&mut to_replace) {
                replace_task(
                    env,
                    requests,
                    &mut states,
                    &mut assign,
                    &finished,
                    placer.as_mut().expect("re-placement implies a fault plane"),
                    &dev_up,
                    &dead_links,
                    n_dead,
                    &mut queue,
                    &mut egress_log,
                    &mut stalled,
                    &mut parked,
                    &mut device_q,
                    &mut dispatch_devices,
                    &mut made_present,
                    &mut trace,
                    req,
                    task,
                    now,
                );
            }
        }

        if let Ev::TaskFinished { req, task, .. } = &ev {
            let dev = assign[*req][task.0 as usize];
            dispatch_devices.push(dev.0 as usize);
        }
        dispatch_devices.sort_unstable();
        dispatch_devices.dedup();
        for di in dispatch_devices {
            dispatch_queue(
                env,
                requests,
                &mut states,
                &assign,
                &attempt_no,
                &mut running,
                &mut device_q,
                &mut free_cores,
                &mut trace,
                &mut energy,
                &mut cost,
                &mut queue,
                di,
                now,
            );
        }

        if network_changed {
            if let Some((eid, _)) = pending_completion.take() {
                queue.cancel(eid);
            }
            if let Some((t, fid)) = network.next_completion() {
                let eid = queue.schedule_at(t.max(now), Ev::FlowDone(fid));
                pending_completion = Some((eid, fid));
            }
        }
    }

    for st in &states {
        assert_eq!(st.unfinished, 0, "deadlock: tasks never became ready");
    }

    let mut bytes_moved = 0u64;
    for &(dev, bytes) in &egress_log {
        bytes_moved += bytes;
        if let Some(dev) = dev {
            cost.record_egress(&env.fleet, dev, bytes);
        }
    }
    trace.bytes_moved = bytes_moved;
    trace.transfers = egress_log.len() as u64;
    // Mirror the dense executor's finalization: lost work summed in
    // device-id order, records in canonical order.
    trace.lost_work_s = lost_dev.iter().sum();
    trace.canonicalize();
    let makespan = trace.makespan();
    let metrics = Metrics {
        makespan_s: makespan.as_secs_f64(),
        energy_j: energy.used_devices_joules(&env.fleet, makespan),
        cost_usd: cost.total_usd(),
        bytes_moved,
    };
    SimOutcome {
        trace,
        metrics,
        telemetry: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_queue(
    env: &Env,
    requests: &[StreamRequest],
    states: &mut [ReqState],
    assign: &[Vec<DeviceId>],
    attempt_no: &[Vec<u32>],
    running: &mut [Vec<(usize, TaskId, usize)>],
    device_q: &mut [VecDeque<(usize, TaskId)>],
    free_cores: &mut [u32],
    trace: &mut ExecutionTrace,
    energy: &mut EnergyMeter,
    cost: &mut CostMeter,
    queue: &mut EventQueue<Ev>,
    di: usize,
    now: SimTime,
) {
    let spec = &env.fleet.devices()[di].spec;
    let mut i = 0;
    while i < device_q[di].len() {
        let (req, t) = device_q[di][i];
        let task = requests[req].dag.task(t);
        let need = task.occupancy(spec.cores);
        if need <= free_cores[di] && !states[req].started[t.0 as usize] {
            device_q[di].remove(i);
            free_cores[di] -= need;
            states[req].started[t.0 as usize] = true;
            let dur = spec.compute_time_parallel(task.work_flops, task.parallelism);
            let dev_id = assign[req][t.0 as usize];
            debug_assert_eq!(dev_id.0 as usize, di);
            running[di].push((req, t, trace.records.len()));
            trace.records.push(TaskRecord {
                request: req,
                task: t,
                device: dev_id,
                cores: need,
                start: now,
                finish: now + dur,
            });
            energy.record_busy(&env.fleet, dev_id, need, dur);
            cost.record_occupancy(&env.fleet, dev_id, need, dur);
            let epoch = attempt_no[req][t.0 as usize];
            queue.schedule_at(
                now + dur,
                Ev::TaskFinished {
                    req,
                    task: t,
                    epoch,
                },
            );
        } else {
            i += 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn replace_task(
    env: &Env,
    requests: &[StreamRequest],
    states: &mut [ReqState],
    assign: &mut [Vec<DeviceId>],
    finished: &[Vec<bool>],
    placer: &mut OnlinePlacer,
    dev_up: &[bool],
    dead_links: &[bool],
    n_dead: usize,
    queue: &mut EventQueue<Ev>,
    egress_log: &mut Vec<(Option<DeviceId>, u64)>,
    stalled: &mut Vec<(usize, DataId, NodeId, u64)>,
    parked: &mut Vec<(usize, TaskId)>,
    device_q: &mut [VecDeque<(usize, TaskId)>],
    dispatch_devices: &mut Vec<usize>,
    made_present: &mut Vec<(usize, DataId, NodeId)>,
    trace: &mut ExecutionTrace,
    req: usize,
    task: TaskId,
    now: SimTime,
) {
    let r = &requests[req];
    let t = r.dag.task(task);
    let mut ins: Vec<DataId> = t.inputs.clone();
    ins.sort_unstable();
    ins.dedup();
    let input_view: Vec<(NodeId, SimTime, u64)> = ins
        .iter()
        .map(|&d| {
            let item = r.dag.data(d);
            let src = match r.dag.producer(d) {
                None => item.home.expect("validated dag: external has home"),
                Some(p) => env.node_of(assign[req][p.0 as usize]),
            };
            (src, now, item.bytes)
        })
        .collect();
    let Some((dev, _fin)) = placer.place_task(env, t, &input_view, now, dev_up) else {
        parked.push((req, task));
        return;
    };
    assign[req][task.0 as usize] = dev;
    trace.replacements += 1;
    let dst = env.node_of(dev);
    let st = &mut states[req];
    let mut miss = 0u32;
    for &d in &ins {
        match st.items.get(&(d, dst)) {
            Some(ItemState::Present) => continue,
            Some(ItemState::InFlight) => {
                miss += 1;
                let w = st.waiters.entry((d, dst)).or_default();
                if !w.contains(&task) {
                    w.push(task);
                }
                continue;
            }
            None => {}
        }
        miss += 1;
        let w = st.waiters.entry((d, dst)).or_default();
        if !w.contains(&task) {
            w.push(task);
        }
        let fetch = match r.dag.producer(d) {
            None => {
                let home = r
                    .dag
                    .data(d)
                    .home
                    .expect("validated dag: external has home");
                Some((env.fleet.at_node(home).first().copied(), home))
            }
            Some(p) => finished[req][p.0 as usize].then(|| {
                let pdev = assign[req][p.0 as usize];
                (Some(pdev), env.node_of(pdev))
            }),
        };
        let Some((src_dev, src)) = fetch else {
            continue;
        };
        st.items.insert((d, dst), ItemState::InFlight);
        let bytes = r.dag.data(d).bytes;
        if src == dst {
            made_present.push((req, d, dst));
        } else {
            egress_log.push((src_dev, bytes));
            match route(env, src, dst, xfer_salt(req, d), dead_links, n_dead) {
                Some(path) => {
                    queue.schedule_at(
                        now + path.latency,
                        Ev::StartFlow {
                            req,
                            item: d,
                            dst,
                            bytes,
                        },
                    );
                }
                None => {
                    assert!(n_dead > 0, "disconnected topology");
                    stalled.push((req, d, dst, bytes));
                }
            }
        }
    }
    st.missing[task.0 as usize] = miss;
    if miss == 0 {
        device_q[dev.0 as usize].push_back((req, task));
        dispatch_devices.push(dev.0 as usize);
    }
}
