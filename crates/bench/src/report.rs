//! Table rendering for experiment output.
//!
//! Every experiment produces rows of `(label, value)` cells; this module
//! renders them as aligned text tables (the format EXPERIMENTS.md embeds)
//! and, with `--json`, as JSON lines for downstream tooling.

use serde::Serialize;

/// One table: a title, column headers, and rows of pre-formatted cells.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id and description, e.g. `"F1 — edge/cloud crossover"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            out.push('\n');
        };
        line(&self.columns, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format a float with engineering-friendly precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Format bytes with a unit.
pub fn bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("T — demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## T — demo"));
        assert!(s.contains("long-name"));
        // Both value cells right-aligned under the header.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2 + 2 + 2); // title, blank, header, rule, 2 rows
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(0.001234), "0.00123");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(1536), "1.5 KB");
        assert_eq!(bytes(5 << 20), "5.0 MB");
    }
}
