//! Ablations of the design choices DESIGN.md calls out.
//!
//! - **A1 — insertion-based slots:** HEFT with and without
//!   insertion-based slot search, on DAGs wide enough that gaps matter.
//! - **A2 — flow model:** the contention factor (simulated / estimated
//!   makespan) on a shuffle-heavy workload. The factor is exactly the
//!   error a naive bottleneck-only transfer model would make: if it is
//!   far above 1, modeling link sharing (max-min fairness) matters.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_placement::evaluate;
use serde::Serialize;

/// One ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Which ablation.
    pub ablation: String,
    /// Configuration label.
    pub config: String,
    /// Measured value (makespan seconds for A1, factor for A2).
    pub value: f64,
}

/// A lean environment: one edge gateway (where the data is born) and one
/// fog server across a metro link. Tasks carry a 16 GB memory floor, so
/// the 64 GB fog server is the only feasible device — the single-machine
/// saturation regime where slot search matters.
fn lean_env() -> continuum_placement::Env {
    use continuum_model::Fleet;
    use continuum_net::Topology;
    use continuum_sim::SimDuration;
    let mut topo = Topology::new();
    let e = topo.add_node("edge", Tier::Edge);
    let f_node = topo.add_node("fog", Tier::Fog);
    topo.add_link(e, f_node, SimDuration::from_millis(5), 1.25e8);
    let mut fleet = Fleet::new();
    fleet.add_class(e, DeviceClass::EdgeGateway);
    fleet.add_class(f_node, DeviceClass::FogServer);
    continuum_placement::Env::new(topo, fleet)
}

/// Staggered fan-out + join: `n` near-uniform (~0.3 s) tasks whose inputs
/// arrive over a window of a couple of seconds, all joined at the end.
fn staggered_fanout(n: usize, seed: u64) -> Dag {
    use continuum_workflow::Constraints;
    let edge_node = continuum_net::NodeId(0);
    let mut rng = Rng::new(seed);
    let mut g = Dag::new("staggered-fanout");
    let mem = Constraints {
        min_mem_bytes: 16 << 30,
        ..Default::default()
    };
    let mut outs = Vec::with_capacity(n);
    for i in 0..n {
        let bytes = rng.range_u64(1, 80) * (4 << 20);
        let inp = g.add_input(format!("in{i}"), bytes, edge_node);
        let out = g.add_item(format!("o{i}"), 1024);
        g.add_task_full(
            format!("b{i}"),
            rng.lognormal((1e10f64).ln(), 0.3),
            1,
            vec![inp],
            vec![out],
            mem.clone(),
        );
        outs.push(out);
    }
    let fin = g.add_item("final", 1024);
    g.add_task_full("join", 1e9, 1, outs, vec![fin], mem);
    g
}

/// Run both ablations.
pub fn run() -> (Vec<Table>, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rows = Vec::new();

    // --- A1: insertion vs append ----------------------------------------
    // Insertion pays off in a specific, well-defined regime: a *saturated*
    // device whose timeline has bubbles left by staggered data arrivals.
    // (On the 49-device default continuum, or with heavy-tailed task
    // durations where one straggler pins the makespan, the two variants
    // tie — a scan over those regimes is in `examples/a1scan.rs`.) The
    // ablation therefore uses the textbook shape: a wide fan-out of
    // near-uniform tasks with staggered input transfers, joined at the
    // end, on a single feasible 16-core fog server. The honest metric is
    // each variant's own internal schedule (the simulator's FIFO dispatch
    // cannot honor back-filled slots).
    let lean = lean_env();
    let mut t1 = Table::new(
        "A1 — HEFT slot search: insertion vs append (mean estimated makespan, s)",
        &["config", "makespan (s)"],
    );
    let mut mean_ins = 0.0;
    let mut mean_app = 0.0;
    const REPS: u64 = 6;
    for rep in 0..REPS {
        let dag = staggered_fanout(160, 0xA1_000 + rep);
        let s_ins = HeftPlacer {
            insertion: true,
            ..Default::default()
        }
        .schedule(&lean, &dag);
        let s_app = HeftPlacer {
            insertion: false,
            ..Default::default()
        }
        .schedule(&lean, &dag);
        mean_ins += s_ins.makespan().as_secs_f64();
        mean_app += s_app.makespan().as_secs_f64();
    }
    mean_ins /= REPS as f64;
    mean_app /= REPS as f64;
    t1.row(vec!["insertion".into(), f(mean_ins)]);
    t1.row(vec!["append-only".into(), f(mean_app)]);
    rows.push(Row {
        ablation: "slot-search".into(),
        config: "insertion".into(),
        value: mean_ins,
    });
    rows.push(Row {
        ablation: "slot-search".into(),
        config: "append-only".into(),
        value: mean_app,
    });

    // --- A2: how much does link sharing matter? --------------------------
    let mut t2 = Table::new(
        "A2 — contention factor (simulated / bottleneck-only estimate)",
        &["workload", "estimate (s)", "simulated (s)", "factor"],
    );
    let workloads: Vec<(String, Dag)> = vec![
        (
            "shuffle-heavy".into(),
            map_reduce(world.sensors()[0], 8, 4, 16 << 20, 10.0),
        ),
        (
            "pipeline (no contention)".into(),
            analytics_pipeline(&PipelineSpec {
                source: world.sensors()[0],
                input_bytes: 16 << 20,
                ..Default::default()
            }),
        ),
    ];
    for (name, dag) in workloads {
        let placement = world.place(&dag, &HeftPlacer::default());
        let (_, est) = evaluate(world.env(), &dag, &placement);
        let sim = world.run(&dag, &HeftPlacer::default()).simulated;
        let factor = sim.makespan_s / est.makespan_s;
        t2.row(vec![
            name.clone(),
            f(est.makespan_s),
            f(sim.makespan_s),
            format!("{factor:.3}"),
        ]);
        rows.push(Row {
            ablation: "flow-model".into(),
            config: name,
            value: factor,
        });
    }

    // --- A3: serverless cold starts ---------------------------------------
    // The fabric tax: a 1 s cold boot per endpoint, at a sparse (2 req/s)
    // and a busy (100 req/s) arrival rate, with short and long keep-warm
    // windows. Sparse traffic keeps re-paying the boot unless the window
    // is long; busy traffic amortizes it away.
    let mut t3 = Table::new(
        "A3 — fabric cold starts: p95 latency (s); sparse (0.05/s) vs busy (100/s)",
        &[
            "rate (/s)",
            "no cold start",
            "cold 1s / warm 10s",
            "cold 1s / warm 600s",
        ],
    );
    {
        use continuum_fabric::{
            endpoints_on, run_fabric_cfg, ColdStart, FunctionRegistry, Invocation, RoutingPolicy,
        };
        let mut registry = FunctionRegistry::new();
        let infer = registry.register("infer", 5e9, 200 << 10, 1 << 10);
        let endpoints = endpoints_on(world.env(), &world.env().fleet.in_tier(Tier::Cloud));
        for rate in [0.05f64, 100.0] {
            let mut rng = Rng::new(0xA3);
            let mut t = 0.0;
            let n_inv = if rate < 1.0 { 150 } else { 600 };
            let invocations: Vec<Invocation> = (0..n_inv)
                .map(|i| {
                    t += rng.exp(rate);
                    Invocation {
                        arrival: SimTime::from_secs_f64(t),
                        origin: world.sensors()[i % world.sensors().len()],
                        function: infer,
                    }
                })
                .collect();
            let p95 = |cold: Option<ColdStart>| {
                let rep = run_fabric_cfg(
                    world.env(),
                    &registry,
                    &endpoints,
                    &invocations,
                    RoutingPolicy::LeastOutstanding,
                    cold,
                );
                rep.latency_percentiles().1
            };
            let none = p95(None);
            let short = p95(Some(ColdStart {
                cold_time: SimDuration::from_secs(1),
                keep_warm: SimDuration::from_secs(10),
            }));
            let long = p95(Some(ColdStart {
                cold_time: SimDuration::from_secs(1),
                keep_warm: SimDuration::from_secs(600),
            }));
            t3.row(vec![f(rate), f(none), f(short), f(long)]);
            for (cfg, v) in [
                ("none", none),
                ("cold1-warm10", short),
                ("cold1-warm600", long),
            ] {
                rows.push(Row {
                    ablation: "cold-start".into(),
                    config: format!("{cfg}@{rate}"),
                    value: v,
                });
            }
        }
    }

    (vec![t1, t2, t3], rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_sane() {
        let (_, rows) = super::run();
        let val = |abl: &str, cfg: &str| {
            rows.iter()
                .find(|r| r.ablation == abl && r.config.starts_with(cfg))
                .map(|r| r.value)
                .expect("row")
        };
        // In the saturated-device regime insertion wins clearly.
        assert!(
            val("slot-search", "insertion") < val("slot-search", "append-only") * 0.95,
            "insertion gave no benefit: {} vs {}",
            val("slot-search", "insertion"),
            val("slot-search", "append-only")
        );
        // The shuffle workload shows real contention; the chain pipeline
        // shows almost none.
        let shuffle = val("flow-model", "shuffle-heavy");
        let chain = val("flow-model", "pipeline");
        assert!(
            shuffle >= chain * 0.99,
            "shuffle {shuffle} vs chain {chain}"
        );
        assert!(chain < 1.2, "chain should be contention-free: {chain}");
        // Cold starts: the sparse stream feels them hard with a short
        // keep-warm window, and a long window recovers most of the loss.
        let sparse_none = val("cold-start", "none@0.05");
        let sparse_short = val("cold-start", "cold1-warm10@0.05");
        let sparse_long = val("cold-start", "cold1-warm600@0.05");
        assert!(
            sparse_short > sparse_none + 0.5,
            "cold start invisible: {sparse_short} vs {sparse_none}"
        );
        assert!(sparse_long < sparse_short, "keep-warm did not help");
        // Busy traffic amortizes the boot.
        let busy_none = val("cold-start", "none@100");
        let busy_short = val("cold-start", "cold1-warm10@100");
        assert!(
            busy_short < busy_none + 0.5,
            "busy stream should amortize cold starts: {busy_short} vs {busy_none}"
        );
    }
}
