//! F11 — WAN failure: graceful degradation and the value of re-placement.
//!
//! Two fog regions each have one *primary* WAN uplink to their cloud; the
//! fogs also share a thin, slow backup interconnect. The workload is a
//! transcoding pipeline per edge gateway whose final stage is pinned to
//! the cloud tier (results must land in the cloud), so some WAN crossing
//! is unavoidable. We fail region A's primary uplink and measure:
//!
//! 1. the makespan with the *pre-failure placement* executed on the
//!    degraded network (transfers reroute over the backup), and
//! 2. the makespan after HEFT *re-places* on the degraded network.
//!
//! Expected shape: the failure degrades the static placement several-fold
//! but does not break it (graceful degradation via rerouting), and
//! re-placement recovers part of the loss — re-answering "where should I
//! compute?" is itself a fault-tolerance mechanism.
//!
//! An earlier version of this experiment failed random links of the
//! default (richly multi-homed, equal-cost) continuum and measured *no*
//! degradation at all — with ECMP routing and symmetric links, WAN
//! failures there are genuinely free. That null result is retained in the
//! test below as the `healthy ≈ 1.0` baseline assertion; this scenario
//! exists to show what failure costs when the surviving path is worse.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_model::Fleet;
use continuum_net::{LinkId, Topology};
use continuum_runtime::{simulate_stream, StreamRequest};
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Configuration label.
    pub config: String,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Relative to healthy.
    pub degradation: f64,
}

/// Hand-built two-region topology with asymmetric backup.
/// Returns (topology, edge nodes, primary link of region A).
fn build_topology() -> (Topology, Vec<continuum_net::NodeId>, LinkId) {
    let mut t = Topology::new();
    let cloud0 = t.add_node("cloud0", Tier::Cloud);
    let cloud1 = t.add_node("cloud1", Tier::Cloud);
    t.add_link(cloud0, cloud1, SimDuration::from_micros(500), 1.25e10);
    let fog_a = t.add_node("fogA", Tier::Fog);
    let fog_b = t.add_node("fogB", Tier::Fog);
    // Primary uplinks: fast.
    let primary_a = t.add_link(fog_a, cloud0, SimDuration::from_millis(20), 2e8);
    t.add_link(fog_b, cloud1, SimDuration::from_millis(20), 2e8);
    // Backup interconnect: thin and slow.
    t.add_link(fog_a, fog_b, SimDuration::from_millis(30), 5e7);
    let mut edges = Vec::new();
    for (fog, tag) in [(fog_a, "a"), (fog_b, "b")] {
        for i in 0..3 {
            let e = t.add_node(format!("edge{tag}{i}"), Tier::Edge);
            t.add_link(e, fog, SimDuration::from_millis(5), 1.25e8);
            edges.push(e);
        }
    }
    (t, edges, primary_a)
}

fn fleet_for(topo: &Topology) -> Fleet {
    let mut fleet = Fleet::new();
    for n in topo.nodes() {
        match n.tier {
            Tier::Cloud => {
                fleet.add_class(n.id, DeviceClass::CloudVm);
            }
            Tier::Fog => {
                fleet.add_class(n.id, DeviceClass::FogServer);
            }
            Tier::Edge => {
                fleet.add_class(n.id, DeviceClass::EdgeGateway);
            }
            _ => {}
        }
    }
    fleet
}

/// Transcoding pipeline: data does not shrink, and the final stage must
/// run in the cloud — the WAN crossing is mandatory.
fn transcode_dag(edge: continuum_net::NodeId, bytes: u64) -> Dag {
    let mut g = Dag::new("transcode");
    let raw = g.add_input("raw", bytes, edge);
    let mid = g.add_item("mid", bytes);
    g.add_task("transcode", 100.0 * bytes as f64, vec![raw], vec![mid]);
    let stored = g.add_item("stored", bytes);
    g.add_task_full(
        "publish",
        1e9,
        1,
        vec![mid],
        vec![stored],
        Constraints::tiers(Tier::Cloud, Tier::Cloud),
    );
    debug_assert!(g.validate().is_ok());
    g
}

/// Run the three configurations.
pub fn run() -> (Table, Vec<Row>) {
    let (topo, edges, primary_a) = build_topology();
    let bytes = 32u64 << 20;

    // Healthy world and its placements.
    let healthy_env = continuum_placement::Env::new(topo.clone(), fleet_for(&topo));
    let dags: Vec<Dag> = edges.iter().map(|&e| transcode_dag(e, bytes)).collect();
    let healthy_placements: Vec<Placement> = dags
        .iter()
        .map(|d| HeftPlacer::default().place(&healthy_env, d))
        .collect();
    let mk_requests = |placements: &[Placement]| -> Vec<StreamRequest> {
        dags.iter()
            .zip(placements)
            .map(|(d, p)| StreamRequest {
                arrival: SimTime::ZERO,
                dag: d.clone(),
                placement: p.clone(),
            })
            .collect()
    };
    let healthy_mk = simulate_stream(&healthy_env, &mk_requests(&healthy_placements))
        .trace
        .makespan()
        .as_secs_f64();

    // Degraded world: region A's primary uplink fails.
    let degraded_topo = topo.without_links(&[primary_a]);
    assert!(degraded_topo.is_connected());
    let degraded_env =
        continuum_placement::Env::new(degraded_topo.clone(), fleet_for(&degraded_topo));
    // (a) Static: the old placement, rerouted over the backup.
    let static_mk = simulate_stream(&degraded_env, &mk_requests(&healthy_placements))
        .trace
        .makespan()
        .as_secs_f64();
    // (b) Adaptive: HEFT re-places on the degraded network.
    let adapted: Vec<Placement> = dags
        .iter()
        .map(|d| HeftPlacer::default().place(&degraded_env, d))
        .collect();
    let adaptive_mk = simulate_stream(&degraded_env, &mk_requests(&adapted))
        .trace
        .makespan()
        .as_secs_f64();

    let rows = vec![
        Row {
            config: "healthy".into(),
            makespan_s: healthy_mk,
            degradation: 1.0,
        },
        Row {
            config: "primary-down, static placement".into(),
            makespan_s: static_mk,
            degradation: static_mk / healthy_mk,
        },
        Row {
            config: "primary-down, re-placed".into(),
            makespan_s: adaptive_mk,
            degradation: adaptive_mk / healthy_mk,
        },
    ];
    let mut table = Table::new(
        "F11 — WAN primary failure: rerouting vs re-placement",
        &["config", "makespan (s)", "vs healthy"],
    );
    for r in &rows {
        table.row(vec![
            r.config.clone(),
            f(r.makespan_s),
            format!("{:.2}x", r.degradation),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn failure_degrades_and_replacement_recovers() {
        let (_, rows) = super::run();
        let by = |c: &str| {
            rows.iter()
                .find(|r| r.config.starts_with(c))
                .map(|r| r.makespan_s)
                .expect("row")
        };
        let healthy = by("healthy");
        let stat = by("primary-down, static");
        let adaptive = by("primary-down, re-placed");
        // Graceful degradation: measurable, not a cliff.
        assert!(
            stat > healthy * 1.2,
            "failure invisible: {stat} vs {healthy}"
        );
        assert!(stat < healthy * 20.0, "cliff: {stat} vs {healthy}");
        // Re-deciding placement never hurts, and work still completes.
        assert!(
            adaptive <= stat * 1.001,
            "re-placement hurt: {adaptive} vs {stat}"
        );
        assert!(
            adaptive >= healthy * 0.999,
            "degraded net outperformed healthy?"
        );
    }
}
