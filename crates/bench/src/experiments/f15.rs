//! F15 — open-loop saturation: goodput, rejection, and tail latency
//! under sustained arrival-driven load.
//!
//! Closed-loop sweeps (F4, F12) materialise a fixed request list and
//! measure latency; they cannot say what happens when the offered load
//! simply *keeps coming*. F15 drives the same streaming-inference
//! scenario through the open-loop executor: a Poisson arrival process
//! offers requests indefinitely, an admission gate caps the number of
//! requests live in the system, and everything past the cap is rejected
//! at the door rather than queued without bound. We sweep the offered
//! rate from well below saturation to well past it and report goodput
//! (completions per second of simulated time), rejection rate, and the
//! p50/p99/p999 latency of *admitted* requests.
//!
//! Expected shape: below saturation goodput tracks the offered rate and
//! nothing is rejected; past the knee goodput plateaus at the continuum's
//! service capacity, the admission gate sheds the excess, and — because
//! the gate bounds queueing — the tail of admitted requests degrades
//! gracefully instead of diverging. The `peak live` column is the
//! memory story: it stays pinned at the admission cap no matter how much
//! load is offered.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_net::{continuum_regions, RegionPartition};
use continuum_obs::HealthSpec;
use continuum_runtime::{
    simulate_open_loop, simulate_open_loop_sharded, OpenLoopOpts, OpenLoopReport, ShardOpts,
};
use continuum_workflow::{open_loop_arrivals, ArrivalProcess, OpenLoopSpec};
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Offered arrival rate, requests/second.
    pub rate_hz: f64,
    /// Placement policy label.
    pub policy: String,
    /// Requests offered by the arrival process.
    pub offered: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests refused at the admission gate.
    pub rejected: u64,
    /// `rejected / offered`.
    pub reject_rate: f64,
    /// Completions per second of simulated time.
    pub goodput_hz: f64,
    /// Median admitted-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile admitted-request latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile admitted-request latency, milliseconds.
    pub p999_ms: f64,
    /// Peak simultaneously-live requests (the memory bound).
    pub peak_live: usize,
    /// Peak short-window (5 m sim-time) SLO burn rate over the run.
    pub burn_short_peak: f64,
    /// Long-window (1 h sim-time) SLO burn rate at run end.
    pub burn_long: f64,
    /// Admitted completions that missed the 400 ms objective.
    pub slo_violations: u64,
    /// Anomalies the health plane recorded (saturation, slo-burn).
    pub health_anomalies: u64,
}

/// Offered rates swept, requests/second. Under the admission cap the F4
/// scenario's two-gateway edge plus two clouds sustains roughly 200
/// completions/s; the first two points sit below that knee, the last
/// three are progressively further past it.
pub fn rates() -> Vec<f64> {
    vec![50.0, 150.0, 300.0, 600.0, 1200.0]
}

/// Admission cap: maximum requests live in the system at once.
pub const MAX_LIVE: usize = 64;

/// The latency SLO handed to the deadline-aware policy.
pub fn slo() -> SimDuration {
    SimDuration::from_millis(400)
}

/// Requests offered per run (`CONTINUUM_SMOKE=1` shrinks the run for CI).
pub fn requests() -> usize {
    if std::env::var("CONTINUUM_SMOKE").is_ok() {
        300
    } else {
        800
    }
}

/// Shards used by the pinned sharded arm.
pub const SHARDS: usize = 2;

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let scenario = crate::experiments::f4::scenario();
    let world = Continuum::build(&scenario);
    let partition =
        RegionPartition::new(&world.env().topology, continuum_regions(&scenario.spec), 0);
    // Health plane: burn rates are measured against the same 400 ms
    // objective the deadline-aware policy plans for.
    let hspec = HealthSpec::for_objective_ns(slo().0);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F15 — open-loop saturation: goodput / rejection / tail latency",
        &[
            "rate (/s)",
            "policy",
            "offered",
            "completed",
            "rejected",
            "reject frac",
            "goodput (/s)",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "peak live",
            "burn pk",
            "anomalies",
        ],
    );
    for &rate in &rates() {
        let spec = OpenLoopSpec {
            sensors: world.sensors().to_vec(),
            requests: requests(),
            process: ArrivalProcess::Poisson { rate_hz: rate },
            frame_bytes: 200 << 10,
            infer_flops: 1e8,
            size_alpha: None,
        };
        for deadline_aware in [false, true] {
            let name = if deadline_aware {
                "deadline".to_string()
            } else {
                "greedy".to_string()
            };
            let mut placer = OnlinePlacer::continuum(world.env());
            // Placement is lazy — each request is placed as the arrival
            // process yields it, so the workload is never materialised.
            let arrivals = open_loop_arrivals(0xF15, &spec).map(|(arrival, dag)| {
                let placement = if deadline_aware {
                    placer
                        .place_request_deadline(world.env(), &dag, arrival, slo())
                        .0
                } else {
                    placer.place_request(world.env(), &dag, arrival).0
                };
                StreamRequest {
                    dag,
                    placement,
                    arrival,
                }
            });
            let opts = OpenLoopOpts {
                max_live: MAX_LIVE,
                health: Some(&hspec),
                ..OpenLoopOpts::default()
            };
            let rep = simulate_open_loop(world.env(), arrivals, &opts);
            push_row(&mut table, &mut rows, rate, name, &rep);
        }
        // Sharded arm: the same greedy-placed load through the pinned
        // two-shard open-loop executor, so the row set carries the
        // `shard.util.*` story alongside the policy curves.
        let mut placer = OnlinePlacer::continuum(world.env());
        let arrivals = open_loop_arrivals(0xF15, &spec).map(|(arrival, dag)| {
            let placement = placer.place_request(world.env(), &dag, arrival).0;
            StreamRequest {
                dag,
                placement,
                arrival,
            }
        });
        let opts = OpenLoopOpts {
            max_live: MAX_LIVE,
            health: Some(&hspec),
            ..OpenLoopOpts::default()
        };
        let rep = simulate_open_loop_sharded(
            world.env(),
            arrivals,
            &partition,
            &opts,
            &ShardOpts::pinned(SHARDS),
        );
        push_row(&mut table, &mut rows, rate, "sharded".to_string(), &rep);
    }
    (table, rows)
}

fn push_row(table: &mut Table, rows: &mut Vec<Row>, rate: f64, name: String, rep: &OpenLoopReport) {
    let h = rep.health.as_ref();
    table.row(vec![
        f(rate),
        name.clone(),
        format!("{}", rep.offered),
        format!("{}", rep.completed),
        format!("{}", rep.rejected),
        f(rep.rejection_rate()),
        f(rep.goodput_hz()),
        f(rep.latency_quantile_s(0.50) * 1e3),
        f(rep.latency_quantile_s(0.99) * 1e3),
        f(rep.latency_quantile_s(0.999) * 1e3),
        format!("{}", rep.peak_live),
        f(h.map_or(0.0, |h| h.burn_short_peak)),
        format!("{}", h.map_or(0, |h| h.anomalies.len())),
    ]);
    rows.push(Row {
        rate_hz: rate,
        policy: name,
        offered: rep.offered,
        completed: rep.completed,
        rejected: rep.rejected,
        reject_rate: rep.rejection_rate(),
        goodput_hz: rep.goodput_hz(),
        p50_ms: rep.latency_quantile_s(0.50) * 1e3,
        p99_ms: rep.latency_quantile_s(0.99) * 1e3,
        p999_ms: rep.latency_quantile_s(0.999) * 1e3,
        peak_live: rep.peak_live,
        burn_short_peak: h.map_or(0.0, |h| h.burn_short_peak),
        burn_long: h.map_or(0.0, |h| h.burn_long),
        slo_violations: h.map_or(0, |h| h.violations),
        health_anomalies: h.map_or(0, |h| h.anomalies.len() as u64),
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn saturation_curve_shape() {
        let (_, rows) = super::run();
        let low = super::rates()[0];
        let high = *super::rates().last().expect("rates");
        for policy in ["greedy", "deadline"] {
            let get = |rate: f64| {
                rows.iter()
                    .find(|r| r.rate_hz == rate && r.policy == policy)
                    .expect("row present")
            };
            // Every point conserves requests and respects the cap.
            for r in rows.iter().filter(|r| r.policy == policy) {
                assert_eq!(r.offered, r.completed + r.rejected, "{policy} conservation");
                assert!(r.peak_live <= super::MAX_LIVE, "{policy} cap respected");
                assert!(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms);
            }
            // Below saturation: nothing rejected, goodput tracks offered.
            let lo = get(low);
            assert_eq!(lo.rejected, 0, "{policy} rejects below saturation");
            assert!(
                lo.goodput_hz > low * 0.8,
                "{policy} goodput {} at offered {low}",
                lo.goodput_hz
            );
            // Past saturation: the gate sheds real load.
            let hi = get(high);
            assert!(
                hi.reject_rate > 0.2,
                "{policy} reject rate {} at offered {high}",
                hi.reject_rate
            );
            // Goodput never collapses past the knee: the plateau holds to
            // within a third of the best point on the curve.
            let best = rows
                .iter()
                .filter(|r| r.policy == policy)
                .map(|r| r.goodput_hz)
                .fold(0.0f64, f64::max);
            assert!(
                hi.goodput_hz > best / 3.0,
                "{policy} goodput collapsed: {} vs best {best}",
                hi.goodput_hz
            );
            // Past saturation the admission gate trips the health plane.
            assert!(
                hi.health_anomalies > 0,
                "{policy} records a saturation anomaly past the knee"
            );
            assert!(
                hi.slo_violations <= hi.completed,
                "{policy} violations bound"
            );
        }
        // The sharded arm runs once per rate, conserves requests, and
        // carries the same health plane as the policy arms.
        let sharded: Vec<_> = rows.iter().filter(|r| r.policy == "sharded").collect();
        assert_eq!(
            sharded.len(),
            super::rates().len(),
            "one sharded row per rate"
        );
        for r in &sharded {
            assert_eq!(r.offered, r.completed + r.rejected, "sharded conservation");
            assert!(r.peak_live <= super::MAX_LIVE, "sharded cap respected");
            assert!(r.slo_violations <= r.completed, "sharded violations bound");
        }
    }
}
