//! F4 — streaming inference latency under load (Q2: latency-sensitive
//! workloads).
//!
//! A camera fleet issues `capture -> preprocess -> infer` requests with
//! Poisson arrivals. Three *online* policies place each request as it
//! arrives: edge-only, cloud-only, and the continuum policy that decides
//! per request from live queue estimates. The placed stream is then
//! executed in the contended simulator.
//!
//! Expected shape: at low rates the edge wins (no WAN round-trip); as the
//! rate approaches the edge tier's service capacity its queues blow up and
//! the cloud wins; the continuum policy tracks the lower envelope and
//! degrades gracefully by spilling excess load upstream.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_sim::Percentiles;
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Offered arrival rate, requests/second.
    pub rate_hz: f64,
    /// Policy name.
    pub policy: String,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th percentile latency, seconds.
    pub p95_s: f64,
    /// 99th percentile latency, seconds.
    pub p99_s: f64,
}

/// The F4 scenario: a lean edge tier (2 gateways) a long WAN away from a
/// capable cloud — the regime where "where should I compute?" flips with
/// load.
pub fn scenario() -> Scenario {
    use continuum_net::{ContinuumSpec, LinkSpec};
    use continuum_sim::SimDuration;
    Scenario {
        name: "f4-streaming",
        spec: ContinuumSpec {
            fogs: 1,
            edges_per_fog: 2,
            sensors_per_edge: 8,
            clouds: 2,
            hpcs: 0,
            fog_cloud: LinkSpec::new(SimDuration::from_millis(50), 1.25e9),
            ..ContinuumSpec::default()
        },
    }
}

/// Arrival rates swept, requests/second.
pub fn rates() -> Vec<f64> {
    vec![20.0, 100.0, 400.0]
}

/// Requests per run.
pub const REQUESTS: usize = 600;

/// Light inference: ~33 ms on an edge-gateway core, sub-ms in the cloud.
pub const INFER_FLOPS: f64 = 1e8;

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&scenario());
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F4 — streaming p99 latency (s) vs arrival rate",
        &["rate (req/s)", "policy", "p50 (s)", "p95 (s)", "p99 (s)"],
    );
    for &rate in &rates() {
        let mut rng = Rng::new(0xF4);
        let stream = inference_stream(
            &mut rng,
            &StreamSpec {
                sensors: world.sensors().to_vec(),
                requests: REQUESTS,
                rate_hz: rate,
                frame_bytes: 200 << 10,
                infer_flops: INFER_FLOPS,
            },
        );
        for placer in [
            OnlinePlacer::edge_only(world.env()),
            OnlinePlacer::cloud_only(world.env()),
            OnlinePlacer::continuum(world.env()),
        ] {
            let name = placer.name().to_string();
            let mut p = placer;
            let placed: Vec<_> = stream
                .requests
                .iter()
                .map(|(arrival, dag)| {
                    let (placement, _) = p.place_request(world.env(), dag, *arrival);
                    (*arrival, dag.clone(), placement)
                })
                .collect();
            let trace = world.run_stream(placed);
            let mut perc = Percentiles::new();
            for l in trace.latencies_s() {
                perc.push(l);
            }
            let (p50, p95, p99) = perc.p50_p95_p99().expect("non-empty stream");
            table.row(vec![f(rate), name.clone(), f(p50), f(p95), f(p99)]);
            rows.push(Row {
                rate_hz: rate,
                policy: name,
                p50_s: p50,
                p95_s: p95,
                p99_s: p99,
            });
        }
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossover_with_load() {
        let (_, rows) = super::run();
        let get = |rate: f64, policy: &str| {
            rows.iter()
                .find(|r| r.rate_hz == rate && r.policy == policy)
                .map(|r| r.p99_s)
                .expect("row present")
        };
        let low = super::rates()[0];
        let high = *super::rates().last().expect("rates");
        // Low rate: the edge's locality beats the cloud's WAN round-trip.
        assert!(
            get(low, "online-edge") < get(low, "online-cloud"),
            "edge {} !< cloud {} at low rate",
            get(low, "online-edge"),
            get(low, "online-cloud")
        );
        // High rate: the edge saturates; the cloud absorbs the load.
        assert!(
            get(high, "online-cloud") < get(high, "online-edge"),
            "cloud {} !< edge {} at high rate",
            get(high, "online-cloud"),
            get(high, "online-edge")
        );
        // The continuum tracks the lower envelope (with scheduling slack).
        for &rate in &super::rates() {
            let best = get(rate, "online-edge").min(get(rate, "online-cloud"));
            assert!(
                get(rate, "online-continuum") <= best * 1.5,
                "continuum off envelope at rate {rate}"
            );
        }
    }
}
