//! T5 — estimator fidelity: how wrong is the model the policies trust?
//!
//! Every placement decision in this repository is made against the
//! contention-free analytic estimator; the contended simulator then
//! delivers the truth. This experiment measures the distribution of the
//! contention factor (simulated / estimated makespan) across many random
//! workloads of three shapes, for HEFT placements.
//!
//! Expected shape: chains predict almost perfectly (no concurrency to
//! contend); layered DAGs sit close to 1 with a small tail; shuffle-heavy
//! map-reduces mispredict worst (concurrent transfers share links). This
//! is the quantitative case for why the simulator — not the estimator —
//! is the arbiter in every other experiment.

use crate::report::Table;
use continuum_core::prelude::*;
use continuum_placement::evaluate;
use continuum_sim::Percentiles;
use serde::Serialize;

/// Fidelity summary for one workload family.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload family.
    pub family: String,
    /// Samples measured.
    pub samples: usize,
    /// Median contention factor.
    pub p50: f64,
    /// 95th-percentile contention factor.
    pub p95: f64,
    /// Maximum observed factor.
    pub max: f64,
}

/// Samples per family.
pub const SAMPLES: usize = 20;

/// Run the fidelity study.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rows = Vec::new();

    /// A seeded workload constructor.
    type Family<'a> = (&'a str, Box<dyn Fn(u64) -> Dag>);
    let sensor = world.sensors()[0];
    let edge = world.edges()[0];
    let families: Vec<Family> = vec![
        (
            "chain",
            Box::new(move |seed| {
                let mut rng = Rng::new(seed);
                let mut g = Dag::new("chain");
                let src = edge;
                let mut prev = g.add_input("in", 1 << 20, src);
                for i in 0..12 {
                    let out = g.add_item(format!("d{i}"), rng.range_u64(1, 4) << 20);
                    g.add_task(
                        format!("t{i}"),
                        rng.lognormal((1e10f64).ln(), 0.5),
                        vec![prev],
                        vec![out],
                    );
                    prev = out;
                }
                g
            }),
        ),
        (
            "layered",
            Box::new(move |seed| {
                let mut rng = Rng::new(seed);
                layered_random(
                    &mut rng,
                    &LayeredSpec {
                        tasks: 60,
                        source: edge,
                        ..Default::default()
                    },
                )
            }),
        ),
        (
            "map-reduce",
            Box::new(move |seed| {
                let mut rng = Rng::new(seed);
                let mappers = 4 + rng.index(6);
                map_reduce(sensor, mappers, 3, rng.range_u64(4, 32) << 20, 20.0)
            }),
        ),
    ];

    let mut table = Table::new(
        "T5 — estimator fidelity: contention factor (simulated / estimated)",
        &["family", "samples", "p50", "p95", "max"],
    );
    for (family, gen) in &families {
        let mut perc = Percentiles::new();
        let mut max = 0.0f64;
        for s in 0..SAMPLES as u64 {
            let dag = gen(0x75_000 + s);
            let placement = world.place(&dag, &HeftPlacer::default());
            let (_, est) = evaluate(world.env(), &dag, &placement);
            let sim = continuum_runtime::simulate(world.env(), &dag, &placement).metrics;
            let factor = sim.makespan_s / est.makespan_s;
            perc.push(factor);
            max = max.max(factor);
        }
        let row = Row {
            family: family.to_string(),
            samples: SAMPLES,
            p50: perc.quantile(0.5).expect("non-empty"),
            p95: perc.quantile(0.95).expect("non-empty"),
            max,
        };
        table.row(vec![
            row.family.clone(),
            row.samples.to_string(),
            format!("{:.3}", row.p50),
            format!("{:.3}", row.p95),
            format!("{:.3}", row.max),
        ]);
        rows.push(row);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn chains_faithful_shuffles_not() {
        let (_, rows) = super::run();
        let by = |n: &str| rows.iter().find(|r| r.family == n).expect("family row");
        let chain = by("chain");
        let shuffle = by("map-reduce");
        // Chains: essentially perfect prediction.
        assert!(chain.p95 < 1.05, "chain p95 {}", chain.p95);
        assert!(chain.p50 > 0.90);
        // Shuffles: substantial, systematic underestimation.
        assert!(shuffle.p50 > 1.5, "shuffle p50 {}", shuffle.p50);
        assert!(shuffle.max >= shuffle.p50);
        // Ordering across families.
        assert!(by("layered").p50 >= chain.p50 * 0.95);
        assert!(shuffle.p95 > by("layered").p95);
    }
}
