//! F6 — the makespan/energy/cost Pareto front (multi-objective Q1).
//!
//! The annealing placer's objective weights are swept over a grid; each
//! setting produces a placement whose *simulated* metrics land somewhere
//! in (makespan, energy, cost) space. The set of non-dominated points is
//! the trade-off surface a continuum operator actually navigates:
//! finishing faster means renting big cloud VMs (dollars) or lighting up
//! the HPC node (joules).

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_placement::pareto_front;
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Weight on makespan.
    pub w_time: f64,
    /// Weight on energy.
    pub w_energy: f64,
    /// Weight on dollars.
    pub w_cost: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Simulated energy, joules.
    pub energy_j: f64,
    /// Simulated cost, dollars.
    pub cost_usd: f64,
    /// Whether this point survived Pareto filtering.
    pub on_front: bool,
}

/// Weight grid swept: pure and mixed emphases on each axis. Cost weights
/// are large because the absolute dollars of a sub-minute run are small
/// (fractions of a cent) — the weight converts "avoid billed VMs" into a
/// term comparable to seconds of makespan.
pub fn weights() -> Vec<(f64, f64, f64)> {
    vec![
        (1.0, 0.0, 0.0),
        (1.0, 0.1, 0.0),
        (0.1, 1.0, 0.0),
        (0.01, 1.0, 0.0),
        (1.0, 0.0, 1e3),
        (1.0, 0.0, 1e4),
        (0.1, 0.0, 1e5),
        (0.1, 0.5, 1e4),
        (0.01, 1.0, 1e5),
    ]
}

/// The F6 workload: compute-dominated layered DAGs with light data, so
/// placement (not the sensor uplink) decides the outcome. The trade-off
/// axes: billed cloud VMs finish fastest; free fog servers are slower but
/// cost nothing; the device mix also shifts idle-energy footprint.
fn workload(world: &Continuum) -> Vec<Dag> {
    let mut rng = Rng::new(0xF6AA);
    let mut dags = Vec::new();
    for i in 0..2 {
        dags.push(layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: 40,
                width: 8,
                work_mu: (5e10f64).ln(), // ~50 Gflop median per task
                work_sigma: 0.7,
                bytes_mu: (2e5f64).ln(), // ~200 KB median per item
                bytes_sigma: 0.7,
                source: world.edges()[i],
                ..Default::default()
            },
        ));
    }
    dags
}

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let dags = workload(&world);
    let mut rows: Vec<Row> = Vec::new();
    for &(wt, we, wc) in &weights() {
        let annealer = AnnealingPlacer {
            objective: WeightedObjective {
                w_time: wt,
                w_energy: we,
                w_cost: wc,
            },
            iters: 500,
            restarts: 4,
            seed: 0xF6,
            ..Default::default()
        };
        // Aggregate over the workload: worst makespan, summed energy/cost.
        let mut makespan: f64 = 0.0;
        let mut energy = 0.0;
        let mut cost = 0.0;
        for dag in &dags {
            let r = world.run(dag, &annealer);
            makespan = makespan.max(r.simulated.makespan_s);
            energy += r.simulated.energy_j;
            cost += r.simulated.cost_usd;
        }
        rows.push(Row {
            w_time: wt,
            w_energy: we,
            w_cost: wc,
            makespan_s: makespan,
            energy_j: energy,
            cost_usd: cost,
            on_front: false,
        });
    }
    // Pareto-mark over *distinct* outcomes: duplicate points are marked
    // only once so the front size reflects the true trade-off surface.
    let metrics: Vec<Metrics> = rows
        .iter()
        .map(|r| Metrics {
            makespan_s: r.makespan_s,
            energy_j: r.energy_j,
            cost_usd: r.cost_usd,
            bytes_moved: 0,
        })
        .collect();
    let front = pareto_front(&metrics);
    let mut seen: Vec<(u64, u64, u64)> = Vec::new();
    for (r, m) in rows.iter_mut().zip(&metrics) {
        let key = (
            m.makespan_s.to_bits(),
            m.energy_j.to_bits(),
            m.cost_usd.to_bits(),
        );
        let is_front = front.iter().any(|p| {
            p.makespan_s == m.makespan_s && p.energy_j == m.energy_j && p.cost_usd == m.cost_usd
        });
        r.on_front = is_front && !seen.contains(&key);
        if is_front {
            seen.push(key);
        }
    }

    let mut table = Table::new(
        "F6 — annealed placements across objective weights (Pareto front marked)",
        &[
            "w_time",
            "w_energy",
            "w_cost",
            "makespan (s)",
            "energy (J)",
            "cost ($)",
            "front",
        ],
    );
    for r in &rows {
        table.row(vec![
            f(r.w_time),
            f(r.w_energy),
            f(r.w_cost),
            f(r.makespan_s),
            f(r.energy_j),
            format!("{:.4}", r.cost_usd),
            if r.on_front { "*".into() } else { "".into() },
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn front_is_nontrivial_and_tradeoff_real() {
        let (_, rows) = super::run();
        let on_front = rows.iter().filter(|r| r.on_front).count();
        assert!(on_front >= 2, "degenerate front: {on_front} points");
        let fastest = rows
            .iter()
            .min_by(|a, b| a.makespan_s.partial_cmp(&b.makespan_s).expect("no NaN"))
            .expect("rows");
        let frugalest = rows
            .iter()
            .min_by(|a, b| a.energy_j.partial_cmp(&b.energy_j).expect("no NaN"))
            .expect("rows");
        let cheapest = rows
            .iter()
            .min_by(|a, b| a.cost_usd.partial_cmp(&b.cost_usd).expect("no NaN"))
            .expect("rows");
        // A genuine trade-off on at least one secondary axis: optimizing
        // for energy or for dollars must be able to beat the fastest
        // placement on that axis.
        let energy_tradeoff = frugalest.energy_j < fastest.energy_j * 0.999;
        let cost_tradeoff = cheapest.cost_usd < fastest.cost_usd * 0.999;
        assert!(
            energy_tradeoff || cost_tradeoff,
            "no trade-off at all: energy {} vs {}, cost {} vs {}",
            frugalest.energy_j,
            fastest.energy_j,
            cheapest.cost_usd,
            fastest.cost_usd
        );
    }
}
