//! T2 — data-fabric effectiveness (Q3: provisioning data, not just
//! compute).
//!
//! Edge gateways access 200 five-megabyte objects (all born in the cloud)
//! under a Zipf(1.1) popularity law, 2000 times. Three fabric configs are
//! compared: no caching, per-site LRU caches, and caches plus cooperative
//! replication (cached copies registered as replicas that serve others).

use crate::report::{bytes, f, Table};
use continuum_core::prelude::*;
use continuum_data::{DataKey, ReplicaCatalog, StagingConfig, StagingService};
use continuum_net::RouteTable;
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Configuration label.
    pub config: String,
    /// Bytes that crossed the network (including retries).
    pub bytes_on_wire: u64,
    /// Fraction of requests served locally.
    pub hit_rate: f64,
    /// Mean latency of requests that transferred, seconds.
    pub mean_stage_s: f64,
}

/// Number of objects in the catalog.
pub const OBJECTS: u64 = 200;
/// Object size, bytes.
pub const OBJECT_BYTES: u64 = 5 << 20;
/// Accesses issued.
pub const ACCESSES: usize = 2_000;

fn run_one(world: &Continuum, cfg: StagingConfig, label: &str) -> Row {
    let topo = world.topology();
    let routes = RouteTable::build(topo);
    let mut catalog = ReplicaCatalog::new();
    for k in 0..OBJECTS {
        catalog.register(DataKey(k), world.clouds()[0], OBJECT_BYTES);
    }
    let mut svc = StagingService::new(catalog, cfg, 0x72);
    let mut rng = Rng::new(0x72AA);
    let mut now = SimTime::ZERO;
    for i in 0..ACCESSES {
        let key = DataKey(rng.zipf(OBJECTS as usize, 1.1) as u64);
        let dst = world.edges()[i % world.edges().len()];
        let out = svc.stage(topo, &routes, now, key, dst).expect("stage");
        now = now.max(out.ready_at);
    }
    Row {
        config: label.to_string(),
        bytes_on_wire: svc.bytes_on_wire(),
        hit_rate: svc.hit_rate(),
        mean_stage_s: svc.mean_transfer_latency_s(),
    }
}

/// Run all three configurations.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let rows = vec![
        run_one(
            &world,
            StagingConfig {
                cache_bytes: 0,
                replicate: false,
                ..Default::default()
            },
            "no-cache",
        ),
        run_one(
            &world,
            StagingConfig {
                cache_bytes: 256 << 20,
                replicate: false,
                ..Default::default()
            },
            "lru-cache",
        ),
        run_one(
            &world,
            StagingConfig {
                cache_bytes: 256 << 20,
                replicate: true,
                ..Default::default()
            },
            "cache+replication",
        ),
    ];
    let mut table = Table::new(
        "T2 — data-fabric configurations under a Zipf(1.1) edge workload",
        &["config", "bytes moved", "hit rate", "mean stage-in (s)"],
    );
    for r in &rows {
        table.row(vec![
            r.config.clone(),
            bytes(r.bytes_on_wire),
            format!("{:.1}%", r.hit_rate * 100.0),
            f(r.mean_stage_s),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn caching_cuts_traffic_substantially() {
        let (_, rows) = super::run();
        let by = |c: &str| rows.iter().find(|r| r.config == c).expect("config row");
        let none = by("no-cache");
        let lru = by("lru-cache");
        let coop = by("cache+replication");
        assert_eq!(none.hit_rate, 0.0);
        assert!(
            lru.bytes_on_wire * 2 < none.bytes_on_wire,
            "cache saved < 2x"
        );
        assert!(lru.hit_rate > 0.4);
        // Cooperative replication shortens miss paths: mean stage-in time
        // must not regress versus plain caching.
        assert!(coop.mean_stage_s <= lru.mean_stage_s * 1.05);
    }
}
