//! F16 — federated fabric: batched dispatch, placement quality, and
//! site-failure takeover.
//!
//! The federation promotes the single fabric broker to per-site brokers
//! with batched dispatch (`continuum_fabric::run_federation`). This
//! experiment sweeps site count × batch size on one world and load,
//! reporting simulated service quality (throughput, latency percentiles)
//! alongside wall-clock dispatch cost and its speedup over the
//! per-invocation single broker — after asserting the 1-site batch-1 arm
//! bit-identical to `run_fabric_admission`. A final pair of rows crashes
//! one site mid-run to show broker-peer takeover: work is adopted by a
//! surviving site, nothing is lost, and the p99 pays the outage.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_fabric::{
    endpoints_on, run_fabric_admission, run_federation, sites_from_partition, Admission, Backoff,
    FederationCfg, FunctionRegistry, Invocation, RoutingPolicy, SiteFaultEvent, SiteFaults,
    WarmPool,
};
use continuum_net::{continuum_regions, RegionPartition};
use continuum_obs::HealthSpec;
use serde::Serialize;
use std::time::Instant;

/// One measured arm.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Arm label.
    pub arm: String,
    /// Federation sites (0 = the single-broker baseline).
    pub sites: usize,
    /// Dispatch batch size (0 = the single-broker baseline).
    pub batch: usize,
    /// A mid-run site outage was injected.
    pub site_fault: bool,
    /// Completed invocations.
    pub completed: u64,
    /// Dropped invocations (site-fault rows only; 0 elsewhere).
    pub dropped: u64,
    /// Admission-rejected invocations.
    pub rejected: u64,
    /// Sustained completions/second of simulated time.
    pub throughput_hz: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Wall-clock cost of the run, milliseconds (best of 3).
    pub wall_ms: f64,
    /// Wall-clock speedup vs the per-invocation single broker.
    pub speedup: f64,
    /// Mean drain occupancy (1.0 when batch == 1).
    pub mean_batch: f64,
    /// Site outages adopted by a surviving peer.
    pub takeovers: u64,
    /// `warm_hits / (warm_hits + cold_boots)` across all sites
    /// (0.0 when no container starts were paid).
    pub warm_hit_rate: f64,
    /// Peak short-window SLO burn rate over the run (health plane).
    pub burn_short_peak: f64,
    /// Long-window SLO burn rate at run end (health plane).
    pub burn_long: f64,
    /// Anomalies the health plane recorded (takeover, saturation).
    pub health_anomalies: u64,
}

/// Invocations per run (`CONTINUUM_SMOKE=1` shrinks the run for CI).
pub fn invocations() -> usize {
    if std::env::var("CONTINUUM_SMOKE").is_ok() {
        1_500
    } else {
        8_000
    }
}

/// Offered load, invocations/second.
pub const RATE_HZ: f64 = 800.0;

fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let spec = Scenario::default_continuum().spec;
    let partition = RegionPartition::new(&world.env().topology, continuum_regions(&spec), 0);
    let mut registry = FunctionRegistry::new();
    let infer = registry.register("infer", 2e9, 10 << 10, 1 << 10);
    let mut devices = world.env().fleet.in_tier(Tier::Fog);
    devices.extend(world.env().fleet.in_tier(Tier::Cloud));
    let endpoints = endpoints_on(world.env(), &devices);
    let n = invocations();
    let mut rng = Rng::new(0xF16);
    let mut t = 0.0;
    let invs: Vec<Invocation> = (0..n)
        .map(|i| {
            t += rng.exp(RATE_HZ);
            Invocation {
                arrival: SimTime::from_secs_f64(t),
                origin: world.sensors()[i % world.sensors().len()],
                function: infer,
            }
        })
        .collect();
    let policy = RoutingPolicy::RoundRobin;
    let admission = Some(Admission {
        max_outstanding: 1_024,
    });
    let span = invs.last().expect("n > 0").arrival;

    // The oracle and the identity gate: the 1-site batch-1 federation
    // must reproduce the single broker bit-for-bit before any arm runs.
    let oracle = run_fabric_admission(
        world.env(),
        &registry,
        &endpoints,
        &invs,
        policy,
        None,
        None,
        None,
        admission,
    );
    let one_site = sites_from_partition(world.env(), &partition, &endpoints, 1);
    let mut id_cfg = FederationCfg::new(policy);
    id_cfg.admission = admission;
    let identity = run_federation(
        world.env(),
        &registry,
        &endpoints,
        &one_site,
        &invs,
        &id_cfg,
    );
    assert_eq!(
        identity.fabric, oracle,
        "1-site batch-1 federation diverged from run_fabric_admission"
    );
    let baseline_ms = best_of(3, || {
        run_fabric_admission(
            world.env(),
            &registry,
            &endpoints,
            &invs,
            policy,
            None,
            None,
            None,
            admission,
        )
    });

    // Every federation arm carries the health plane; burn rates are
    // measured against a 400 ms end-to-end objective.
    let hspec = HealthSpec::for_objective_ns(400_000_000);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F16 — federated fabric: batch × sites dispatch, takeover under site failure",
        &[
            "arm",
            "sites",
            "batch",
            "thpt (/s)",
            "p50 (s)",
            "p99 (s)",
            "wall (ms)",
            "speedup",
            "takeovers",
            "warm hit",
            "burn pk",
        ],
    );
    let (o50, _, o99) = oracle.latency_percentiles();
    table.row(vec![
        "single-broker".into(),
        "-".into(),
        "-".into(),
        f(oracle.throughput_hz),
        f(o50),
        f(o99),
        f(baseline_ms),
        f(1.0),
        "0".into(),
        f(0.0),
        f(0.0),
    ]);
    rows.push(Row {
        arm: "single-broker".into(),
        sites: 0,
        batch: 0,
        site_fault: false,
        completed: oracle.completed,
        dropped: oracle.dropped,
        rejected: oracle.rejected,
        throughput_hz: oracle.throughput_hz,
        p50_s: o50,
        p99_s: o99,
        wall_ms: baseline_ms,
        speedup: 1.0,
        mean_batch: 0.0,
        takeovers: 0,
        warm_hit_rate: 0.0,
        burn_short_peak: 0.0,
        burn_long: 0.0,
        health_anomalies: 0,
    });

    for (sites_n, batch, fault, warm) in [
        (1usize, 1usize, false, false),
        (1, 32, false, false),
        (4, 1, false, false),
        (4, 32, false, false),
        (4, 32, false, true),
        (2, 32, true, false),
        (4, 32, true, false),
    ] {
        let sites = sites_from_partition(world.env(), &partition, &endpoints, sites_n);
        let mut cfg = FederationCfg::new(policy);
        cfg.batch = batch;
        cfg.drain_every = SimDuration::from_millis(5);
        cfg.admission = admission;
        cfg.health = Some(hspec);
        if warm {
            // One registered function against a capacity-1 pool: the
            // first start per site boots cold, everything after hits.
            cfg.warm_pool = Some(WarmPool {
                capacity: 1,
                cold_time: SimDuration::from_millis(200),
            });
        }
        if fault {
            cfg.site_faults = Some(SiteFaults {
                events: vec![
                    SiteFaultEvent {
                        at: SimTime::from_secs_f64(span.as_secs_f64() * 0.4),
                        site: 0,
                        crash: true,
                    },
                    SiteFaultEvent {
                        at: SimTime::from_secs_f64(span.as_secs_f64() * 0.4 + 10.0),
                        site: 0,
                        crash: false,
                    },
                ],
                heartbeat: SimDuration::from_millis(500),
                backoff: Backoff::default(),
                seed: 0xF16F,
            });
        }
        let rep = run_federation(world.env(), &registry, &endpoints, &sites, &invs, &cfg);
        let wall = best_of(3, || {
            run_federation(world.env(), &registry, &endpoints, &sites, &invs, &cfg)
        });
        let fab = &rep.fabric;
        assert_eq!(
            fab.completed + fab.dropped + fab.rejected,
            n as u64,
            "conservation"
        );
        let (p50, _, p99) = fab.latency_percentiles();
        let arm = format!(
            "fed {}x b{}{}{}",
            sites.len(),
            batch,
            if warm { " +warm" } else { "" },
            if fault { " +crash" } else { "" }
        );
        let warm_hits: u64 = rep.sites.iter().map(|s| s.warm_hits).sum();
        let cold_boots: u64 = rep.sites.iter().map(|s| s.cold_boots).sum();
        let starts = warm_hits + cold_boots;
        let warm_hit_rate = if starts > 0 {
            warm_hits as f64 / starts as f64
        } else {
            0.0
        };
        let health = rep.health.as_ref();
        table.row(vec![
            arm.clone(),
            sites.len().to_string(),
            batch.to_string(),
            f(fab.throughput_hz),
            f(p50),
            f(p99),
            f(wall),
            f(baseline_ms / wall),
            rep.takeovers.to_string(),
            f(warm_hit_rate),
            f(health.map_or(0.0, |h| h.burn_short_peak)),
        ]);
        rows.push(Row {
            arm,
            sites: sites.len(),
            batch,
            site_fault: fault,
            completed: fab.completed,
            dropped: fab.dropped,
            rejected: fab.rejected,
            throughput_hz: fab.throughput_hz,
            p50_s: p50,
            p99_s: p99,
            wall_ms: wall,
            speedup: baseline_ms / wall,
            mean_batch: if rep.drains > 0 {
                rep.batched as f64 / rep.drains as f64
            } else {
                0.0
            },
            takeovers: rep.takeovers,
            warm_hit_rate,
            burn_short_peak: health.map_or(0.0, |h| h.burn_short_peak),
            burn_long: health.map_or(0.0, |h| h.burn_long),
            health_anomalies: health.map_or(0, |h| h.anomalies.len() as u64),
        });
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn federation_matches_oracle_and_takes_over_on_site_crash() {
        // run() itself asserts the bit-identity gate and per-arm
        // conservation; here we pin the service-level expectations.
        let (_, rows) = super::run();
        let by_arm = |a: &str| rows.iter().find(|r| r.arm == a).expect("arm");
        let base = by_arm("single-broker");
        let id = by_arm("fed 1x b1");
        // Identical simulated outcomes (the bit-identity the run asserts
        // shows up as equal aggregates).
        assert_eq!(id.completed, base.completed);
        assert_eq!(id.p50_s, base.p50_s);
        assert_eq!(id.p99_s, base.p99_s);
        // Batching defers dispatch: the batched arm's median latency is
        // at least the per-invocation arm's.
        assert!(by_arm("fed 1x b32").p50_s >= id.p50_s - 1e-12);
        // The warm-pool arm pays exactly one cold boot per site for the
        // single registered function, so nearly every start is a hit.
        let warm = rows
            .iter()
            .find(|r| r.arm.ends_with("+warm"))
            .expect("warm arm");
        assert!(
            warm.warm_hit_rate > 0.9,
            "warm hit rate {} with one function against a capacity-1 pool",
            warm.warm_hit_rate
        );
        // Health plane is attached to every federation arm and records
        // each takeover as an anomaly.
        for r in rows.iter().filter(|r| r.sites > 0) {
            assert!(r.burn_short_peak >= 0.0 && r.burn_long >= 0.0, "{}", r.arm);
        }
        for r in rows.iter().filter(|r| r.site_fault) {
            assert!(
                r.health_anomalies >= r.takeovers,
                "{}: takeover anomaly recorded",
                r.arm
            );
            assert_eq!(r.takeovers, 1, "{}: site crash must be adopted", r.arm);
            assert_eq!(
                r.completed + r.dropped + r.rejected,
                base.completed + base.dropped + base.rejected,
                "{}: conservation",
                r.arm
            );
            assert!(
                r.p99_s >= id.p99_s,
                "{}: outage cannot shrink the tail",
                r.arm
            );
        }
    }
}
