//! F14 — fault plane: makespan and goodput under device/link churn.
//!
//! The continuum's failure mode is not the per-attempt coin flip of F9:
//! whole devices crash and take every running task with them, links
//! partition and strand in-flight transfers, and the orchestrator only
//! learns about a crash after a detection delay. This experiment drives
//! the chaos executor with generated crash/recover schedules, sweeping
//! the crash intensity (expected crashes per device over the fault-free
//! makespan) against the detection latency, and reports makespan
//! inflation, orphan re-placements, and goodput — the fraction of burned
//! execution seconds that belonged to attempts that survived.
//!
//! Expected shape: inflation and killed work grow with crash intensity.
//! Detection latency cuts both ways: fast detection re-places orphans
//! quickly but may move them to slower survivors, while slow detection
//! stalls longer yet lets a quickly-recovering device restart its own
//! orphans in place. The zero-intensity row must reproduce the
//! fault-free makespan *exactly* — the chaos path is bit-identical when
//! the schedule is empty.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Expected crashes per device over the fault-free makespan.
    pub intensity: f64,
    /// Detection latency, seconds.
    pub detection_s: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Makespan relative to the fault-free run.
    pub inflation: f64,
    /// Task attempts killed mid-execution by crashes.
    pub killed: u64,
    /// Orphaned tasks re-placed onto surviving devices.
    pub replacements: u64,
    /// Link failures applied.
    pub link_failures: u64,
    /// Useful fraction of all execution seconds burned.
    pub goodput: f64,
}

/// Crash intensities swept (expected crashes per device per makespan).
pub fn intensities() -> Vec<f64> {
    vec![0.0, 0.5, 2.0]
}

/// Detection latencies swept, seconds.
pub fn detections_s() -> Vec<f64> {
    vec![0.05, 1.0]
}

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xF14);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 120,
            // Heavier tasks than the default: crashes should land
            // mid-execution, not between two sub-millisecond tasks.
            work_mu: (2e11f64).ln(),
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());
    let reqs = [StreamRequest {
        arrival: SimTime::ZERO,
        dag: dag.clone(),
        placement,
    }];
    let clean = simulate_stream(world.env(), &reqs);
    let base_mk = clean.metrics.makespan_s;
    let n_dev = world.env().fleet.len() as u32;
    let n_links = world.env().topology.links().len() as u32;

    let mut rows = Vec::new();
    let mut table = Table::new(
        "F14 — device/link churn vs detection latency (chaos executor)",
        &[
            "crashes/dev",
            "detect (s)",
            "makespan (s)",
            "inflation",
            "killed",
            "re-placed",
            "link fails",
            "goodput",
        ],
    );
    for &intensity in &intensities() {
        for &det in &detections_s() {
            // Zero intensity is detection-invariant; measure it once.
            if intensity == 0.0 && det != detections_s()[0] {
                continue;
            }
            let schedule = if intensity == 0.0 {
                FaultSchedule::new()
            } else {
                let mttf = base_mk / intensity;
                FaultSchedule::generate(
                    &FaultScheduleSpec {
                        horizon: SimDuration::from_secs_f64(base_mk * 1.5),
                        devices: FaultProcess {
                            population: n_dev,
                            mttf_s: mttf,
                            mttr_s: base_mk * 0.3,
                        },
                        links: FaultProcess {
                            population: n_links,
                            mttf_s: mttf * 4.0,
                            mttr_s: base_mk * 0.1,
                        },
                        ..Default::default()
                    },
                    0xF14 ^ intensity.to_bits(),
                )
            };
            let plane = FaultPlane {
                schedule,
                detection: SimDuration::from_secs_f64(det),
            };
            let out = simulate_stream_chaos(world.env(), &reqs, None, Some(&plane));
            let total_exec_s: f64 = out
                .trace
                .records
                .iter()
                .map(|r| r.duration().as_secs_f64())
                .sum();
            let goodput = if total_exec_s > 0.0 {
                1.0 - out.trace.lost_work_s / total_exec_s
            } else {
                1.0
            };
            let row = Row {
                intensity,
                detection_s: det,
                makespan_s: out.metrics.makespan_s,
                inflation: out.metrics.makespan_s / base_mk,
                killed: out.trace.killed_attempts,
                replacements: out.trace.replacements,
                link_failures: out.trace.link_failures,
                goodput,
            };
            table.row(vec![
                f(intensity),
                f(det),
                f(row.makespan_s),
                format!("{:.2}x", row.inflation),
                row.killed.to_string(),
                row.replacements.to_string(),
                row.link_failures.to_string(),
                format!("{:.3}", row.goodput),
            ]);
            rows.push(row);
        }
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_fault_row_reproduces_clean_makespan_exactly() {
        let (_, rows) = super::run();
        // Row 0 is the empty schedule: bit-identical to the fault-free
        // executor, so inflation is exactly 1 — no tolerance.
        assert_eq!(rows[0].intensity, 0.0);
        assert_eq!(rows[0].inflation, 1.0);
        assert_eq!(rows[0].killed, 0);
        assert_eq!(rows[0].replacements, 0);
        assert_eq!(rows[0].goodput, 1.0);
    }

    #[test]
    fn churn_kills_work_and_inflates_makespan() {
        let (_, rows) = super::run();
        let hot: Vec<_> = rows.iter().filter(|r| r.intensity >= 2.0).collect();
        assert!(!hot.is_empty());
        for r in hot {
            assert!(
                r.killed > 0,
                "no attempts killed at intensity {}",
                r.intensity
            );
            assert!(r.replacements > 0, "orphans not re-placed: {r:?}");
            assert!(r.goodput < 1.0, "goodput unchanged: {r:?}");
            assert!(
                r.inflation >= 1.0,
                "crashes sped the run up: {}",
                r.inflation
            );
        }
    }
}
