//! F5 — placement-engine scalability (a systems check on the engine
//! itself).
//!
//! Two questions: (a) how fast does HEFT construct schedules as the DAG
//! grows (tasks/second of scheduling throughput), and (b) how well does
//! the annealing refiner scale across rayon threads (its restarts are
//! embarrassingly parallel)?

use crate::report::{f, Table};
use continuum_core::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// `"heft-throughput"` or `"anneal-speedup"`.
    pub kind: String,
    /// DAG size (throughput) or thread count (speedup).
    pub param: usize,
    /// Wall seconds for the measured operation.
    pub seconds: f64,
    /// Tasks/s (throughput) or speedup vs 1 thread (speedup).
    pub value: f64,
}

/// DAG sizes for throughput measurement.
pub fn sizes() -> Vec<usize> {
    vec![100, 200, 400, 800, 1600]
}

/// Thread counts for the annealing-speedup measurement.
pub fn threads() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= max.max(1))
        .collect()
}

/// Run both measurements. Returns two tables (throughput, speedup).
pub fn run() -> (Vec<Table>, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F5a — HEFT schedule-construction throughput",
        &["tasks", "time (s)", "tasks/s"],
    );
    for &n in &sizes() {
        let mut rng = Rng::new(0xF5);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: n,
                width: 16,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let placement = world.place(&dag, &HeftPlacer::default());
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(placement.assignment.len(), n);
        let thpt = n as f64 / secs;
        table.row(vec![n.to_string(), f(secs), f(thpt)]);
        rows.push(Row {
            kind: "heft-throughput".into(),
            param: n,
            seconds: secs,
            value: thpt,
        });
    }

    let mut table_b = Table::new(
        "F5b — annealing restart speedup vs rayon threads",
        &["threads", "time (s)", "speedup"],
    );
    let mut rng = Rng::new(0xF5B);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 120,
            width: 8,
            ..Default::default()
        },
    );
    let annealer = AnnealingPlacer {
        iters: 150,
        restarts: 8,
        ..Default::default()
    };
    let mut base = None;
    for &t in &threads() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("rayon pool");
        let t0 = Instant::now();
        pool.install(|| {
            let _ = annealer.place(world.env(), &dag);
        });
        let secs = t0.elapsed().as_secs_f64();
        let base_secs = *base.get_or_insert(secs);
        let speedup = base_secs / secs;
        table_b.row(vec![t.to_string(), f(secs), format!("{speedup:.2}x")]);
        rows.push(Row {
            kind: "anneal-speedup".into(),
            param: t,
            seconds: secs,
            value: speedup,
        });
    }

    (vec![table, table_b], rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn throughput_positive_and_speedup_sane() {
        let (_, rows) = super::run();
        for r in &rows {
            assert!(r.seconds > 0.0);
            assert!(r.value > 0.0);
        }
        // The engine should schedule at least hundreds of tasks/second.
        let thpt: Vec<_> = rows
            .iter()
            .filter(|r| r.kind == "heft-throughput")
            .collect();
        assert!(thpt.iter().any(|r| r.value > 100.0));
    }
}
