//! F3 — scheduler shoot-out on random layered DAGs (Q1 at scale).
//!
//! Random layered workflows of growing size are placed by every policy in
//! the line-up and executed in the contended simulator. Makespans are
//! normalized to HEFT. Expected ordering: the EFT family (greedy,
//! min-min, max-min, cpop, peft, heft, data-aware) clusters within a few
//! percent of each other, and the network-blind baselines (round-robin,
//! random) sit two orders of magnitude behind.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Number of tasks in the DAG.
    pub tasks: usize,
    /// Policy name.
    pub policy: String,
    /// Mean simulated makespan over the repetitions, seconds.
    pub makespan_s: f64,
    /// Makespan normalized to HEFT's on the same DAGs.
    pub norm_to_heft: f64,
}

/// DAG sizes swept.
pub fn sizes() -> Vec<usize> {
    vec![50, 100, 200, 400]
}

/// Repetitions (distinct seeds) averaged per point.
pub const REPS: u64 = 3;

/// Run the shoot-out.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let policies: Vec<Box<dyn Placer>> = vec![
        Box::new(RandomPlacer::new(0xF3)),
        Box::new(RoundRobinPlacer),
        Box::new(DataAwarePlacer),
        Box::new(GreedyEftPlacer::default()),
        Box::new(MinMinPlacer),
        Box::new(MaxMinPlacer),
        Box::new(CpopPlacer::default()),
        Box::new(PeftPlacer::default()),
        Box::new(HeftPlacer::default()),
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F3 — makespan normalized to HEFT on random layered DAGs",
        &[
            "tasks",
            "random",
            "round-robin",
            "data-aware",
            "greedy-eft",
            "min-min",
            "max-min",
            "cpop",
            "peft",
            "heft (s)",
        ],
    );
    for &n in &sizes() {
        // Mean makespan per policy over REPS seeds.
        let mut means = vec![0.0f64; policies.len()];
        for rep in 0..REPS {
            let mut rng = Rng::new(0xF3_000 + rep);
            let dag = layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: n,
                    width: 8,
                    ..Default::default()
                },
            );
            for (i, p) in policies.iter().enumerate() {
                means[i] += world.run(&dag, p.as_ref()).simulated.makespan_s;
            }
        }
        for m in &mut means {
            *m /= REPS as f64;
        }
        let heft = means[policies.len() - 1];
        let mut cells = vec![n.to_string()];
        for (i, p) in policies.iter().enumerate() {
            let norm = means[i] / heft;
            rows.push(Row {
                tasks: n,
                policy: p.name().to_string(),
                makespan_s: means[i],
                norm_to_heft: norm,
            });
            if i < policies.len() - 1 {
                cells.push(format!("{norm:.2}x"));
            }
        }
        cells.push(f(heft));
        table.row(cells);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn heft_is_the_reference_winner() {
        let (_, rows) = super::run();
        for r in &rows {
            if r.policy == "heft" {
                assert!((r.norm_to_heft - 1.0).abs() < 1e-9);
            }
            // Nothing beats HEFT by more than noise on average.
            assert!(
                r.norm_to_heft > 0.95,
                "{} at n={} is {}",
                r.policy,
                r.tasks,
                r.norm_to_heft
            );
        }
        // Random is clearly worst at the largest size.
        let at = |policy: &str, n: usize| {
            rows.iter()
                .find(|r| r.policy == policy && r.tasks == n)
                .map(|r| r.norm_to_heft)
                .expect("row")
        };
        let n = *super::sizes().last().expect("sizes");
        assert!(at("random", n) > at("greedy-eft", n));
        assert!(at("round-robin", n) > at("greedy-eft", n));
    }
}
