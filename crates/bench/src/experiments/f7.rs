//! F7 — function-fabric throughput and balance (the funcX-analogue
//! evaluation).
//!
//! A 5-Gflop inference function is served by endpoints on the fog and
//! cloud tiers. The offered load and the endpoint count are swept for
//! each routing policy; we report sustained throughput, tail latency, and
//! Jain fairness of per-endpoint completions.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_fabric::{endpoints_on, run_fabric, FunctionRegistry, Invocation, RoutingPolicy};
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Routing policy label.
    pub policy: String,
    /// Offered rate, invocations/second.
    pub rate_hz: f64,
    /// Endpoints serving.
    pub endpoints: usize,
    /// Sustained completions/second.
    pub throughput_hz: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Jain fairness of per-endpoint completion counts.
    pub jain: f64,
}

/// Offered rates swept, invocations/second.
pub fn rates() -> Vec<f64> {
    vec![50.0, 200.0, 800.0]
}

/// Invocations per run.
pub const INVOCATIONS: usize = 4_000;

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut registry = FunctionRegistry::new();
    let infer = registry.register("infer", 5e9, 200 << 10, 1 << 10);
    let mut devices = world.env().fleet.in_tier(Tier::Fog);
    devices.extend(world.env().fleet.in_tier(Tier::Cloud));
    let endpoints = endpoints_on(world.env(), &devices);

    let mut rows = Vec::new();
    let mut table = Table::new(
        "F7 — fabric throughput / latency / balance vs offered load",
        &[
            "policy",
            "rate (/s)",
            "eps",
            "thpt (/s)",
            "p50 (s)",
            "p99 (s)",
            "jain",
        ],
    );
    for &rate in &rates() {
        let mut rng = Rng::new(0xF7);
        let mut t = 0.0;
        let invocations: Vec<Invocation> = (0..INVOCATIONS)
            .map(|i| {
                t += rng.exp(rate);
                Invocation {
                    arrival: SimTime::from_secs_f64(t),
                    origin: world.sensors()[i % world.sensors().len()],
                    function: infer,
                }
            })
            .collect();
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::Locality,
        ] {
            let rep = run_fabric(world.env(), &registry, &endpoints, &invocations, policy);
            let (p50, _, p99) = rep.latency_percentiles();
            table.row(vec![
                policy.label().to_string(),
                f(rate),
                endpoints.len().to_string(),
                f(rep.throughput_hz),
                f(p50),
                f(p99),
                format!("{:.3}", rep.jain),
            ]);
            rows.push(Row {
                policy: policy.label().to_string(),
                rate_hz: rate,
                endpoints: endpoints.len(),
                throughput_hz: rep.throughput_hz,
                p50_s: p50,
                p99_s: p99,
                jain: rep.jain,
            });
        }
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fabric_sustains_offered_load_and_locality_cuts_latency() {
        let (_, rows) = super::run();
        for r in &rows {
            // At sub-saturation rates the fabric keeps up (within 10%).
            if r.rate_hz <= 200.0 {
                assert!(
                    r.throughput_hz > r.rate_hz * 0.9,
                    "{} @ {}: thpt {}",
                    r.policy,
                    r.rate_hz,
                    r.throughput_hz
                );
            }
            assert!(r.p50_s <= r.p99_s);
        }
        // Locality beats round-robin on median latency at low load.
        let p50 = |policy: &str, rate: f64| {
            rows.iter()
                .find(|r| r.policy == policy && r.rate_hz == rate)
                .map(|r| r.p50_s)
                .expect("row")
        };
        assert!(p50("locality", 50.0) <= p50("round-robin", 50.0));
        // Round-robin stays near-perfectly balanced everywhere.
        for r in rows.iter().filter(|r| r.policy == "round-robin") {
            assert!(r.jain > 0.95);
        }
    }
}
