//! F1 — the edge/cloud crossover (Q1: "where should I compute?").
//!
//! An analytics pipeline born at a sensor is swept from 1 KB to 1 GB of
//! input. Edge-only keeps work near the data; cloud-only ships everything
//! upstream; the continuum-aware policies decide per task. The expected
//! shape: edge wins below the crossover (~tens of KB at default
//! parameters, where WAN latency outweighs edge compute), cloud wins far
//! above it, and HEFT tracks the lower envelope throughout.

use crate::report::{bytes, f, Table};
use continuum_core::prelude::*;
use rayon::prelude::*;
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Pipeline input size, bytes.
    pub input_bytes: u64,
    /// Policy name.
    pub policy: String,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Bytes that crossed links.
    pub bytes_moved: u64,
}

/// Input sizes swept (log-spaced, 1 KB → 1 GB).
pub fn sizes() -> Vec<u64> {
    vec![
        1 << 10,
        8 << 10,
        64 << 10,
        512 << 10,
        4 << 20,
        32 << 20,
        256 << 20,
        1 << 30,
    ]
}

/// Run the sweep. Sweep points are independent, so they run across rayon
/// workers and are reassembled in size order.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let per_size: Vec<(Vec<String>, Vec<Row>)> = sizes()
        .into_par_iter()
        .map(|size| {
            let policies: Vec<Box<dyn Placer>> = vec![
                Box::new(TierPlacer::edge_only()),
                Box::new(TierPlacer::cloud_only()),
                Box::new(GreedyEftPlacer::default()),
                Box::new(DataAwarePlacer),
                Box::new(HeftPlacer::default()),
            ];
            let dag = analytics_pipeline(&PipelineSpec {
                source: world.sensors()[0],
                input_bytes: size,
                ..Default::default()
            });
            let mut rows = Vec::new();
            let mut cells = vec![bytes(size)];
            let mut best: Option<(f64, String)> = None;
            for p in &policies {
                let report = world.run(&dag, p.as_ref());
                let m = report.simulated;
                cells.push(f(m.makespan_s));
                if best
                    .as_ref()
                    .map(|(b, _)| m.makespan_s < *b)
                    .unwrap_or(true)
                {
                    best = Some((m.makespan_s, p.name().to_string()));
                }
                rows.push(Row {
                    input_bytes: size,
                    policy: p.name().to_string(),
                    makespan_s: m.makespan_s,
                    bytes_moved: m.bytes_moved,
                });
            }
            cells.push(best.expect("at least one policy").1);
            (cells, rows)
        })
        .collect();
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F1 — pipeline makespan (s) vs input size: the edge/cloud crossover",
        &[
            "input",
            "edge-only",
            "cloud-only",
            "greedy-eft",
            "data-aware",
            "heft",
            "winner",
        ],
    );
    for (cells, mut r) in per_size {
        table.row(cells);
        rows.append(&mut r);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn f1_shape_holds() {
        let (_, rows) = super::run();
        let get = |size: u64, policy: &str| {
            rows.iter()
                .find(|r| r.input_bytes == size && r.policy == policy)
                .map(|r| r.makespan_s)
                .expect("row present")
        };
        // Small input: edge beats cloud. Large input: cloud beats edge.
        assert!(get(1 << 10, "edge-only") < get(1 << 10, "cloud-only"));
        assert!(get(1 << 30, "cloud-only") < get(1 << 30, "edge-only"));
        // HEFT tracks the lower envelope at the extremes.
        assert!(get(1 << 10, "heft") <= get(1 << 10, "edge-only") * 1.01);
        assert!(get(1 << 30, "heft") <= get(1 << 30, "cloud-only") * 1.01);
    }
}
