//! F2 — the Gilder sweep (claim C1: "the machine disintegrates").
//!
//! Every link bandwidth in the continuum is scaled by a factor swept over
//! six orders of magnitude, moving the mean Gilder ratio (bits/s of access
//! bandwidth per flop/s of compute) from deep network-starved territory to
//! network-as-fast-as-memory. For each point, HEFT places a batch of
//! sensor-born pipelines and we record what fraction of the work leaves
//! the edge — the *disintegration fraction* — plus the makespan.
//!
//! Expected shape: a sigmoid. With slow networks all work hugs the data
//! (fraction ≈ pinned-only); past a knee the optimal placement spreads
//! across fog/cloud/HPC (fraction → 1) and the makespan collapses.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_net::{mean_gilder_ratio, Tier};
use rayon::prelude::*;
use serde::Serialize;

/// One measured point of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Bandwidth multiplier applied to every link.
    pub bandwidth_scale: f64,
    /// Mean Gilder ratio (bits per flop) over compute devices.
    pub gilder_ratio: f64,
    /// Fraction of unpinned tasks placed off the edge (tier >= fog).
    pub off_edge_fraction: f64,
    /// Simulated makespan of the workload, seconds.
    pub makespan_s: f64,
}

/// Bandwidth scale factors swept (finer steps around the knee).
pub fn scales() -> Vec<f64> {
    vec![
        0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 1.0, 10.0, 100.0, 1000.0,
    ]
}

/// Run the sweep. Each scale point rebuilds its own world and is fully
/// independent, so points run across rayon workers; results are
/// reassembled in sweep order.
pub fn run() -> (Table, Vec<Row>) {
    let per_scale: Vec<Row> = scales().into_par_iter().map(run_point).collect();
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F2 — Gilder sweep: off-edge placement fraction vs network:compute ratio",
        &[
            "bw scale",
            "gilder (bit/flop)",
            "off-edge frac",
            "makespan (s)",
        ],
    );
    for row in per_scale {
        table.row(vec![
            format!("{}", row.bandwidth_scale),
            f(row.gilder_ratio),
            f(row.off_edge_fraction),
            f(row.makespan_s),
        ]);
        rows.push(row);
    }
    (table, rows)
}

/// One point of the sweep.
fn run_point(scale: f64) -> Row {
    let scenario = Scenario::default_continuum();
    let mut built = scenario.build();
    std::sync::Arc::make_mut(&mut built.topology).scale_bandwidth(scale);
    let fleet = standard_fleet(&built);
    let world = Continuum::from_parts(built.clone(), fleet);

    // Workload: heterogeneous layered DAGs born at the edge gateways.
    // Task work and data sizes span two log-normal decades, so each
    // task has its own break-even bandwidth and the off-edge fraction
    // climbs gradually as the network speeds up.
    let mut dags = Vec::new();
    let mut rng = continuum_sim::Rng::new(0xF2);
    for (i, &e) in built.edges.iter().enumerate() {
        if i % 2 == 0 {
            dags.push(layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 30,
                    width: 6,
                    work_sigma: 1.5,
                    bytes_sigma: 1.5,
                    source: e,
                    // Allow every tier: the question is where work goes.
                    min_mem_bytes: 0,
                    ..Default::default()
                },
            ));
        }
    }

    let gilder = {
        let compute_nodes: Vec<_> = world.env().fleet.devices().iter().map(|d| d.node).collect();
        mean_gilder_ratio(world.topology(), &compute_nodes, |n| {
            world
                .env()
                .fleet
                .at_node(n)
                .first()
                .map(|&d| world.env().fleet.device(d).spec.flops)
                .unwrap_or(1.0)
        })
    };

    let mut off_edge = 0usize;
    let mut unpinned = 0usize;
    let mut makespan: f64 = 0.0;
    for dag in &dags {
        let report = world.run(dag, &HeftPlacer::default());
        makespan = makespan.max(report.simulated.makespan_s);
        for task in dag.tasks() {
            if task.constraints.pinned_node.is_none() {
                unpinned += 1;
                let dev = report.placement.device(task.id);
                if world.env().fleet.device(dev).spec.tier >= Tier::Fog {
                    off_edge += 1;
                }
            }
        }
    }
    Row {
        bandwidth_scale: scale,
        gilder_ratio: gilder,
        off_edge_fraction: off_edge as f64 / unpinned as f64,
        makespan_s: makespan,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn disintegration_is_monotone_ish() {
        let (_, rows) = super::run();
        let first = rows.first().expect("rows");
        let last = rows.last().expect("rows");
        // Slow network keeps work local; fast network disintegrates it.
        assert!(
            last.off_edge_fraction > first.off_edge_fraction + 0.3,
            "no disintegration: {} -> {}",
            first.off_edge_fraction,
            last.off_edge_fraction
        );
        // Faster networks never hurt the makespan.
        assert!(last.makespan_s <= first.makespan_s);
        // The Gilder ratio itself scales linearly with bandwidth.
        assert!(last.gilder_ratio > first.gilder_ratio * 1e5);
    }
}
