//! F8 — facility design: "where should I place my computers?" (Q3).
//!
//! A fixed budget of machines is split between edge gateways and cloud
//! VMs across five deployments, from cloud-heavy (1 gateway per fog,
//! 7 VMs) to edge-heavy (8 gateways per fog, 1 VM). The fog tier carries
//! no compute in this experiment (pure aggregation), and the WAN is
//! expensive (100 ms, 20 MB/s) — the regime in which the split matters.
//!
//! The workload has both of the keynote's demand shapes: a latency-
//! sensitive inference stream (wants edge capacity) and throughput batch
//! fork-joins (want fast cloud cores). The facility objective combines
//! them; the expected shape is a U: both extremes lose, a mixed build
//! wins.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_model::Fleet;
use continuum_net::ContinuumSpec;
use continuum_sim::Percentiles;
use serde::Serialize;

/// One deployment point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Edge gateways per fog site.
    pub edges_per_fog: usize,
    /// Cloud VM count.
    pub clouds: usize,
    /// Worst batch makespan, seconds.
    pub batch_makespan_s: f64,
    /// Stream p95 latency, seconds.
    pub stream_p95_s: f64,
    /// Combined facility objective: batch + 10 × stream p95.
    pub score: f64,
}

/// The capacity splits swept: (edges_per_fog, clouds).
pub fn splits() -> Vec<(usize, usize)> {
    vec![(1, 7), (2, 5), (4, 4), (6, 2), (8, 1)]
}

/// Stream arrival rate, requests/second.
pub const STREAM_RATE: f64 = 150.0;
/// Stream requests per run.
pub const STREAM_REQUESTS: usize = 450;
/// Inference work per request, flops (~33 ms on an edge-gateway core).
pub const INFER_FLOPS: f64 = 1e8;

fn build_world(epf: usize, clouds: usize) -> Continuum {
    use continuum_net::LinkSpec;
    use continuum_sim::SimDuration;
    let scenario = Scenario {
        name: "f8",
        spec: ContinuumSpec {
            fogs: 2,
            edges_per_fog: epf,
            sensors_per_edge: (16 / epf).max(1),
            clouds,
            hpcs: 0,
            // Expensive WAN: 100 ms, 20 MB/s.
            fog_cloud: LinkSpec::new(SimDuration::from_millis(100), 2e7),
            ..ContinuumSpec::default()
        },
    };
    let built = scenario.build();
    // Custom fleet: fogs are pure aggregation switches (no compute), every
    // cloud node is a plain CloudVm — the capacity story is edge vs cloud.
    let mut fleet = Fleet::new();
    for &s in &built.sensors {
        fleet.add_class(s, DeviceClass::SensorMote);
    }
    for &e in &built.edges {
        fleet.add_class(e, DeviceClass::EdgeGateway);
    }
    for &c in &built.clouds {
        fleet.add_class(c, DeviceClass::CloudVm);
    }
    Continuum::from_parts(built, fleet)
}

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F8 — facility design: shifting capacity between edge and cloud",
        &[
            "edges/fog",
            "clouds",
            "batch makespan (s)",
            "stream p95 (s)",
            "score",
        ],
    );
    for &(epf, clouds) in &splits() {
        let world = build_world(epf, clouds);

        // Batch: one wide fork-join per fog region (compute-heavy, light
        // data, so cloud cores are what it wants).
        let mut batch: f64 = 0.0;
        for f_i in 0..2usize {
            let sensor = world.sensors()[f_i * world.sensors().len() / 2];
            let dag = fork_join(sensor, 32, 2 << 20, 2e10, 64 << 10);
            batch = batch.max(world.run(&dag, &HeftPlacer::default()).simulated.makespan_s);
        }

        // Stream: light inference at a rate that saturates a thin edge.
        let mut rng = Rng::new(0xF8);
        let stream = inference_stream(
            &mut rng,
            &StreamSpec {
                sensors: world.sensors().to_vec(),
                requests: STREAM_REQUESTS,
                rate_hz: STREAM_RATE,
                frame_bytes: 200 << 10,
                infer_flops: INFER_FLOPS,
            },
        );
        let mut placer = OnlinePlacer::continuum(world.env());
        let placed: Vec<_> = stream
            .requests
            .into_iter()
            .map(|(arrival, dag)| {
                let (p, _) = placer.place_request(world.env(), &dag, arrival);
                (arrival, dag, p)
            })
            .collect();
        let trace = world.run_stream(placed);
        let mut perc = Percentiles::new();
        for l in trace.latencies_s() {
            perc.push(l);
        }
        let p95 = perc.quantile(0.95).expect("non-empty");

        let score = batch + 10.0 * p95;
        table.row(vec![
            epf.to_string(),
            clouds.to_string(),
            f(batch),
            f(p95),
            f(score),
        ]);
        rows.push(Row {
            edges_per_fog: epf,
            clouds,
            batch_makespan_s: batch,
            stream_p95_s: p95,
            score,
        });
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn extremes_do_not_win() {
        let (_, rows) = super::run();
        let best = rows
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).expect("no NaN"))
            .expect("rows");
        let first = rows.first().expect("rows");
        let last = rows.last().expect("rows");
        assert!(best.score <= first.score && best.score <= last.score);
        assert!(
            best.score < first.score.max(last.score) * 0.999,
            "flat facility landscape: best {} vs extremes {} / {}",
            best.score,
            first.score,
            last.score
        );
        // The two demand shapes pull in opposite directions somewhere in
        // the sweep: batch prefers cloud-rich, stream prefers edge-rich.
        assert!(
            last.batch_makespan_s > first.batch_makespan_s,
            "batch insensitive to cloud capacity"
        );
    }
}
