//! F12 — deadline-aware placement: meet the SLO, spend the minimum tier.
//!
//! Streaming inference with a 400 ms latency SLO. The *eager* online
//! policy always chases the minimum predicted latency — burning fog and
//! cloud capacity on requests the edge could have served within the SLO.
//! The *deadline-aware* policy escalates up the continuum only as far as
//! the SLO requires. Both are executed in the contended simulator; we
//! report the measured SLO miss fraction and the fraction of (unpinned)
//! tasks placed off the edge.
//!
//! Expected shape: below saturation both policies miss nothing, but the
//! deadline-aware policy keeps all unpinned work at the edge where the
//! eager policy ships all of it upstream; past saturation (400 req/s on
//! this scenario's 2-gateway edge) both miss heavily — overload is
//! overload — and the deadline-aware policy visibly escalates part of its
//! traffic off the edge. "Where should I compute?" answered with *no
//! further than necessary*.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_net::Tier as NetTier;
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Offered rate, requests/second.
    pub rate_hz: f64,
    /// Policy label.
    pub policy: String,
    /// Fraction of requests whose simulated latency exceeded the SLO.
    pub miss_fraction: f64,
    /// Fraction of unpinned tasks placed at fog tier or above.
    pub off_edge_fraction: f64,
}

/// The latency SLO.
pub fn slo() -> SimDuration {
    SimDuration::from_millis(400)
}

/// Arrival rates swept, requests/second.
pub fn rates() -> Vec<f64> {
    vec![10.0, 50.0, 150.0, 300.0]
}

/// Requests per run.
pub const REQUESTS: usize = 400;

/// Run the comparison.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&crate::experiments::f4::scenario());
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F12 — SLO misses and tier footprint: eager vs deadline-aware",
        &["rate (/s)", "policy", "miss frac", "off-edge frac"],
    );
    for &rate in &rates() {
        let mut rng = Rng::new(0xF12);
        let stream = inference_stream(
            &mut rng,
            &StreamSpec {
                sensors: world.sensors().to_vec(),
                requests: REQUESTS,
                rate_hz: rate,
                frame_bytes: 200 << 10,
                infer_flops: 1e8,
            },
        );
        for deadline_aware in [false, true] {
            let mut placer = OnlinePlacer::continuum(world.env());
            let mut off_edge = 0usize;
            let mut unpinned = 0usize;
            let placed: Vec<_> = stream
                .requests
                .iter()
                .map(|(arrival, dag)| {
                    let placement = if deadline_aware {
                        placer
                            .place_request_deadline(world.env(), dag, *arrival, slo())
                            .0
                    } else {
                        placer.place_request(world.env(), dag, *arrival).0
                    };
                    for task in dag.tasks() {
                        if task.constraints.pinned_node.is_none() {
                            unpinned += 1;
                            let tier = world
                                .env()
                                .fleet
                                .device(placement.device(task.id))
                                .spec
                                .tier;
                            if tier >= NetTier::Fog {
                                off_edge += 1;
                            }
                        }
                    }
                    (*arrival, dag.clone(), placement)
                })
                .collect();
            let trace = world.run_stream(placed);
            let slo_s = slo().as_secs_f64();
            let lats = trace.latencies_s();
            let misses = lats.iter().filter(|&&l| l > slo_s).count();
            let row = Row {
                rate_hz: rate,
                policy: if deadline_aware {
                    "deadline-aware"
                } else {
                    "eager"
                }
                .into(),
                miss_fraction: misses as f64 / lats.len() as f64,
                off_edge_fraction: off_edge as f64 / unpinned as f64,
            };
            table.row(vec![
                f(rate),
                row.policy.clone(),
                format!("{:.1}%", row.miss_fraction * 100.0),
                f(row.off_edge_fraction),
            ]);
            rows.push(row);
        }
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn deadline_awareness_saves_tier_without_blowing_slo() {
        let (_, rows) = super::run();
        let get = |rate: f64, policy: &str| {
            rows.iter()
                .find(|r| r.rate_hz == rate && r.policy == policy)
                .expect("row present")
        };
        for &rate in &super::rates() {
            let eager = get(rate, "eager");
            let aware = get(rate, "deadline-aware");
            // The SLO holds (or nearly holds) under both policies at the
            // swept loads.
            assert!(
                aware.miss_fraction <= eager.miss_fraction + 0.05,
                "deadline-aware misses more at {rate}/s: {} vs {}",
                aware.miss_fraction,
                eager.miss_fraction
            );
            // The footprint saving is the point.
            assert!(
                aware.off_edge_fraction <= eager.off_edge_fraction,
                "no tier saving at {rate}/s: {} vs {}",
                aware.off_edge_fraction,
                eager.off_edge_fraction
            );
        }
        // At the lowest rate the saving is substantial.
        let low = super::rates()[0];
        assert!(
            get(low, "deadline-aware").off_edge_fraction
                < get(low, "eager").off_edge_fraction - 0.2,
            "saving too small at low rate"
        );
    }
}
