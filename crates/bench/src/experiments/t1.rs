//! T1 — device-class characterization table.
//!
//! Answers Q2 ("for what workloads should I design computers?") by laying
//! out the five-orders-of-magnitude compute range of the continuum, with
//! the network tier, power, and billing context each class lives in.

use crate::report::{bytes, f, Table};
use continuum_model::catalog;

/// Build the T1 table.
pub fn run() -> Table {
    let mut t = Table::new(
        "T1 — device catalog (the continuum's hardware classes)",
        &[
            "class",
            "tier",
            "cores",
            "Gflop/s",
            "memory",
            "idle W",
            "busy W",
            "$/h",
            "egress $/GB",
        ],
    );
    for spec in catalog::all() {
        t.row(vec![
            spec.class.label().to_string(),
            spec.tier.label().to_string(),
            spec.cores.to_string(),
            f(spec.flops / 1e9),
            bytes(spec.mem_bytes),
            f(spec.idle_watts),
            f(spec.busy_watts),
            f(spec.usd_per_hour),
            f(spec.egress_usd_per_gb),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn t1_has_all_classes() {
        let t = super::run();
        assert_eq!(t.rows.len(), continuum_model::DeviceClass::ALL.len());
    }
}
