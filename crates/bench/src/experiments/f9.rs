//! F9 — resilience under task failures.
//!
//! The continuum's devices are not a machine room: edge gear loses power,
//! preemptible VMs vanish, wireless drops. The executor injects per-attempt
//! task failures (the burned work is still charged) with same-device retry
//! after a delay; this experiment sweeps the failure probability and
//! reports makespan inflation, retries, and the energy overhead of wasted
//! attempts.
//!
//! Expected shape: inflation grows monotonically (roughly like
//! `1/(1-p)` plus retry-delay and critical-path effects), and failure
//! energy overhead tracks the number of retries.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_runtime::{simulate_stream_with_faults, FaultSpec, StreamRequest};
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Per-attempt failure probability.
    pub fail_prob: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Makespan relative to the fault-free run.
    pub inflation: f64,
    /// Failed attempts across the workflow.
    pub retries: u64,
    /// Energy relative to the fault-free run.
    pub energy_overhead: f64,
}

/// Failure probabilities swept.
pub fn probs() -> Vec<f64> {
    vec![0.0, 0.01, 0.05, 0.10, 0.20, 0.35]
}

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xF9);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 120,
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());
    let reqs = [StreamRequest {
        arrival: SimTime::ZERO,
        dag: dag.clone(),
        placement,
    }];

    let mut rows = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    let mut table = Table::new(
        "F9 — makespan inflation vs per-attempt task failure probability",
        &[
            "fail prob",
            "makespan (s)",
            "inflation",
            "retries",
            "energy overhead",
        ],
    );
    for &p in &probs() {
        let faults = FaultSpec {
            fail_prob: p,
            retry_delay: SimDuration::from_millis(500),
            ..Default::default()
        };
        let out = simulate_stream_with_faults(world.env(), &reqs, Some(&faults));
        let (base_mk, base_en) =
            *baseline.get_or_insert((out.metrics.makespan_s, out.metrics.energy_j));
        let row = Row {
            fail_prob: p,
            makespan_s: out.metrics.makespan_s,
            inflation: out.metrics.makespan_s / base_mk,
            retries: out.trace.failed_attempts,
            energy_overhead: out.metrics.energy_j / base_en,
        };
        table.row(vec![
            f(p),
            f(row.makespan_s),
            format!("{:.2}x", row.inflation),
            row.retries.to_string(),
            format!("{:.2}x", row.energy_overhead),
        ]);
        rows.push(row);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn inflation_monotone_ish_and_baseline_clean() {
        let (_, rows) = super::run();
        assert_eq!(rows[0].fail_prob, 0.0);
        assert_eq!(rows[0].retries, 0);
        assert!((rows[0].inflation - 1.0).abs() < 1e-12);
        let last = rows.last().expect("rows");
        assert!(
            last.retries > 10,
            "too few failures injected: {}",
            last.retries
        );
        assert!(
            last.inflation > 1.1,
            "failures did not hurt: {}",
            last.inflation
        );
        assert!(last.energy_overhead > 1.05);
        // Weak monotonicity across the sweep (allowing one local dip from
        // discrete retry timing).
        let dips = rows
            .windows(2)
            .filter(|w| w[1].inflation < w[0].inflation * 0.98)
            .count();
        assert!(dips <= 1, "inflation not increasing: {rows:?}");
    }
}
