//! The experiment suite: one module per table/figure of EXPERIMENTS.md.

pub mod ablations;
pub mod f1;
pub mod f10;
pub mod f11;
pub mod f12;
pub mod f13;
pub mod f14;
pub mod f15;
pub mod f16;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod f9;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
