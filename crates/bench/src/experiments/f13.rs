//! F13 — serverless elasticity: provisioning cost vs latency.
//!
//! A bursty diurnal-ish workload (dense bursts separated by long idle
//! stretches) hits cloud endpoints under three provisioning regimes:
//! *static-max* (every declared slot always on), *static-min* (one slot
//! per endpoint), and *elastic* (slots grow with queued work and shrink
//! when queues drain), each with a 1 s cold start and a 30 s keep-warm.
//!
//! Expected shape: static-max buys the best latency at maximal
//! slot-seconds; static-min inverts that; elastic sits near static-max
//! latency at near static-min cost — the pay-for-what-you-use argument
//! the serverless continuum makes.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_fabric::{
    endpoints_on, run_fabric_elastic, Autoscale, ColdStart, Endpoint, FunctionRegistry, Invocation,
    RoutingPolicy,
};
use serde::Serialize;

/// One measured regime.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Provisioning regime.
    pub regime: String,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Slot-seconds consumed (provisioning cost).
    pub slot_seconds: f64,
}

/// Bursts in the workload.
pub const BURSTS: usize = 4;
/// Invocations per burst.
pub const PER_BURST: usize = 120;
/// Idle gap between bursts, seconds.
pub const GAP_S: f64 = 180.0;

fn workload(world: &Continuum) -> Vec<Invocation> {
    let mut rng = Rng::new(0xF13);
    let mut invs = Vec::with_capacity(BURSTS * PER_BURST);
    for b in 0..BURSTS {
        for i in 0..PER_BURST {
            invs.push(Invocation {
                arrival: SimTime::from_secs_f64(b as f64 * GAP_S + rng.range_f64(0.0, 3.0)),
                origin: world.sensors()[i % world.sensors().len()],
                function: continuum_fabric::FunctionId(0),
            });
        }
    }
    invs.sort_by_key(|i| i.arrival);
    invs
}

/// Run the three regimes.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut registry = FunctionRegistry::new();
    registry.register("infer", 2e10, 100 << 10, 1 << 10);
    let endpoints = endpoints_on(world.env(), &world.env().fleet.in_tier(Tier::Cloud));
    let invocations = workload(&world);
    let cold = Some(ColdStart {
        cold_time: SimDuration::from_secs(1),
        keep_warm: SimDuration::from_secs(30),
    });

    let run_one = |eps: &[Endpoint], autoscale: Option<Autoscale>, regime: &str| -> Row {
        let rep = run_fabric_elastic(
            world.env(),
            &registry,
            eps,
            &invocations,
            RoutingPolicy::LeastOutstanding,
            cold,
            autoscale,
        );
        assert_eq!(rep.completed, invocations.len() as u64);
        let (p50, _, p99) = rep.latency_percentiles();
        Row {
            regime: regime.into(),
            p50_s: p50,
            p99_s: p99,
            slot_seconds: rep.slot_seconds,
        }
    };

    let static_min: Vec<Endpoint> = endpoints
        .iter()
        .map(|e| Endpoint {
            slots: 1,
            ..e.clone()
        })
        .collect();
    let rows = vec![
        run_one(&endpoints, None, "static-max"),
        run_one(&static_min, None, "static-min"),
        run_one(&endpoints, Some(Autoscale { min_slots: 1 }), "elastic"),
    ];

    let mut table = Table::new(
        "F13 — provisioning regimes on a bursty workload (1 s cold starts)",
        &["regime", "p50 (s)", "p99 (s)", "slot-seconds"],
    );
    for r in &rows {
        table.row(vec![
            r.regime.clone(),
            f(r.p50_s),
            f(r.p99_s),
            f(r.slot_seconds),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn elastic_near_max_latency_at_fraction_of_cost() {
        let (_, rows) = super::run();
        let by = |r: &str| rows.iter().find(|x| x.regime == r).expect("regime row");
        let maxr = by("static-max");
        let minr = by("static-min");
        let elastic = by("elastic");
        // Static-min pays in latency on bursts.
        assert!(
            minr.p99_s > maxr.p99_s,
            "min {} !> max {}",
            minr.p99_s,
            maxr.p99_s
        );
        // Elastic: large provisioning saving vs static-max...
        assert!(
            elastic.slot_seconds < maxr.slot_seconds * 0.5,
            "elastic {} vs max {}",
            elastic.slot_seconds,
            maxr.slot_seconds
        );
        // ...at far better tail latency than static-min.
        assert!(
            elastic.p99_s < minr.p99_s,
            "elastic p99 {} !< static-min {}",
            elastic.p99_s,
            minr.p99_s
        );
    }
}
