//! T4 — scenario characterization (the facility designer's datasheet).
//!
//! One row per built-in scenario: graph size, latency diameter, mean
//! sensor-to-cloud latency, aggregate link bandwidth, fleet compute, and
//! the resulting mean Gilder ratio. The table grounds every other
//! experiment: when F4 says "the cloud pays a WAN round-trip", this is
//! where that number lives.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_net::{mean_gilder_ratio, topology_stats, RouteTable};
use serde::Serialize;

/// One scenario's characterization.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Scenario name.
    pub scenario: String,
    /// Nodes in the topology.
    pub nodes: usize,
    /// Links in the topology.
    pub links: usize,
    /// Latency diameter, milliseconds.
    pub diameter_ms: f64,
    /// Mean sensor-to-nearest-cloud latency, milliseconds.
    pub sensor_to_cloud_ms: f64,
    /// Total fleet compute, Tflop/s.
    pub fleet_tflops: f64,
    /// Mean Gilder ratio over compute devices, bits/flop.
    pub gilder: f64,
}

/// Run the characterization.
pub fn run() -> (Table, Vec<Row>) {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "T4 — scenario characterization",
        &[
            "scenario",
            "nodes",
            "links",
            "diameter (ms)",
            "sensor→cloud (ms)",
            "Tflop/s",
            "gilder (bit/flop)",
        ],
    );
    for scenario in [
        Scenario::default_continuum(),
        Scenario::smart_city(),
        Scenario::science_campus(),
    ] {
        let built = scenario.build();
        let fleet = standard_fleet(&built);
        let routes = RouteTable::build(&built.topology);
        let st = topology_stats(&built.topology, &routes);
        let nodes_with_devices: Vec<_> = fleet.devices().iter().map(|d| d.node).collect();
        let gilder = mean_gilder_ratio(&built.topology, &nodes_with_devices, |n| {
            fleet
                .at_node(n)
                .first()
                .map(|&d| fleet.device(d).spec.flops)
                .unwrap_or(1.0)
        });
        let row = Row {
            scenario: scenario.name.to_string(),
            nodes: st.nodes,
            links: st.links,
            diameter_ms: st.diameter.as_secs_f64() * 1e3,
            sensor_to_cloud_ms: st.mean_sensor_to_cloud.as_secs_f64() * 1e3,
            fleet_tflops: fleet.total_flops() / 1e12,
            gilder,
        };
        table.row(vec![
            row.scenario.clone(),
            row.nodes.to_string(),
            row.links.to_string(),
            f(row.diameter_ms),
            f(row.sensor_to_cloud_ms),
            f(row.fleet_tflops),
            f(row.gilder),
        ]);
        rows.push(row);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn characterization_consistent() {
        let (_, rows) = super::run();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.nodes > 0 && r.links > 0);
            assert!(r.diameter_ms > 0.0);
            assert!(r.fleet_tflops > 0.0);
            assert!(r.gilder > 0.0);
        }
        let by = |n: &str| rows.iter().find(|r| r.scenario == n).expect("scenario row");
        // The smart city is the biggest graph; the campus is the fastest
        // sensor-to-cloud path and the biggest iron.
        assert!(by("smart-city").nodes > by("default").nodes);
        assert!(by("science-campus").sensor_to_cloud_ms < by("default").sensor_to_cloud_ms);
        assert!(by("science-campus").fleet_tflops > by("smart-city").fleet_tflops);
    }
}
