//! F10 — DVFS: race fast or crawl efficiently? (energy-aware Q3)
//!
//! The whole fleet is re-rated at relative frequencies from 0.3 to 1.0
//! (throughput × f, dynamic power × f³, static power unchanged) and a
//! core-saturating workload is placed and executed at each point.
//!
//! Expected shape: makespan falls monotonically with frequency, while
//! energy is U-shaped — `E(f) ≈ static/f + dynamic·f²` — with its minimum
//! strictly inside the sweep. Neither "race to idle" (f = 1) nor "crawl"
//! (f = 0.3) is energy-optimal; the continuum's frequency question has a
//! real answer in between.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_model::{fleet_at_frequency, standard_fleet};
use serde::Serialize;

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Relative frequency.
    pub freq: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Simulated energy, joules.
    pub energy_j: f64,
}

/// Frequencies swept.
pub fn freqs() -> Vec<f64> {
    vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
}

/// Run the sweep.
pub fn run() -> (Table, Vec<Row>) {
    let scenario = Scenario::default_continuum();
    let built = scenario.build();
    let base_fleet = standard_fleet(&built);

    // Core-saturating workload: wide layered DAG keeping devices busy so
    // dynamic energy dominates at f = 1.
    let mut rng = Rng::new(0xF10);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 300,
            width: 32,
            ..Default::default()
        },
    );

    let mut rows = Vec::new();
    let mut table = Table::new(
        "F10 — DVFS sweep: makespan and energy vs relative frequency",
        &["freq", "makespan (s)", "energy (J)"],
    );
    for &fr in &freqs() {
        let fleet = fleet_at_frequency(&base_fleet, fr);
        let world = Continuum::from_parts(built.clone(), fleet);
        let report = world.run(&dag, &HeftPlacer::default());
        let row = Row {
            freq: fr,
            makespan_s: report.simulated.makespan_s,
            energy_j: report.simulated.energy_j,
        };
        table.row(vec![f(fr), f(row.makespan_s), f(row.energy_j)]);
        rows.push(row);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn makespan_monotone_energy_u_shaped() {
        let (_, rows) = super::run();
        // Makespan strictly improves with frequency.
        for w in rows.windows(2) {
            assert!(
                w[1].makespan_s < w[0].makespan_s * 1.001,
                "makespan not decreasing: {} -> {}",
                w[0].makespan_s,
                w[1].makespan_s
            );
        }
        // Energy minimum is strictly inside the sweep.
        let min_idx = rows
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.energy_j.partial_cmp(&b.1.energy_j).expect("no NaN"))
            .map(|(i, _)| i)
            .expect("rows");
        assert!(
            min_idx != 0 && min_idx != rows.len() - 1,
            "energy not U-shaped: min at index {min_idx} of {:?}",
            rows.iter().map(|r| r.energy_j).collect::<Vec<_>>()
        );
    }
}
