//! T3 — validation: are the estimator's schedules realizable?
//!
//! The same placed workflow is (a) predicted by the analytic estimator,
//! (b) executed in the contended simulator, and (c) executed by the real
//! multi-threaded executor with scaled wall-clock duration. We report the
//! relative error of (c) against (a) — the claim being validated is that
//! the schedules the placement engine reasons about can actually be run
//! by a concurrent runtime with the predicted timing — and the
//! contention factor (b)/(a) as context.

use crate::report::{f, Table};
use continuum_core::prelude::*;
use continuum_placement::evaluate;
use serde::Serialize;

/// One validated workflow.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workflow label.
    pub workflow: String,
    /// Tasks in the DAG.
    pub tasks: usize,
    /// Estimated makespan, virtual seconds.
    pub estimated_s: f64,
    /// Simulated (contended) makespan, virtual seconds.
    pub simulated_s: f64,
    /// Real-executor makespan converted to virtual seconds.
    pub real_s: f64,
    /// |real − estimated| / estimated.
    pub real_vs_estimate_err: f64,
}

/// Wall seconds of emulation per virtual second — large enough that OS
/// jitter (~1 ms per scheduling hop) stays a small fraction of each
/// emulated interval.
pub const TIME_SCALE: f64 = 0.3;

/// Run the validation suite.
pub fn run() -> (Table, Vec<Row>) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0x73);
    let workloads: Vec<(String, Dag)> = vec![
        (
            "pipeline".into(),
            analytics_pipeline(&PipelineSpec {
                source: world.sensors()[0],
                input_bytes: 4 << 20,
                ..Default::default()
            }),
        ),
        (
            "fork-join".into(),
            fork_join(world.sensors()[1], 8, 1 << 20, 4e10, 1 << 16),
        ),
        (
            "layered".into(),
            layered_random(
                &mut rng,
                &LayeredSpec {
                    tasks: 40,
                    ..Default::default()
                },
            ),
        ),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(
        "T3 — estimator vs simulator vs real executor",
        &[
            "workflow",
            "tasks",
            "estimate (s)",
            "simulated (s)",
            "real (s)",
            "real err",
        ],
    );
    for (name, dag) in workloads {
        let placement = world.place(&dag, &HeftPlacer::default());
        let (_, est) = evaluate(world.env(), &dag, &placement);
        let sim = world.run(&dag, &HeftPlacer::default()).simulated;
        let real = RealExecutor {
            time_scale: TIME_SCALE,
        }
        .execute(world.env(), &dag, &placement);
        let err = (real.virtual_makespan_s - est.makespan_s).abs() / est.makespan_s;
        table.row(vec![
            name.clone(),
            dag.len().to_string(),
            f(est.makespan_s),
            f(sim.makespan_s),
            f(real.virtual_makespan_s),
            format!("{:.1}%", err * 100.0),
        ]);
        rows.push(Row {
            workflow: name,
            tasks: dag.len(),
            estimated_s: est.makespan_s,
            simulated_s: sim.makespan_s,
            real_s: real.virtual_makespan_s,
            real_vs_estimate_err: err,
        });
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn real_executor_tracks_estimates() {
        let (_, rows) = super::run();
        for r in &rows {
            assert!(
                r.real_vs_estimate_err < 0.30,
                "{}: real {} vs est {} (err {:.1}%)",
                r.workflow,
                r.real_s,
                r.estimated_s,
                r.real_vs_estimate_err * 100.0
            );
            // Simulation includes contention, so it can only be >= estimate.
            assert!(r.simulated_s >= r.estimated_s * 0.98);
        }
    }
}
