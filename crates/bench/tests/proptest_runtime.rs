//! Property-based equivalence: the dense-state stream executor vs the
//! vendored seed-era oracle.
//!
//! The `runtime` bench bin asserts bit-identity on two fixed workloads;
//! this test asserts it across *random* ones — random layered DAGs,
//! random staggered arrival streams, spread and clustered placements,
//! and generated device/link churn storms scaled to each workload's own
//! fault-free makespan. Everything in [`SimOutcome`] must match exactly:
//! every task record, every f64 metric, every fault counter.

use continuum_bench::seed_exec::simulate_stream_chaos_seed;
use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_runtime::{simulate_stream_chaos, StreamRequest};
use proptest::prelude::*;

fn world() -> Env {
    let built = continuum_net::continuum(&ContinuumSpec::default());
    Env::new(built.topology.clone(), standard_fleet(&built))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Dense executor == seed oracle, bit for bit, across random
    /// workloads and churn schedules.
    #[test]
    fn dense_executor_matches_seed_oracle(
        seed in any::<u64>(),
        n_tasks in 5usize..40,
        n_reqs in 1usize..4,
        spread in any::<bool>(),
        churn in any::<bool>(),
    ) {
        let env = world();
        let mut rng = Rng::new(seed);
        let dag = layered_random(
            &mut rng,
            &LayeredSpec {
                tasks: n_tasks,
                min_mem_bytes: 0,
                ..Default::default()
            },
        );
        // Spread placements make every DAG edge a transfer; clustered
        // (HEFT) placements exercise the co-located fast paths.
        let placement = if spread {
            RoundRobinPlacer.place(&env, &dag)
        } else {
            HeftPlacer::default().place(&env, &dag)
        };
        let reqs: Vec<StreamRequest> = (0..n_reqs)
            .map(|i| StreamRequest {
                arrival: SimTime::from_millis(50 * i as u64),
                dag: dag.clone(),
                placement: placement.clone(),
            })
            .collect();

        let plane = if churn {
            // Scale the storm to this workload's own fault-free makespan
            // so crashes land mid-run, not after everything finished.
            let clean = simulate_stream(&env, &reqs);
            let mk = clean.metrics.makespan_s.max(0.1);
            let schedule = FaultSchedule::generate(
                &FaultScheduleSpec {
                    horizon: SimDuration::from_secs_f64(mk * 1.5),
                    devices: FaultProcess {
                        population: env.fleet.len() as u32,
                        mttf_s: mk * 3.0,
                        mttr_s: mk * 0.3,
                    },
                    links: FaultProcess {
                        population: env.topology.links().len() as u32,
                        mttf_s: mk * 2.0,
                        mttr_s: mk * 0.2,
                    },
                    ..Default::default()
                },
                seed ^ 0xC4AF,
            );
            Some(FaultPlane {
                schedule,
                detection: SimDuration::from_millis(100),
            })
        } else {
            None
        };

        let dense = simulate_stream_chaos(&env, &reqs, None, plane.as_ref());
        let oracle = simulate_stream_chaos_seed(&env, &reqs, None, plane.as_ref());
        prop_assert_eq!(dense, oracle);
    }
}
