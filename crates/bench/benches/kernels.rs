//! Micro-benchmarks of the hot kernels underneath every experiment:
//! event-queue churn, PRNG draw, route-table construction, max-min rate
//! recomputation, and single EFT queries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use continuum_core::prelude::*;
use continuum_model::standard_fleet;
use continuum_net::{FlowNetwork, RouteTable};
use continuum_placement::Estimator;
use continuum_sim::{EventQueue, Rng as SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime(t), i);
            }
            let mut acc = 0usize;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64_x1000", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
}

fn bench_routes(c: &mut Criterion) {
    let built = Scenario::default_continuum().build();
    c.bench_function("route_table_build_48_nodes", |b| {
        b.iter(|| black_box(RouteTable::build(&built.topology)))
    });
}

fn bench_flow_rates(c: &mut Criterion) {
    let built = Scenario::default_continuum().build();
    let routes = RouteTable::build(&built.topology);
    let paths: Vec<_> = built
        .sensors
        .iter()
        .map(|&s| {
            routes
                .path(&built.topology, s, built.clouds[0])
                .expect("path")
        })
        .collect();
    c.bench_function("flow_network_32_concurrent_flows", |b| {
        b.iter_batched(
            || FlowNetwork::new(&built.topology),
            |mut fnw| {
                for p in &paths {
                    fnw.start(SimTime::ZERO, p, 1 << 20);
                }
                black_box(fnw.next_completion())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_eft_query(c: &mut Criterion) {
    let built = Scenario::default_continuum().build();
    let env = continuum_placement::Env::new(built.topology.clone(), standard_fleet(&built));
    let mut rng = SimRng::new(3);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 100,
            ..Default::default()
        },
    );
    c.bench_function("estimator_eft_scan_all_devices", |b| {
        let est = Estimator::new(&env, &dag);
        let sources = dag.sources();
        let t = sources[0];
        b.iter(|| {
            let mut best = SimTime::MAX;
            for d in env.fleet.devices() {
                let (_, fin) = est.eft(t, d.id, true);
                best = best.min(fin);
            }
            black_box(best)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_rng, bench_routes, bench_flow_rates, bench_eft_query
}
criterion_main!(kernels);
