//! One criterion bench per experiment figure/table: times the
//! representative kernel of each (placement construction, contended
//! simulation, staging, fabric run) at a reduced but faithful scale, so
//! `cargo bench` tracks the cost of regenerating every result.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use continuum_bench::experiments as exp;
use continuum_core::prelude::*;
use continuum_data::{DataKey, ReplicaCatalog, StagingConfig, StagingService};
use continuum_fabric::{endpoints_on, run_fabric, FunctionRegistry, Invocation, RoutingPolicy};
use continuum_net::RouteTable;

fn f1_crossover(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let dag = analytics_pipeline(&PipelineSpec {
        source: world.sensors()[0],
        input_bytes: 4 << 20,
        ..Default::default()
    });
    c.bench_function("f1_pipeline_heft_place_and_simulate", |b| {
        b.iter(|| black_box(world.run(&dag, &HeftPlacer::default()).simulated.makespan_s))
    });
}

fn f2_gilder(c: &mut Criterion) {
    c.bench_function("f2_gilder_one_sweep_point", |b| {
        b.iter(|| {
            let mut built = Scenario::default_continuum().build();
            std::sync::Arc::make_mut(&mut built.topology).scale_bandwidth(10.0);
            let fleet = continuum_model::standard_fleet(&built);
            let world = Continuum::from_parts(built, fleet);
            let dag = analytics_pipeline(&PipelineSpec {
                source: world.sensors()[0],
                input_bytes: 8 << 20,
                ..Default::default()
            });
            black_box(world.run(&dag, &HeftPlacer::default()).simulated.makespan_s)
        })
    });
}

fn f3_schedulers(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xBE);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 200,
            ..Default::default()
        },
    );
    let mut g = c.benchmark_group("f3_place_200_tasks");
    g.bench_function("heft", |b| {
        b.iter(|| black_box(world.place(&dag, &HeftPlacer::default())))
    });
    g.bench_function("heft_append_ablation", |b| {
        b.iter(|| {
            black_box(world.place(
                &dag,
                &HeftPlacer {
                    insertion: false,
                    ..Default::default()
                },
            ))
        })
    });
    g.bench_function("cpop", |b| {
        b.iter(|| black_box(world.place(&dag, &CpopPlacer::default())))
    });
    g.bench_function("greedy_eft", |b| {
        b.iter(|| black_box(world.place(&dag, &GreedyEftPlacer::default())))
    });
    g.bench_function("data_aware_ranks_ablation", |b| {
        b.iter(|| black_box(world.place(&dag, &DataAwarePlacer)))
    });
    g.finish();
}

fn f4_streaming(c: &mut Criterion) {
    let world = Continuum::build(&exp::f4::scenario());
    let mut rng = Rng::new(0xF4);
    let stream = inference_stream(
        &mut rng,
        &StreamSpec {
            sensors: world.sensors().to_vec(),
            requests: 100,
            rate_hz: 50.0,
            ..Default::default()
        },
    );
    c.bench_function("f4_online_place_and_simulate_100_requests", |b| {
        b.iter(|| {
            let mut placer = OnlinePlacer::continuum(world.env());
            let placed: Vec<_> = stream
                .requests
                .iter()
                .map(|(arrival, dag)| {
                    let (p, _) = placer.place_request(world.env(), dag, *arrival);
                    (*arrival, dag.clone(), p)
                })
                .collect();
            black_box(world.run_stream(placed).makespan())
        })
    });
}

fn f5_scaling(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xF5);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 800,
            width: 16,
            ..Default::default()
        },
    );
    c.bench_function("f5_heft_800_tasks", |b| {
        b.iter(|| black_box(world.place(&dag, &HeftPlacer::default())))
    });
}

fn f6_pareto(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xF6);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 40,
            ..Default::default()
        },
    );
    let annealer = AnnealingPlacer {
        iters: 100,
        restarts: 2,
        ..Default::default()
    };
    c.bench_function("f6_anneal_100_iters_x2_restarts", |b| {
        b.iter(|| black_box(annealer.place(world.env(), &dag)))
    });
}

fn t2_datafabric(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let routes = RouteTable::build(world.topology());
    c.bench_function("t2_stage_500_zipf_accesses", |b| {
        b.iter(|| {
            let mut catalog = ReplicaCatalog::new();
            for k in 0..100u64 {
                catalog.register(DataKey(k), world.clouds()[0], 1 << 20);
            }
            let mut svc = StagingService::new(catalog, StagingConfig::default(), 1);
            let mut rng = Rng::new(2);
            for i in 0..500 {
                let key = DataKey(rng.zipf(100, 1.1) as u64);
                let dst = world.edges()[i % world.edges().len()];
                svc.stage(world.topology(), &routes, SimTime::ZERO, key, dst)
                    .expect("stage");
            }
            black_box(svc.bytes_on_wire())
        })
    });
}

fn f7_fabric(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut registry = FunctionRegistry::new();
    let infer = registry.register("infer", 5e9, 200 << 10, 1 << 10);
    let mut devices = world.env().fleet.in_tier(Tier::Fog);
    devices.extend(world.env().fleet.in_tier(Tier::Cloud));
    let endpoints = endpoints_on(world.env(), &devices);
    let mut rng = Rng::new(0xF7);
    let mut t = 0.0;
    let invocations: Vec<Invocation> = (0..1000)
        .map(|i| {
            t += rng.exp(100.0);
            Invocation {
                arrival: SimTime::from_secs_f64(t),
                origin: world.sensors()[i % world.sensors().len()],
                function: infer,
            }
        })
        .collect();
    c.bench_function("f7_fabric_1000_invocations_locality", |b| {
        b.iter(|| {
            black_box(
                run_fabric(
                    world.env(),
                    &registry,
                    &endpoints,
                    &invocations,
                    RoutingPolicy::Locality,
                )
                .completed,
            )
        })
    });
}

fn t3_validation(c: &mut Criterion) {
    // The real executor sleeps wall-clock time; bench the estimator side
    // (the simulator half of the validation pair).
    let world = Continuum::build(&Scenario::default_continuum());
    let dag = fork_join(world.sensors()[0], 8, 1 << 20, 5e9, 1 << 16);
    let placement = world.place(&dag, &HeftPlacer::default());
    c.bench_function("t3_simulate_forkjoin", |b| {
        b.iter(|| black_box(simulate(world.env(), &dag, &placement).metrics.makespan_s))
    });
}

fn f8_facility(c: &mut Criterion) {
    c.bench_function("f8_one_facility_point", |b| {
        b.iter(|| {
            let world = Continuum::build(&Scenario::smart_city());
            let dag = fork_join(world.sensors()[0], 16, 2 << 20, 1e10, 64 << 10);
            black_box(world.run(&dag, &HeftPlacer::default()).simulated.makespan_s)
        })
    });
}

fn f9_faults(c: &mut Criterion) {
    use continuum_runtime::{simulate_stream_with_faults, FaultSpec, StreamRequest};
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xF9);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 80,
            ..Default::default()
        },
    );
    let placement = world.place(&dag, &HeftPlacer::default());
    let reqs = [StreamRequest {
        arrival: SimTime::ZERO,
        dag: dag.clone(),
        placement,
    }];
    let faults = FaultSpec {
        fail_prob: 0.1,
        ..Default::default()
    };
    c.bench_function("f9_simulate_with_faults", |b| {
        b.iter(|| {
            black_box(
                simulate_stream_with_faults(world.env(), &reqs, Some(&faults))
                    .metrics
                    .makespan_s,
            )
        })
    });
}

fn f10_dvfs(c: &mut Criterion) {
    use continuum_model::{fleet_at_frequency, standard_fleet};
    let built = Scenario::default_continuum().build();
    let base = standard_fleet(&built);
    let mut rng = Rng::new(0xF10);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 100,
            ..Default::default()
        },
    );
    c.bench_function("f10_dvfs_one_frequency_point", |b| {
        b.iter(|| {
            let fleet = fleet_at_frequency(&base, 0.7);
            let world = Continuum::from_parts(built.clone(), fleet);
            black_box(world.run(&dag, &HeftPlacer::default()).simulated.energy_j)
        })
    });
}

fn f11_failures(c: &mut Criterion) {
    let built = Scenario::default_continuum().build();
    let wan = built.topology.links_between(Tier::Fog, Tier::Cloud);
    c.bench_function("f11_degrade_route_place", |b| {
        b.iter(|| {
            let degraded = built.topology.without_links(&wan[..2]);
            let mut world_built = built.clone();
            world_built.topology = std::sync::Arc::new(degraded);
            let fleet = continuum_model::standard_fleet(&world_built);
            let world = Continuum::from_parts(world_built, fleet);
            let dag = analytics_pipeline(&PipelineSpec {
                source: world.sensors()[0],
                input_bytes: 8 << 20,
                ..Default::default()
            });
            black_box(world.run(&dag, &HeftPlacer::default()).simulated.makespan_s)
        })
    });
}

fn ablation_minmax(c: &mut Criterion) {
    let world = Continuum::build(&Scenario::default_continuum());
    let mut rng = Rng::new(0xAB);
    let dag = layered_random(
        &mut rng,
        &LayeredSpec {
            tasks: 200,
            ..Default::default()
        },
    );
    let mut g = c.benchmark_group("minmax_vs_heft_200_tasks");
    g.bench_function("min_min", |b| {
        b.iter(|| black_box(world.place(&dag, &MinMinPlacer)))
    });
    g.bench_function("max_min", |b| {
        b.iter(|| black_box(world.place(&dag, &MaxMinPlacer)))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = f1_crossover, f2_gilder, f3_schedulers, f4_streaming, f5_scaling,
              f6_pareto, t2_datafabric, f7_fabric, t3_validation, f8_facility,
              f9_faults, f10_dvfs, f11_failures, ablation_minmax
}
criterion_main!(figures);
