//! Parameter scan for the A1 ablation (dev utility).
use continuum_core::prelude::*;
use continuum_model::Fleet;
use continuum_net::Topology;
use continuum_placement::Env;

fn lean(cores_devices: &[DeviceClass]) -> Env {
    let mut topo = Topology::new();
    let e = topo.add_node("edge", Tier::Edge);
    let f = topo.add_node("fog", Tier::Fog);
    topo.add_link(e, f, SimDuration::from_millis(5), 1.25e8);
    let mut fleet = Fleet::new();
    for &c in cores_devices {
        fleet.add_class(f, c);
    }
    fleet.add_class(e, DeviceClass::EdgeGateway);
    Env::new(topo, fleet)
}

fn staggered(_env: &Env, n: usize, seed: u64) -> Dag {
    let edge_node = continuum_net::NodeId(0);
    let mut rng = Rng::new(seed);
    let mut g = Dag::new("staggered-fanout");
    let mut outs = Vec::new();
    for i in 0..n {
        let bytes = (rng.range_u64(1, 80)) * (4 << 20);
        let inp = g.add_input(format!("in{i}"), bytes, edge_node);
        let out = g.add_item(format!("o{i}"), 1024);
        g.add_task_full(
            format!("b{i}"),
            rng.lognormal((1e10f64).ln(), 0.3),
            1,
            vec![inp],
            vec![out],
            Constraints {
                min_mem_bytes: 16 << 30,
                ..Default::default()
            },
        );
        outs.push(out);
    }
    let fin = g.add_item("final", 1024);
    g.add_task_full(
        "join",
        1e9,
        1,
        outs,
        vec![fin],
        Constraints {
            min_mem_bytes: 16 << 30,
            ..Default::default()
        },
    );
    g
}

fn main() {
    let env = lean(&[DeviceClass::FogServer]);
    for n in [40usize, 80, 160] {
        let (mut wins, mut ties, mut losses, mut ratio) = (0, 0, 0, 0.0);
        for rep in 0..8u64 {
            let dag = staggered(&env, n, 500 + rep);
            let s_ins = HeftPlacer {
                insertion: true,
                ..Default::default()
            }
            .schedule(&env, &dag);
            let s_app = HeftPlacer {
                insertion: false,
                ..Default::default()
            }
            .schedule(&env, &dag);
            let diff = s_ins
                .start
                .iter()
                .zip(&s_app.start)
                .filter(|(a, b)| a != b)
                .count();
            let ins = s_ins.makespan().as_secs_f64();
            let app = s_app.makespan().as_secs_f64();
            if rep == 0 {
                println!("  n={n} rep0: {diff} differing starts, ins={ins:.4} app={app:.4}");
            }
            ratio += ins / app;
            if ins < app * 0.999 {
                wins += 1
            } else if ins > app * 1.001 {
                losses += 1
            } else {
                ties += 1
            }
        }
        println!(
            "n={n}: wins={wins} ties={ties} losses={losses} mean_ratio={:.4}",
            ratio / 8.0
        );
    }
}
