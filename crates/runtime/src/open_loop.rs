//! Open-loop (arrival-driven) execution: sustained load, bounded memory.
//!
//! The closed-loop executors in [`crate::simrun`] register every request
//! up front and keep every task record until the end — fine for a finite
//! workload, O(total offered load) for a sustained one. This module
//! drives the same [`ExecCore`] in *streaming* mode: requests are
//! injected as they arrive, an admission gate rejects new arrivals once
//! the live-request set reaches a cap (backpressure), and completed
//! requests *retire* — their slots are freed and reused, and their task
//! records fold into log2 histograms. Memory is O(active requests), not
//! O(requests ever offered), which is what makes million-request
//! saturation sweeps tractable.
//!
//! The executor core is shared with the closed loop, so the physics are
//! identical: an open-loop run over the same placed requests (with an
//! unbounded admission cap) completes the same tasks, moves the same
//! bytes, and yields the same latency distribution as
//! [`crate::simulate_stream_chaos`].

use crate::shard::{
    build_pinned_streaming_shards, pinned_lookaheads, pinned_participants, PinShard, ShardOpts,
};
use crate::simrun::{ExecCore, FaultPlane, FaultSpec, StreamRequest};
use continuum_model::{CostMeter, EnergyMeter};
use continuum_net::RegionPartition;
use continuum_obs::{
    HealthPlane, HealthReport, HealthSpec, Histogram, MetricsRegistry, MetricsSnapshot, Telemetry,
};
use continuum_placement::Env;
use continuum_sim::{ConservativeDriver, Lookahead, SimTime};
use std::collections::HashMap;

/// Knobs for one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOpts<'a> {
    /// Admission cap: a new arrival is rejected (counted, not executed)
    /// while this many requests are live. `usize::MAX` disables
    /// backpressure — every arrival is admitted.
    pub max_live: usize,
    /// Per-attempt fault injection, as in
    /// [`crate::simulate_stream_chaos`].
    pub faults: Option<&'a FaultSpec>,
    /// Timed device/link fault plane, as in
    /// [`crate::simulate_stream_chaos`].
    pub plane: Option<&'a FaultPlane>,
    /// Attach an SLO health plane: burn-rate windows fed by the run's
    /// completion stream, sampled into a flight recorder on sim-time
    /// ticks. `None` (the default) keeps the run bit-identical to one
    /// that never heard of health accounting.
    pub health: Option<&'a HealthSpec>,
}

impl Default for OpenLoopOpts<'_> {
    fn default() -> Self {
        OpenLoopOpts {
            max_live: usize::MAX,
            faults: None,
            plane: None,
            health: None,
        }
    }
}

/// What one open-loop run produced: SLO aggregates (latency quantiles,
/// goodput, rejection rate), conservation counters, and the memory
/// high-water marks the bounded-memory guarantee is asserted against.
/// Everything here is O(1) in the number of requests processed.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Offered and admitted past the backpressure gate.
    pub admitted: u64,
    /// Admitted and executed to completion.
    pub completed: u64,
    /// Offered but rejected by admission control.
    pub rejected: u64,
    /// High-water mark of simultaneously live (admitted, unretired)
    /// requests — the slot-reuse bound.
    pub peak_live: usize,
    /// High-water mark of the compacting task-record buffer.
    pub peak_record_buffer: usize,
    /// Finish time of the last completed request.
    pub end_time: SimTime,
    /// Request latency (finish - arrival) of every completed request.
    pub latency: Histogram,
    /// Duration of every executed task attempt.
    pub task_duration: Histogram,
    /// Executed task attempts (including failed and killed ones).
    pub tasks_executed: u64,
    /// Bytes that crossed at least one link.
    pub bytes_moved: u64,
    /// Non-local transfers initiated.
    pub transfers: u64,
    /// Attempts that drew a failure and retried.
    pub failed_attempts: u64,
    /// Tasks re-placed after a crash.
    pub replacements: u64,
    /// Attempts killed mid-flight by a device crash.
    pub killed_attempts: u64,
    /// Device crashes the fault plane delivered.
    pub device_crashes: u64,
    /// Link failures the fault plane delivered.
    pub link_failures: u64,
    /// Execution seconds destroyed by crashes.
    pub lost_work_s: f64,
    /// Executed task attempts per device id.
    pub tasks_by_device: Vec<u64>,
    /// Energy burned by used devices over the run.
    pub energy_j: f64,
    /// Occupancy + egress cost of the run.
    pub cost_usd: f64,
    /// SLO burn-rate summary and flight-recorder timeline; present iff
    /// [`OpenLoopOpts::health`] was set.
    pub health: Option<HealthReport>,
}

impl OpenLoopReport {
    /// Completed requests per simulated second (0 for an empty run).
    pub fn goodput_hz(&self) -> f64 {
        let secs = self.end_time.since(SimTime::ZERO).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Fraction of offered requests rejected by admission control.
    pub fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }

    /// Estimated latency quantile in seconds (`q` in `[0, 1]`).
    pub fn latency_quantile_s(&self, q: f64) -> f64 {
        self.latency.quantile_ns(q) as f64 / 1e9
    }
}

/// Execute an arrival-ordered stream of placed requests open-loop.
///
/// `arrivals` yields requests in nondecreasing arrival order (asserted);
/// it may be lazy — requests are pulled one at a time and the simulation
/// is pumped up to each arrival before the admission decision, so the
/// live-request count the gate inspects is current as of that arrival.
/// Rejected requests are dropped on the floor and counted; they never
/// enter the executor.
///
/// Conservation: `completed + rejected == offered` on every run (an
/// admitted request always completes — attempt-level faults retry and
/// crash orphans re-place, exactly as in the closed loop).
///
/// # Panics
/// On out-of-order arrivals, placement/dag mismatches, or empty dags —
/// programming errors, not load conditions.
pub fn simulate_open_loop(
    env: &Env,
    arrivals: impl IntoIterator<Item = StreamRequest>,
    opts: &OpenLoopOpts<'_>,
) -> OpenLoopReport {
    let tele = continuum_obs::ambient();
    let collect = tele.is_some();
    // Tracing is a closed-loop affair (it needs the full record set);
    // open-loop runs keep the Perfetto synthesizer off.
    let mut core = ExecCore::new(
        env,
        Vec::new(),
        Vec::new(),
        opts.faults,
        opts.plane,
        None,
        collect,
        false,
    );
    core.enable_streaming();
    let mut health = opts.health.map(HealthPlane::new);
    if health.is_some() {
        core.log_completions();
    }
    let mut offered = 0u64;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut saturated = false;
    let mut last = SimTime::ZERO;
    for r in arrivals {
        assert!(
            r.arrival >= last,
            "open-loop arrivals must be in nondecreasing time order"
        );
        last = r.arrival;
        core.pump(Some(r.arrival));
        if let Some(h) = health.as_mut() {
            for (fin, lat) in core.take_completions() {
                h.observe(fin.0, lat);
            }
            if h.due(r.arrival.0) {
                h.sample(
                    r.arrival.0,
                    vec![
                        ("live".to_string(), core.live_requests() as f64),
                        ("admitted".to_string(), admitted as f64),
                        ("rejected".to_string(), rejected as f64),
                    ],
                );
            }
        }
        let gid = offered as usize;
        offered += 1;
        if core.live_requests() >= opts.max_live {
            rejected += 1;
            if let Some(h) = health.as_mut() {
                // Edge-detect: one anomaly per saturation episode, not
                // one per bounced arrival.
                if !saturated {
                    h.anomaly(r.arrival.0, "saturation");
                }
            }
            saturated = true;
        } else {
            admitted += 1;
            saturated = false;
            core.inject_request(gid, r);
        }
    }
    core.pump(None);
    if let Some(h) = health.as_mut() {
        for (fin, lat) in core.take_completions() {
            h.observe(fin.0, lat);
        }
    }
    let parts = core.finish_open();
    let completed = parts.latency.count;
    assert_eq!(
        completed + rejected,
        offered,
        "open-loop conservation violated"
    );
    let makespan = parts.end_time.since(SimTime::ZERO);
    let report = OpenLoopReport {
        offered,
        admitted,
        completed,
        rejected,
        peak_live: parts.peak_live,
        peak_record_buffer: parts.peak_record_buf,
        end_time: parts.end_time,
        latency: parts.latency,
        task_duration: parts.task_duration,
        tasks_executed: parts.tasks_executed,
        bytes_moved: parts.bytes_moved,
        transfers: parts.transfers,
        failed_attempts: parts.failed_attempts,
        replacements: parts.replacements,
        killed_attempts: parts.killed_attempts,
        device_crashes: parts.device_crashes,
        link_failures: parts.link_failures,
        lost_work_s: parts.lost_dev.iter().sum(),
        tasks_by_device: parts.tasks_by_device,
        energy_j: parts.energy.used_devices_joules(&env.fleet, makespan),
        cost_usd: parts.cost.total_usd(),
        health: health.map(|h| h.finish(parts.end_time.0)),
    };
    if let Some(t) = tele {
        publish_slo_metrics(&t, &report, parts.snap.into_iter().collect());
    }
    report
}

/// Fold one open-loop run's SLO aggregates (plus each core's component
/// snapshot) into the ambient metrics sink.
fn publish_slo_metrics(t: &Telemetry, report: &OpenLoopReport, core_snaps: Vec<MetricsSnapshot>) {
    let reg = MetricsRegistry::new();
    reg.inc("slo.offered", report.offered);
    reg.inc("slo.admitted", report.admitted);
    reg.inc("slo.completed", report.completed);
    reg.inc("slo.rejected", report.rejected);
    reg.set_gauge("slo.goodput_hz", report.goodput_hz());
    reg.set_gauge("slo.rejection_rate", report.rejection_rate());
    reg.set_gauge("slo.p50_ms", report.latency_quantile_s(0.50) * 1e3);
    reg.set_gauge("slo.p99_ms", report.latency_quantile_s(0.99) * 1e3);
    reg.set_gauge("slo.p999_ms", report.latency_quantile_s(0.999) * 1e3);
    reg.set_gauge("executor.peak_live_requests", report.peak_live as f64);
    reg.set_gauge(
        "executor.peak_record_buffer",
        report.peak_record_buffer as f64,
    );
    if let Some(h) = &report.health {
        h.publish(&reg);
    }
    let mut snap = reg.snapshot();
    snap.merge_histogram("slo.request_latency", &report.latency);
    snap.merge_histogram("executor.task_duration", &report.task_duration);
    for s in &core_snaps {
        snap.merge(s);
    }
    t.metrics.absorb(&snap);
}

/// Global admission and completion bookkeeping for the sharded open
/// loop. A request is *live* from admission until every participant
/// shard has retired it; its latency is measured against the maximum
/// finish any participant reports — the same finish time the one-shard
/// run observes, so the gate and the SLO aggregates are identical for
/// every shard count.
#[derive(Default)]
struct Gate {
    /// gid -> (participants yet to retire, arrival, max finish so far).
    outstanding: HashMap<usize, (u32, SimTime, SimTime)>,
    live: usize,
    peak_live: usize,
    completed: u64,
    end_time: SimTime,
    latency: Histogram,
    /// Burn-rate plane fed at settle time. Shards retire in shard
    /// order, not time order, but [`continuum_obs::BurnWindow`] is
    /// order-independent, so the health report stays bit-identical
    /// across shard counts.
    health: Option<HealthPlane>,
}

impl Gate {
    fn admit(&mut self, gid: usize, participants: u32, arrival: SimTime) {
        self.outstanding
            .insert(gid, (participants, arrival, SimTime::ZERO));
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
    }

    /// Drain every shard's finished log and settle requests whose last
    /// participant has retired.
    fn drain(&mut self, shards: &mut [PinShard<'_>]) {
        for s in shards {
            for (gid, fin) in s.core.take_finished() {
                let e = self
                    .outstanding
                    .get_mut(&gid)
                    .expect("shard retired a request the gate never admitted");
                e.0 -= 1;
                e.2 = e.2.max(fin);
                if e.0 == 0 {
                    let (_, arrival, finish) = self.outstanding.remove(&gid).expect("present");
                    self.latency.observe(finish.since(arrival).0);
                    if let Some(h) = self.health.as_mut() {
                        h.observe(finish.0, finish.since(arrival).0);
                    }
                    self.end_time = self.end_time.max(finish);
                    self.completed += 1;
                    self.live -= 1;
                }
            }
        }
    }
}

/// Sharded [`simulate_open_loop`]: the same arrival-driven contract —
/// admission gate, bounded memory, conservation — executed by pinned
/// region shards under the conservative driver. Each admitted request is
/// injected into every shard owning a region it touches; the driver
/// pumps barrier windows up to each arrival so the admission gate sees a
/// live count identical for every shard count, and boundary transfers
/// ride between shards as envelopes exactly as in
/// [`crate::simulate_stream_sharded`]'s pinned mode.
///
/// SLO aggregates (latency distribution, goodput, rejections),
/// conservation counters, and physics totals are bit-identical across
/// shard counts; only `peak_record_buffer` (reported as the largest
/// single shard's buffer) depends on the deal.
///
/// # Panics
/// If `opts.plane` is set (pinned execution rejects the infrastructure
/// fault plane), or on out-of-order arrivals.
pub fn simulate_open_loop_sharded(
    env: &Env,
    arrivals: impl IntoIterator<Item = StreamRequest>,
    partition: &RegionPartition,
    opts: &OpenLoopOpts<'_>,
    shard_opts: &ShardOpts,
) -> OpenLoopReport {
    assert!(
        opts.plane.is_none(),
        "pinned sharded open loop rejects the infrastructure fault plane"
    );
    let tele = continuum_obs::ambient();
    let collect = tele.is_some();
    let cores =
        build_pinned_streaming_shards(env, opts.faults, partition, shard_opts.max_shards, collect);
    let n = cores.len();
    let la = if n == 1 {
        // The lone shard owns every region: no envelopes, every window
        // runs straight to its cap.
        Lookahead::None
    } else {
        Lookahead::PerShard(pinned_lookaheads(env, partition, n))
    };
    let mut driver = ConservativeDriver::new(cores, la, shard_opts.parallel);
    let mut gate = Gate {
        health: opts.health.map(HealthPlane::new),
        ..Gate::default()
    };
    let mut offered = 0u64;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut saturated = false;
    let mut last = SimTime::ZERO;
    for r in arrivals {
        assert!(
            r.arrival >= last,
            "open-loop arrivals must be in nondecreasing time order"
        );
        last = r.arrival;
        driver.advance_until(r.arrival);
        gate.drain(driver.shards_mut());
        let live = gate.live;
        if let Some(h) = gate.health.as_mut() {
            if h.due(r.arrival.0) {
                h.sample(
                    r.arrival.0,
                    vec![
                        ("live".to_string(), live as f64),
                        ("admitted".to_string(), admitted as f64),
                        ("rejected".to_string(), rejected as f64),
                    ],
                );
            }
        }
        let gid = offered as usize;
        offered += 1;
        if gate.live >= opts.max_live {
            rejected += 1;
            if let Some(h) = gate.health.as_mut() {
                if !saturated {
                    h.anomaly(r.arrival.0, "saturation");
                }
            }
            saturated = true;
        } else {
            admitted += 1;
            saturated = false;
            let participants = pinned_participants(env, &r, partition, n);
            gate.admit(gid, participants.len() as u32, r.arrival);
            for &s in &participants {
                driver.shards_mut()[s].core.inject_request(gid, r.clone());
            }
        }
    }
    driver.run();
    gate.drain(driver.shards_mut());
    assert!(
        gate.outstanding.is_empty(),
        "admitted requests still outstanding after the run drained"
    );
    let (cores, wstats) = driver.into_parts();
    let parts: Vec<_> = cores.into_iter().map(|s| s.core.finish_open()).collect();
    assert_eq!(
        gate.completed + rejected,
        offered,
        "open-loop conservation violated"
    );
    // Merge the per-shard parts. Counters add exactly: every attempt,
    // transfer, and device touch is logged by exactly one shard.
    let mut task_duration = Histogram::default();
    let mut tasks_by_device = vec![0u64; env.fleet.len()];
    let mut lost_dev = vec![0.0f64; env.fleet.len()];
    let mut energy = EnergyMeter::new(&env.fleet);
    let mut cost = CostMeter::new(&env.fleet);
    let mut tasks_executed = 0u64;
    let mut bytes_moved = 0u64;
    let mut transfers = 0u64;
    let mut failed_attempts = 0u64;
    let mut replacements = 0u64;
    let mut killed_attempts = 0u64;
    let mut peak_record_buffer = 0usize;
    for p in &parts {
        assert_eq!(p.device_crashes, parts[0].device_crashes);
        assert_eq!(p.link_failures, parts[0].link_failures);
        task_duration.merge(&p.task_duration);
        for (d, &v) in p.tasks_by_device.iter().enumerate() {
            tasks_by_device[d] += v;
        }
        for (d, &v) in p.lost_dev.iter().enumerate() {
            lost_dev[d] += v;
        }
        energy.merge(&p.energy);
        cost.merge(&p.cost);
        tasks_executed += p.tasks_executed;
        bytes_moved += p.bytes_moved;
        transfers += p.transfers;
        failed_attempts += p.failed_attempts;
        replacements += p.replacements;
        killed_attempts += p.killed_attempts;
        peak_record_buffer = peak_record_buffer.max(p.peak_record_buf);
    }
    let makespan = gate.end_time.since(SimTime::ZERO);
    let health = gate.health.take().map(|h| h.finish(gate.end_time.0));
    let report = OpenLoopReport {
        offered,
        admitted,
        completed: gate.completed,
        rejected,
        peak_live: gate.peak_live,
        peak_record_buffer,
        end_time: gate.end_time,
        latency: gate.latency,
        task_duration,
        tasks_executed,
        bytes_moved,
        transfers,
        failed_attempts,
        replacements,
        killed_attempts,
        device_crashes: parts[0].device_crashes,
        link_failures: parts[0].link_failures,
        lost_work_s: lost_dev.iter().sum(),
        tasks_by_device,
        energy_j: energy.used_devices_joules(&env.fleet, makespan),
        cost_usd: cost.total_usd(),
        health,
    };
    if let Some(t) = tele {
        let reg = MetricsRegistry::new();
        reg.inc("shard.runs", 1);
        reg.record("shard.count", n as u64);
        reg.record("shard.windows", wstats.windows);
        reg.inc("shard.messages", wstats.messages);
        let largest = parts.iter().map(|p| p.tasks_executed).max().unwrap_or(0);
        if tasks_executed > 0 {
            let mean = tasks_executed as f64 / parts.len() as f64;
            reg.set_gauge("shard.util.mean_events", mean);
            reg.set_gauge("shard.util.imbalance", largest as f64 / mean);
        }
        t.metrics.absorb(&reg.snapshot());
        publish_slo_metrics(
            &t,
            &report,
            parts.into_iter().filter_map(|p| p.snap).collect(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simrun::simulate_stream_chaos;
    use continuum_model::{DeviceClass, DeviceId, Fleet};
    use continuum_net::NodeId;
    use continuum_net::{Tier, Topology};
    use continuum_placement::Placement;
    use continuum_sim::SimDuration;
    use continuum_workflow::{open_loop_stream, ArrivalProcess, Dag, OpenLoopSpec};

    fn two_node(bandwidth: f64) -> (Env, NodeId, NodeId) {
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(10), bandwidth);
        let mut fleet = Fleet::new();
        fleet.add_class(e, DeviceClass::EdgeGateway);
        fleet.add_class(c, DeviceClass::CloudVm);
        (Env::new(topo, fleet), e, c)
    }

    /// The inference dags of `open_loop_stream` have three tasks
    /// (capture, preprocess, infer); run the first two at the edge and
    /// the inference at the cloud so every request crosses the link.
    fn placed(workload: continuum_workflow::StreamWorkload) -> Vec<StreamRequest> {
        workload
            .requests
            .into_iter()
            .map(|(arrival, dag)| StreamRequest {
                arrival,
                placement: Placement {
                    assignment: vec![DeviceId(0), DeviceId(0), DeviceId(1)],
                },
                dag,
            })
            .collect()
    }

    #[test]
    fn open_loop_matches_closed_loop_exactly() {
        let (env, e, _c) = two_node(1e9);
        let spec = OpenLoopSpec {
            sensors: vec![e],
            requests: 200,
            process: ArrivalProcess::Poisson { rate_hz: 40.0 },
            frame_bytes: 50_000,
            infer_flops: 5e8,
            size_alpha: None,
        };
        let reqs = placed(open_loop_stream(7, &spec));
        let closed = simulate_stream_chaos(&env, &reqs, None, None);
        let report = simulate_open_loop(&env, reqs.iter().cloned(), &OpenLoopOpts::default());

        assert_eq!(report.offered, 200);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.completed, 200);
        assert_eq!(report.tasks_executed, closed.trace.records.len() as u64);
        assert_eq!(report.bytes_moved, closed.trace.bytes_moved);
        assert_eq!(report.transfers, closed.trace.transfers);
        // The latency *distribution* must be bit-identical: same counts,
        // same sum, same min/max, same buckets.
        let mut want = Histogram::default();
        let mut last_fin = SimTime::ZERO;
        for (arr, fin) in closed
            .trace
            .request_arrival
            .iter()
            .zip(&closed.trace.request_finish)
        {
            want.observe(fin.since(*arr).0);
            last_fin = last_fin.max(*fin);
        }
        assert_eq!(report.latency, want);
        assert_eq!(report.end_time, last_fin);
    }

    #[test]
    fn memory_stays_bounded_over_100k_requests() {
        let (env, e, _c) = two_node(1e9);
        let n = 100_000usize;
        // One tiny local task per request, arriving every 100 µs — the
        // edge gateway keeps up easily, so the live set stays small even
        // though 100k requests flow through.
        let arrivals = (0..n).map(move |i| {
            let mut g = Dag::new(format!("r{i}"));
            let input = g.add_input("in", 100, e);
            let out = g.add_item("out", 1);
            g.add_task("t", 1e6, vec![input], vec![out]);
            StreamRequest {
                arrival: SimTime::from_secs_f64(i as f64 * 100e-6),
                dag: g,
                placement: Placement {
                    assignment: vec![DeviceId(0)],
                },
            }
        });
        let opts = OpenLoopOpts {
            max_live: 512,
            ..Default::default()
        };
        let report = simulate_open_loop(&env, arrivals, &opts);
        assert_eq!(report.offered, n as u64);
        assert_eq!(report.completed + report.rejected, report.offered);
        assert_eq!(report.rejected, 0, "the system keeps up at this rate");
        assert_eq!(report.tasks_executed, n as u64);
        // The point of the exercise: live slots and buffered records
        // track the *active* set, not the 100k offered requests.
        assert!(
            report.peak_live <= 512,
            "peak_live {} exceeds the admission cap",
            report.peak_live
        );
        assert!(
            report.peak_live < 64,
            "peak_live {} is not O(active) for a keeping-up system",
            report.peak_live
        );
        assert!(
            report.peak_record_buffer <= 10_000,
            "record buffer grew to {} entries",
            report.peak_record_buffer
        );
    }

    #[test]
    fn saturation_rejects_and_conserves() {
        let (env, e, _c) = two_node(1e9);
        // 300 heavy tasks arriving 1 ms apart onto a 4-core edge device
        // that needs far longer than 1 ms per task: the live set pins at
        // the cap and most arrivals bounce.
        let arrivals = (0..300usize).map(move |i| {
            let mut g = Dag::new(format!("r{i}"));
            let input = g.add_input("in", 100, e);
            let out = g.add_item("out", 1);
            g.add_task("t", 5e10, vec![input], vec![out]);
            StreamRequest {
                arrival: SimTime::from_secs_f64(i as f64 * 1e-3),
                dag: g,
                placement: Placement {
                    assignment: vec![DeviceId(0)],
                },
            }
        });
        let opts = OpenLoopOpts {
            max_live: 8,
            ..Default::default()
        };
        let report = simulate_open_loop(&env, arrivals, &opts);
        assert_eq!(report.offered, 300);
        assert_eq!(report.completed + report.rejected, 300);
        assert!(
            report.rejected > 200,
            "expected heavy rejection, got {}",
            report.rejected
        );
        assert!(report.rejection_rate() > 0.5);
        assert!(report.peak_live <= 8);
        assert!(report.goodput_hz() > 0.0);
        assert!(report.latency_quantile_s(0.99) >= report.latency_quantile_s(0.50));
    }

    fn continuum_world() -> (Env, Vec<Vec<NodeId>>) {
        let spec = continuum_net::ContinuumSpec {
            fogs: 3,
            edges_per_fog: 2,
            sensors_per_edge: 2,
            clouds: 2,
            hpcs: 1,
            ..continuum_net::ContinuumSpec::default()
        };
        let built = continuum_net::continuum(&spec);
        let fleet = continuum_model::standard_fleet(&built);
        let env = Env::new(built.topology.clone(), fleet);
        let regions = continuum_net::continuum_regions(&spec);
        (env, regions)
    }

    /// `count` spanning requests (fog + backbone devices, round-robin
    /// over fogs), arriving every `gap_us` microseconds.
    fn spanning_arrivals(
        env: &Env,
        regions: &[Vec<NodeId>],
        count: usize,
        gap_us: u64,
    ) -> Vec<StreamRequest> {
        use continuum_workflow::{layered_random, LayeredSpec};
        (0..count)
            .map(|i| {
                let f = 1 + (i % (regions.len() - 1));
                let mut nodes = regions[f].clone();
                nodes.extend(&regions[0]);
                let source = *regions[f].last().expect("non-empty region");
                let mut rng = continuum_sim::Rng::new(1000 + i as u64);
                let dag = layered_random(
                    &mut rng,
                    &LayeredSpec {
                        tasks: 8,
                        source,
                        ..LayeredSpec::default()
                    },
                );
                let devs: Vec<DeviceId> = nodes
                    .iter()
                    .flat_map(|&n| env.fleet.at_node(n).iter().copied())
                    .collect();
                let assignment = (0..dag.len()).map(|k| devs[k % devs.len()]).collect();
                StreamRequest {
                    dag,
                    placement: Placement { assignment },
                    arrival: SimTime::from_secs_f64(i as f64 * gap_us as f64 * 1e-6),
                }
            })
            .collect()
    }

    #[test]
    fn sharded_open_loop_identical_across_shard_counts() {
        let (env, regions) = continuum_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let arrivals = spanning_arrivals(&env, &regions, 60, 2_000);
        let opts = OpenLoopOpts {
            max_live: 8,
            ..Default::default()
        };
        let strip = |mut r: OpenLoopReport| {
            // The record-buffer high-water mark is per shard, so it
            // legitimately depends on the deal; everything else must not.
            r.peak_record_buffer = 0;
            r
        };
        let reference = strip(simulate_open_loop_sharded(
            &env,
            arrivals.iter().cloned(),
            &partition,
            &opts,
            &ShardOpts::pinned(1),
        ));
        assert_eq!(reference.completed + reference.rejected, reference.offered);
        for n in [2, 4] {
            for parallel in [true, false] {
                let sharded = strip(simulate_open_loop_sharded(
                    &env,
                    arrivals.iter().cloned(),
                    &partition,
                    &opts,
                    &ShardOpts {
                        parallel,
                        ..ShardOpts::pinned(n)
                    },
                ));
                assert_eq!(sharded, reference, "n={n} parallel={parallel} diverged");
            }
        }
    }

    #[test]
    fn sharded_open_loop_saturation_rejects_and_conserves() {
        let (env, regions) = continuum_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        // 150 requests arriving every 200 µs against a gate of 4: the
        // fleet cannot drain spanning DAGs that fast, so most bounce.
        let arrivals = spanning_arrivals(&env, &regions, 150, 200);
        let opts = OpenLoopOpts {
            max_live: 4,
            ..Default::default()
        };
        let a = simulate_open_loop_sharded(
            &env,
            arrivals.iter().cloned(),
            &partition,
            &opts,
            &ShardOpts::pinned(4),
        );
        let b = simulate_open_loop_sharded(
            &env,
            arrivals.iter().cloned(),
            &partition,
            &opts,
            &ShardOpts::pinned(4),
        );
        assert_eq!(a, b, "sharded open loop must be deterministic");
        assert_eq!(a.offered, 150);
        assert_eq!(a.completed + a.rejected, a.offered);
        assert!(a.rejected > 0, "expected backpressure at this rate");
        assert!(a.peak_live <= 4);
        assert!(a.goodput_hz() > 0.0);
    }

    #[test]
    fn health_plane_observes_completions_and_flags_saturation() {
        let (env, e, _c) = two_node(1e9);
        // ~50 ms per task on the 12 Gflop/s gateway: slow enough to pin
        // the gate, fast enough that completions land while arrivals
        // are still flowing (burn detection samples on arrival ticks).
        let arrivals = (0..300usize).map(move |i| {
            let mut g = Dag::new(format!("r{i}"));
            let input = g.add_input("in", 100, e);
            let out = g.add_item("out", 1);
            g.add_task("t", 6e8, vec![input], vec![out]);
            StreamRequest {
                arrival: SimTime::from_secs_f64(i as f64 * 1e-3),
                dag: g,
                placement: Placement {
                    assignment: vec![DeviceId(0)],
                },
            }
        });
        let spec = HealthSpec {
            objective_ns: 1_000_000, // 1 ms: these tasks run far longer
            sample_every_ns: 10_000_000,
            ..HealthSpec::default()
        };
        let opts = OpenLoopOpts {
            max_live: 8,
            health: Some(&spec),
            ..Default::default()
        };
        let report = simulate_open_loop(&env, arrivals, &opts);
        let h = report.health.as_ref().expect("health requested");
        assert_eq!(h.observed, report.completed);
        assert_eq!(h.violations, report.completed, "every task misses 1 ms");
        assert!(h.burn_short_peak > spec.burn_threshold);
        assert!(h.anomalies.iter().any(|a| a.kind == "saturation"));
        assert!(h.anomalies.iter().any(|a| a.kind == "slo-burn"));
        assert!(!h.frames.is_empty(), "flight recorder sampled frames");
        let inc = h.incident.as_ref().expect("anomaly snapshots the ring");
        assert!(inc.at_ns <= report.end_time.0);
    }

    #[test]
    fn sharded_health_identical_across_shard_counts() {
        let (env, regions) = continuum_world();
        let partition = RegionPartition::new(&env.topology, regions.clone(), 0);
        let arrivals = spanning_arrivals(&env, &regions, 80, 400);
        let spec = HealthSpec {
            objective_ns: 20_000_000, // 20 ms: spanning DAGs blow through it
            sample_every_ns: 5_000_000,
            ..HealthSpec::default()
        };
        let opts = OpenLoopOpts {
            max_live: 6,
            health: Some(&spec),
            ..Default::default()
        };
        let strip = |mut r: OpenLoopReport| {
            r.peak_record_buffer = 0;
            r
        };
        let reference = strip(simulate_open_loop_sharded(
            &env,
            arrivals.iter().cloned(),
            &partition,
            &opts,
            &ShardOpts::pinned(1),
        ));
        let h = reference.health.as_ref().expect("health requested");
        assert_eq!(h.observed, reference.completed);
        assert!(h.observed > 0);
        for n in [2, 4] {
            let sharded = strip(simulate_open_loop_sharded(
                &env,
                arrivals.iter().cloned(),
                &partition,
                &opts,
                &ShardOpts::pinned(n),
            ));
            // PartialEq on the report covers the full health report:
            // burn rates, frames, anomalies, incident.
            assert_eq!(sharded, reference, "health diverged at n={n}");
        }
    }

    #[test]
    fn open_loop_runs_are_deterministic() {
        let (env, e, _c) = two_node(1e8);
        let spec = OpenLoopSpec {
            sensors: vec![e],
            requests: 300,
            process: ArrivalProcess::FlashCrowd {
                base_hz: 20.0,
                spike_hz: 400.0,
                at_s: 2.0,
                len_s: 1.0,
            },
            frame_bytes: 100_000,
            infer_flops: 1e9,
            size_alpha: Some(1.5),
        };
        let opts = OpenLoopOpts {
            max_live: 16,
            ..Default::default()
        };
        let a = simulate_open_loop(&env, placed(open_loop_stream(11, &spec)), &opts);
        let b = simulate_open_loop(&env, placed(open_loop_stream(11, &spec)), &opts);
        assert_eq!(a, b);
        assert!(a.rejected > 0, "flash crowd should overrun a cap of 16");
        assert_eq!(a.completed + a.rejected, a.offered);
    }
}
