//! A Parsl-style dataflow API: write ordinary Rust closures, get a placed,
//! concurrently executed workflow.
//!
//! [`AppBuilder`] assembles a DAG as you declare inputs and tasks; each
//! task is an ordinary closure from input payloads to an output payload.
//! [`AppBuilder::run`] places the DAG with any [`Placer`] and executes it
//! on the real multi-threaded executor — dependencies, per-device
//! capacity, and emulated transfer/compute delays included — then hands
//! back every task's actual output bytes.
//!
//! ```
//! use continuum_model::{standard_fleet};
//! use continuum_net::{continuum, ContinuumSpec};
//! use continuum_placement::{Env, HeftPlacer};
//! use continuum_runtime::app::AppBuilder;
//!
//! let built = continuum(&ContinuumSpec::default());
//! let sensor = built.sensors[0];
//! let env = Env::new(built.topology.clone(), standard_fleet(&built));
//!
//! let mut app = AppBuilder::new("word-stats");
//! let text = app.input_data("text", bytes::Bytes::from("one two three"), sensor);
//! let count = app.task("count", 1e6, &[text], 8, |ins| {
//!     let words = ins[0].split(|&b| b == b' ').count() as u64;
//!     bytes::Bytes::copy_from_slice(&words.to_le_bytes())
//! });
//! let outcome = app.run(&env, &HeftPlacer::default(), 1e-4);
//! let out = outcome.output(count).expect("task ran");
//! assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 3);
//! ```

use crate::exec::{RealExecutor, RealTrace};
use bytes::Bytes;
use continuum_net::NodeId;
use continuum_placement::{Env, Placement, Placer};
use continuum_workflow::{Dag, DataId, TaskId};
use parking_lot::Mutex;

type TaskFn = Box<dyn FnOnce(&[Bytes]) -> Bytes + Send>;

/// Handle to a declared task (and its output item).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppHandle {
    /// The underlying task.
    pub task: TaskId,
    /// The task's output data item — pass to downstream [`AppBuilder::task`]
    /// calls as an input.
    pub out: DataId,
}

/// Builder for a closure-backed workflow.
pub struct AppBuilder {
    dag: Dag,
    closures: Vec<Option<TaskFn>>,
    input_payloads: Vec<(DataId, Bytes)>,
}

/// Everything a run produced.
pub struct AppOutcome {
    /// The workflow that ran.
    pub dag: Dag,
    /// Where each task ran.
    pub placement: Placement,
    /// Wall-clock trace from the real executor.
    pub trace: RealTrace,
    outputs: Vec<Option<Bytes>>, // per data id
}

impl AppOutcome {
    /// The payload a task produced.
    pub fn output(&self, h: AppHandle) -> Option<&Bytes> {
        self.outputs[h.out.0 as usize].as_ref()
    }
}

impl AppBuilder {
    /// Start a new application.
    pub fn new(name: impl Into<String>) -> AppBuilder {
        AppBuilder {
            dag: Dag::new(name),
            closures: Vec::new(),
            input_payloads: Vec::new(),
        }
    }

    /// Declare an external input with an actual payload, born at `home`.
    pub fn input_data(&mut self, name: impl Into<String>, data: Bytes, home: NodeId) -> DataId {
        let id = self.dag.add_input(name, data.len() as u64, home);
        self.input_payloads.push((id, data));
        id
    }

    /// Declare a task: a closure from its inputs' payloads (in `inputs`
    /// order) to its output payload. `work_hint` (flops) is what the
    /// placement engine will assume the closure costs; `out_bytes_hint`
    /// sizes the emulated transfer of the output.
    pub fn task(
        &mut self,
        name: impl Into<String>,
        work_hint: f64,
        inputs: &[DataId],
        out_bytes_hint: u64,
        f: impl FnOnce(&[Bytes]) -> Bytes + Send + 'static,
    ) -> AppHandle {
        let out = self
            .dag
            .add_item(format!("{}_out", self.closures.len()), out_bytes_hint);
        let task = self
            .dag
            .add_task(name, work_hint, inputs.to_vec(), vec![out]);
        self.closures.push(Some(Box::new(f)));
        AppHandle { task, out }
    }

    /// Number of declared tasks.
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// True if no tasks are declared.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Place with `placer` and execute on the real executor.
    ///
    /// `time_scale` is wall seconds per virtual second for the emulated
    /// transfer/compute delays (use something tiny like `1e-4` when the
    /// closures' real runtime is what matters).
    ///
    /// # Panics
    /// If the assembled DAG fails validation.
    pub fn run(mut self, env: &Env, placer: &dyn Placer, time_scale: f64) -> AppOutcome {
        self.dag.validate().expect("invalid app DAG");
        let placement = placer.place(env, &self.dag);

        let n_items = self.dag.data_items().len();
        let store: Mutex<Vec<Option<Bytes>>> = Mutex::new(vec![None; n_items]);
        {
            let mut s = store.lock();
            for (id, data) in self.input_payloads.drain(..) {
                s[id.0 as usize] = Some(data);
            }
        }
        let closures: Vec<Mutex<Option<TaskFn>>> =
            self.closures.into_iter().map(Mutex::new).collect();
        let dag = &self.dag;

        let exec = RealExecutor { time_scale };
        let trace = exec.execute_custom(env, dag, &placement, &|t: TaskId| {
            let f = closures[t.0 as usize]
                .lock()
                .take()
                .expect("task executed twice");
            let task = dag.task(t);
            let ins: Vec<Bytes> = {
                let s = store.lock();
                task.inputs
                    .iter()
                    .map(|&d| s[d.0 as usize].clone().expect("dependency payload present"))
                    .collect()
            };
            let out = f(&ins);
            let mut s = store.lock();
            for &o in &task.outputs {
                s[o.0 as usize] = Some(out.clone());
            }
        });

        AppOutcome {
            placement,
            trace,
            outputs: store.into_inner(),
            dag: self.dag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::standard_fleet;
    use continuum_net::{continuum, ContinuumSpec};
    use continuum_placement::HeftPlacer;

    fn env() -> (Env, NodeId) {
        let built = continuum(&ContinuumSpec::default());
        let sensor = built.sensors[0];
        (
            Env::new(built.topology.clone(), standard_fleet(&built)),
            sensor,
        )
    }

    #[test]
    fn diamond_dataflow_produces_correct_values() {
        let (env, sensor) = env();
        let mut app = AppBuilder::new("arith");
        let x = app.input_data("x", Bytes::copy_from_slice(&7u64.to_le_bytes()), sensor);
        let double = app.task("double", 1e6, &[x], 8, |ins| {
            let v = u64::from_le_bytes(ins[0][..8].try_into().expect("8 bytes"));
            Bytes::copy_from_slice(&(v * 2).to_le_bytes())
        });
        let square = app.task("square", 1e6, &[x], 8, |ins| {
            let v = u64::from_le_bytes(ins[0][..8].try_into().expect("8 bytes"));
            Bytes::copy_from_slice(&(v * v).to_le_bytes())
        });
        let sum = app.task("sum", 1e6, &[double.out, square.out], 8, |ins| {
            let a = u64::from_le_bytes(ins[0][..8].try_into().expect("8 bytes"));
            let b = u64::from_le_bytes(ins[1][..8].try_into().expect("8 bytes"));
            Bytes::copy_from_slice(&(a + b).to_le_bytes())
        });
        let outcome = app.run(&env, &HeftPlacer::default(), 1e-5);
        let v = |h: AppHandle| {
            u64::from_le_bytes(outcome.output(h).expect("ran")[..8].try_into().expect("8"))
        };
        assert_eq!(v(double), 14);
        assert_eq!(v(square), 49);
        assert_eq!(v(sum), 63);
        assert_eq!(outcome.placement.assignment.len(), 3);
    }

    #[test]
    fn wide_fanout_runs_all_closures() {
        let (env, sensor) = env();
        let mut app = AppBuilder::new("fanout");
        let seed = app.input_data("seed", Bytes::from_static(b"\x01"), sensor);
        let handles: Vec<AppHandle> = (0..20)
            .map(|i| {
                app.task(format!("w{i}"), 1e6, &[seed], 1, move |ins| {
                    Bytes::copy_from_slice(&[ins[0][0] + i as u8])
                })
            })
            .collect();
        let collect_inputs: Vec<DataId> = handles.iter().map(|h| h.out).collect();
        let total = app.task("total", 1e6, &collect_inputs, 1, |ins| {
            let s: u8 = ins.iter().map(|b| b[0]).sum();
            Bytes::copy_from_slice(&[s])
        });
        let outcome = app.run(&env, &HeftPlacer::default(), 1e-5);
        // sum over i of (1 + i) for i in 0..20 = 20 + 190 = 210.
        assert_eq!(outcome.output(total).expect("ran")[0], 210);
    }

    #[test]
    fn chained_apps_reuse_payloads_not_hints() {
        // The byte-size *hint* and the actual payload length may differ;
        // downstream closures must see the actual payload.
        let (env, sensor) = env();
        let mut app = AppBuilder::new("hint-vs-payload");
        let x = app.input_data("x", Bytes::from_static(b"abcdef"), sensor);
        let head = app.task(
            "head",
            1e6,
            &[x],
            1024, /* over-hinted */
            |ins| ins[0].slice(0..3),
        );
        let len = app.task("len", 1e6, &[head.out], 8, |ins| {
            Bytes::copy_from_slice(&(ins[0].len() as u64).to_le_bytes())
        });
        let outcome = app.run(&env, &HeftPlacer::default(), 1e-5);
        let v = u64::from_le_bytes(
            outcome.output(len).expect("ran")[..8]
                .try_into()
                .expect("8"),
        );
        assert_eq!(v, 3);
    }
}
