//! # continuum-runtime
//!
//! Core contribution B of the `coding-the-continuum` reproduction: the
//! executors that turn a placement into an execution.
//!
//! - [`simrun`]: the simulated continuum executor — virtual time, FIFO core
//!   queueing per device, and max-min fair link sharing for concurrent
//!   transfers. Every experiment's "measured" numbers come from here.
//! - [`exec`]: a real multi-threaded executor with per-device capacity
//!   semaphores, used to validate that estimated schedules are realizable
//!   (experiment T3) and as a Parsl-style local runtime for user closures.
//! - [`trace`]: the execution records both executors emit.

#![warn(missing_docs)]

pub mod app;
pub mod exec;
pub mod open_loop;
pub mod shard;
pub mod simrun;
pub mod trace;

pub use app::{AppBuilder, AppHandle, AppOutcome};
pub use exec::{RealExecutor, RealTrace};
pub use open_loop::{simulate_open_loop, simulate_open_loop_sharded, OpenLoopOpts, OpenLoopReport};
pub use shard::{
    plan_shards, simulate_stream_pinned, simulate_stream_sharded, ShardMode, ShardOpts, ShardPlan,
};
pub use simrun::{
    simulate, simulate_stream, simulate_stream_chaos, simulate_stream_with_faults, FaultPlane,
    FaultSpec, SimOutcome, StreamRequest,
};
pub use trace::{ExecutionTrace, TaskRecord};
