//! Execution traces: what actually happened, per task and per request.

use continuum_model::DeviceId;
use continuum_sim::{SimDuration, SimTime};
use continuum_workflow::TaskId;
use serde::{Deserialize, Serialize};

/// One executed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Index of the request this task belonged to (0 for single-DAG runs).
    pub request: usize,
    /// Task id within its request's DAG.
    pub task: TaskId,
    /// Device the task ran on.
    pub device: DeviceId,
    /// Cores occupied.
    pub cores: u32,
    /// Execution start (after data arrival and queueing).
    pub start: SimTime,
    /// Execution finish.
    pub finish: SimTime,
}

impl TaskRecord {
    /// Busy duration.
    pub fn duration(&self) -> SimDuration {
        self.finish.since(self.start)
    }
}

/// The result of executing one or more requests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Per-task records, in canonical order (see [`Self::canonicalize`]).
    pub records: Vec<TaskRecord>,
    /// Arrival time of each request.
    pub request_arrival: Vec<SimTime>,
    /// Completion time of each request (last task finish).
    pub request_finish: Vec<SimTime>,
    /// Total bytes that crossed at least one link.
    pub bytes_moved: u64,
    /// Number of non-local transfers performed.
    pub transfers: u64,
    /// Task attempts that failed and were retried (0 without fault
    /// injection).
    pub failed_attempts: u64,
    /// Device crash events applied (0 without a fault plane).
    pub device_crashes: u64,
    /// Link failure events applied (0 without a fault plane).
    pub link_failures: u64,
    /// Orphaned tasks re-placed onto surviving devices.
    pub replacements: u64,
    /// Task attempts killed mid-execution by device crashes.
    pub killed_attempts: u64,
    /// Execution seconds destroyed by device crashes (partial attempts).
    pub lost_work_s: f64,
}

impl ExecutionTrace {
    /// End-to-end makespan: last finish across all requests.
    pub fn makespan(&self) -> SimDuration {
        self.request_finish
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO)
    }

    /// Per-request latencies (finish − arrival), seconds.
    pub fn latencies_s(&self) -> Vec<f64> {
        self.request_arrival
            .iter()
            .zip(&self.request_finish)
            .map(|(a, f)| f.since(*a).as_secs_f64())
            .collect()
    }

    /// Arrival and finish of request `req`, or `None` if the trace has no
    /// such request (or the run recorded arrivals but not finishes yet).
    ///
    /// Prefer this over indexing `request_arrival` / `request_finish`
    /// directly: consumers fed an out-of-range index (e.g. a request id
    /// from a different scenario) get a `None` instead of a panic.
    pub fn request_span(&self, req: usize) -> Option<(SimTime, SimTime)> {
        let arrival = *self.request_arrival.get(req)?;
        let finish = *self.request_finish.get(req)?;
        Some((arrival, finish))
    }

    /// Latency (finish − arrival) of request `req`, or `None` if the
    /// trace has no such request.
    pub fn request_latency(&self, req: usize) -> Option<SimDuration> {
        let (arrival, finish) = self.request_span(req)?;
        Some(finish.since(arrival))
    }

    /// Busy core-seconds per device id (dense vector sized to max id + 1).
    pub fn busy_core_seconds(&self, n_devices: usize) -> Vec<f64> {
        let mut busy = vec![0.0; n_devices];
        for r in &self.records {
            busy[r.device.0 as usize] += r.duration().as_secs_f64() * r.cores as f64;
        }
        busy
    }

    /// Mean utilization per device over the makespan: busy core-seconds
    /// divided by `cores × makespan`. Devices that ran nothing report 0.
    pub fn mean_utilization(&self, device_cores: &[u32]) -> Vec<f64> {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 {
            return vec![0.0; device_cores.len()];
        }
        let busy = self.busy_core_seconds(device_cores.len());
        busy.iter()
            .zip(device_cores)
            .map(|(b, &c)| if c == 0 { 0.0 } else { b / (c as f64 * span) })
            .collect()
    }

    /// Render an ASCII Gantt chart: one row per device that ran anything,
    /// time flowing left to right over `width` columns. Each cell shows
    /// how many tasks occupied the device in that time slice (`.` idle,
    /// `1`-`9` count, `+` for ten or more).
    pub fn gantt(&self, device_names: &[String], width: usize) -> String {
        assert!(width >= 10);
        let end = self.makespan().as_secs_f64();
        if end <= 0.0 || self.records.is_empty() {
            return String::from("(empty trace)\n");
        }
        let n_dev = device_names.len();
        let mut grid = vec![vec![0u32; width]; n_dev];
        for r in &self.records {
            let di = r.device.0 as usize;
            let a = (r.start.as_secs_f64() / end * width as f64) as usize;
            let b = ((r.finish.as_secs_f64() / end * width as f64).ceil() as usize).min(width);
            for cell in grid[di].iter_mut().take(b.max(a + 1)).skip(a) {
                *cell += 1;
            }
        }
        let label_w = device_names
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .min(24);
        let mut out = String::new();
        for (di, row) in grid.iter().enumerate() {
            if row.iter().all(|&c| c == 0) {
                continue;
            }
            let name: String = device_names[di].chars().take(label_w).collect();
            out.push_str(&format!("{name:>label_w$} |"));
            for &c in row {
                out.push(match c {
                    0 => '.',
                    1..=9 => char::from_digit(c, 10).expect("single digit"),
                    _ => '+',
                });
            }
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>label_w$}  0{:>width$.3}s\n",
            "t =",
            end,
            label_w = label_w,
            width = width - 1
        ));
        out
    }

    /// Sort `records` into the canonical order: `(request, task, start,
    /// finish, device, cores)`.
    ///
    /// Every executor finalizes its trace through this, which makes record
    /// order independent of *event* order — a sharded run that interleaves
    /// per-region work differently from the single-queue executor still
    /// produces an identical record vector. Within one `(request, task)`
    /// group the final (successful) attempt sorts last, because a retry or
    /// re-placement always starts strictly after the killed attempt began.
    pub fn canonicalize(&mut self) {
        self.records.sort_by(|a, b| {
            (a.request, a.task.0, a.start, a.finish, a.device.0, a.cores)
                .cmp(&(b.request, b.task.0, b.start, b.finish, b.device.0, b.cores))
        });
    }

    /// Sanity check used by tests: within one request, every task's *final*
    /// record starts no earlier than the finish of each predecessor's
    /// final record. (With fault injection a task may have several
    /// records; only the last — successful — attempt is checked, since
    /// failed attempts of a successor may legitimately overlap retries of
    /// an unrelated task.)
    pub fn respects_dependencies(&self, dags: &[&continuum_workflow::Dag]) -> bool {
        // Index records by (request, task); later inserts (later attempts)
        // overwrite earlier ones because records are pushed in start order.
        use std::collections::HashMap;
        let mut by_key: HashMap<(usize, TaskId), &TaskRecord> = HashMap::new();
        for r in &self.records {
            by_key.insert((r.request, r.task), r);
        }
        by_key.values().all(|r| {
            let dag = dags[r.request];
            dag.preds(r.task).iter().all(|p| {
                by_key
                    .get(&(r.request, *p))
                    .map(|pr| pr.finish <= r.start)
                    .unwrap_or(false)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_latency() {
        let tr = ExecutionTrace {
            request_arrival: vec![SimTime::ZERO, SimTime::from_secs(5)],
            request_finish: vec![SimTime::from_secs(2), SimTime::from_secs(9)],
            ..Default::default()
        };
        assert_eq!(tr.makespan(), SimDuration::from_secs(9));
        assert_eq!(tr.latencies_s(), vec![2.0, 4.0]);
    }

    #[test]
    fn request_accessors_return_none_out_of_range() {
        let tr = ExecutionTrace {
            request_arrival: vec![SimTime::ZERO, SimTime::from_secs(5)],
            request_finish: vec![SimTime::from_secs(2), SimTime::from_secs(9)],
            ..Default::default()
        };
        assert_eq!(
            tr.request_span(0),
            Some((SimTime::ZERO, SimTime::from_secs(2)))
        );
        assert_eq!(tr.request_latency(1), Some(SimDuration::from_secs(4)));
        // Out-of-range indices must not panic.
        assert_eq!(tr.request_span(2), None);
        assert_eq!(tr.request_latency(usize::MAX), None);
        // A trace with arrivals but no finishes (mid-run snapshot) is None.
        let partial = ExecutionTrace {
            request_arrival: vec![SimTime::ZERO],
            ..Default::default()
        };
        assert_eq!(partial.request_span(0), None);
    }

    #[test]
    fn utilization_fraction() {
        let mut tr = ExecutionTrace {
            request_arrival: vec![SimTime::ZERO],
            request_finish: vec![SimTime::from_secs(10)],
            ..Default::default()
        };
        tr.records.push(TaskRecord {
            request: 0,
            task: TaskId(0),
            device: DeviceId(0),
            cores: 2,
            start: SimTime::ZERO,
            finish: SimTime::from_secs(5),
        });
        // 10 core-seconds busy on a 4-core device over 10 s = 0.25.
        let u = tr.mean_utilization(&[4, 8]);
        assert!((u[0] - 0.25).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn gantt_renders_occupancy() {
        let mut tr = ExecutionTrace {
            request_arrival: vec![SimTime::ZERO],
            request_finish: vec![SimTime::from_secs(10)],
            ..Default::default()
        };
        // Two overlapping tasks on device 0 in the first half.
        for _ in 0..2 {
            tr.records.push(TaskRecord {
                request: 0,
                task: TaskId(0),
                device: DeviceId(0),
                cores: 1,
                start: SimTime::ZERO,
                finish: SimTime::from_secs(5),
            });
        }
        let names = vec!["dev0".to_string(), "dev1".to_string()];
        let g = tr.gantt(&names, 10);
        assert!(g.contains("dev0 |22222.....|"), "gantt:\n{g}");
        // Idle device omitted.
        assert!(!g.contains("dev1"));
    }

    #[test]
    fn gantt_empty_trace() {
        let tr = ExecutionTrace::default();
        assert_eq!(tr.gantt(&[], 20), "(empty trace)\n");
    }

    #[test]
    fn busy_accumulates() {
        let mut tr = ExecutionTrace::default();
        tr.records.push(TaskRecord {
            request: 0,
            task: TaskId(0),
            device: DeviceId(1),
            cores: 2,
            start: SimTime::ZERO,
            finish: SimTime::from_secs(3),
        });
        let busy = tr.busy_core_seconds(3);
        assert_eq!(busy, vec![0.0, 6.0, 0.0]);
    }
}
