//! The simulated continuum executor.
//!
//! Executes placed workflows over virtual time with the effects the
//! analytic estimator ignores: FIFO queueing for device cores and max-min
//! fair link sharing for concurrent transfers. This is the "ground truth"
//! that every experiment reports; placement policies only ever see the
//! contention-free estimates, exactly as a real scheduler would.
//!
//! Transfer model: an item moving `src -> dst` waits the path's propagation
//! latency, then streams its bytes as a flow in the shared
//! [`FlowNetwork`]; co-located consumers receive items instantly; repeated
//! deliveries of the same item to the same node are deduplicated.

use crate::trace::{ExecutionTrace, TaskRecord};
use continuum_model::{CostMeter, EnergyMeter};
use continuum_net::{FlowId, FlowNetwork, NodeId};
use continuum_placement::{Env, Metrics, Placement};
use continuum_sim::{EventId, EventQueue, SimTime};
use continuum_workflow::{Dag, DataId, TaskId};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// One timed, placed workflow instance.
#[derive(Debug, Clone)]
pub struct StreamRequest {
    /// When the request enters the system.
    pub arrival: SimTime,
    /// The workflow.
    pub dag: Dag,
    /// One device per task of `dag`.
    pub placement: Placement,
}

/// Result of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-task and per-request timings.
    pub trace: ExecutionTrace,
    /// Aggregate metrics in the same shape the estimator reports, so
    /// estimated and simulated runs compare directly.
    pub metrics: Metrics,
}

/// Execute a single workflow arriving at time zero.
pub fn simulate(env: &Env, dag: &Dag, placement: &Placement) -> SimOutcome {
    simulate_stream(
        env,
        &[StreamRequest {
            arrival: SimTime::ZERO,
            dag: dag.clone(),
            placement: placement.clone(),
        }],
    )
}

/// Fault-injection configuration for the simulated executor.
///
/// Each task *attempt* fails independently with `fail_prob` at the moment
/// it would complete (the work it burned — cores, energy, dollars — is
/// still charged, as on real hardware). Failed attempts are retried on the
/// same device after `retry_delay`, up to `max_attempts` total tries.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Probability that one attempt fails.
    pub fail_prob: f64,
    /// Delay before a failed task re-enters its device queue.
    pub retry_delay: continuum_sim::SimDuration,
    /// Total attempts allowed per task (>= 1).
    pub max_attempts: u32,
    /// RNG seed for the fault process.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            fail_prob: 0.0,
            retry_delay: continuum_sim::SimDuration::from_millis(100),
            max_attempts: 100,
            seed: 0xFA_17,
        }
    }
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    /// Propagation delay elapsed; begin streaming bytes.
    StartFlow {
        req: usize,
        item: DataId,
        dst: NodeId,
    },
    /// The flow the executor predicted to finish first has finished.
    FlowDone(FlowId),
    TaskFinished {
        req: usize,
        task: TaskId,
    },
    /// A failed task's retry delay elapsed; requeue it.
    RetryTask {
        req: usize,
        task: TaskId,
    },
}

/// Per-flow ECMP salt: stable for a (request, item) pair, never zero so
/// concurrent transfers spread across parallel equal-cost links.
#[inline]
fn xfer_salt(req: usize, item: DataId) -> u64 {
    ((req as u64) << 32) | (item.0 as u64) | (1 << 63)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemState {
    InFlight,
    Present,
}

struct ReqState {
    /// Distinct input items still missing, per task.
    missing: Vec<u32>,
    /// Tasks not yet finished.
    unfinished: usize,
    /// Item presence per destination node.
    items: HashMap<(DataId, NodeId), ItemState>,
    /// Tasks waiting on (item, node).
    waiters: HashMap<(DataId, NodeId), Vec<TaskId>>,
    started: Vec<bool>,
}

/// Execute a set of placed requests over the shared network and fleet.
///
/// # Panics
/// On workload/placement mismatches (wrong assignment length, disconnected
/// topology, unplaced producers) — programming errors, not runtime states.
pub fn simulate_stream(env: &Env, requests: &[StreamRequest]) -> SimOutcome {
    simulate_stream_with_faults(env, requests, None)
}

/// [`simulate_stream`] with optional fault injection.
pub fn simulate_stream_with_faults(
    env: &Env,
    requests: &[StreamRequest],
    faults: Option<&FaultSpec>,
) -> SimOutcome {
    let mut fault_rng = faults.map(|f| {
        assert!(
            (0.0..1.0).contains(&f.fail_prob),
            "fail_prob must be in [0,1)"
        );
        assert!(f.max_attempts >= 1);
        continuum_sim::Rng::new(f.seed)
    });
    // attempts[(req, task)] -> tries so far.
    let mut attempts: HashMap<(usize, u32), u32> = HashMap::new();
    for r in requests {
        assert_eq!(
            r.placement.assignment.len(),
            r.dag.len(),
            "placement does not match dag '{}'",
            r.dag.name
        );
    }

    let n_dev = env.fleet.len();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut network = FlowNetwork::new(&env.topology);
    let mut free_cores: Vec<u32> = env.fleet.devices().iter().map(|d| d.spec.cores).collect();
    let mut device_q: Vec<VecDeque<(usize, TaskId)>> = vec![VecDeque::new(); n_dev];
    let mut flow_dest: HashMap<FlowId, (usize, DataId, NodeId)> = HashMap::new();
    let mut pending_completion: Option<(EventId, FlowId)> = None;

    let mut states: Vec<ReqState> = requests
        .iter()
        .map(|r| {
            let missing = r
                .dag
                .tasks()
                .iter()
                .map(|t| {
                    let mut d: Vec<DataId> = t.inputs.clone();
                    d.sort_unstable();
                    d.dedup();
                    d.len() as u32
                })
                .collect();
            ReqState {
                missing,
                unfinished: r.dag.len(),
                items: HashMap::new(),
                waiters: HashMap::new(),
                started: vec![false; r.dag.len()],
            }
        })
        .collect();

    let mut trace = ExecutionTrace {
        request_arrival: requests.iter().map(|r| r.arrival).collect(),
        request_finish: vec![SimTime::ZERO; requests.len()],
        ..Default::default()
    };
    // (source node, bytes) of every non-local transfer, for egress billing.
    let mut egress_log: Vec<(NodeId, u64)> = Vec::new();
    let mut energy = EnergyMeter::new(&env.fleet);
    let mut cost = CostMeter::new(&env.fleet);

    for (i, r) in requests.iter().enumerate() {
        queue.schedule_at(r.arrival, Ev::Arrival(i));
    }

    // --- helpers as closures are painful with the borrow checker; use a
    // macro-free, explicit work-list style instead. Pending "item became
    // present" notifications and "try dispatch device" requests are drained
    // after each event.
    while let Some((now, ev)) = queue.pop() {
        // Work lists produced by this event.
        let mut made_present: Vec<(usize, DataId, NodeId)> = Vec::new();
        let mut dispatch_devices: Vec<usize> = Vec::new();
        let mut network_changed = false;

        match ev {
            Ev::Arrival(req) => {
                let r = &requests[req];
                // Request external item deliveries and seed ready tasks.
                let mut to_deliver: Vec<(DataId, NodeId, NodeId)> = Vec::new();
                {
                    let st = &mut states[req];
                    for t in r.dag.tasks() {
                        let dst = env.node_of(r.placement.device(t.id));
                        let mut ins = t.inputs.clone();
                        ins.sort_unstable();
                        ins.dedup();
                        for d in ins {
                            if r.dag.producer(d).is_none() {
                                let home = r
                                    .dag
                                    .data(d)
                                    .home
                                    .expect("validated dag: external has home");
                                match st.items.entry((d, dst)) {
                                    Entry::Occupied(_) => {}
                                    Entry::Vacant(v) => {
                                        v.insert(ItemState::InFlight);
                                        to_deliver.push((d, home, dst));
                                    }
                                }
                                st.waiters.entry((d, dst)).or_default().push(t.id);
                            } else {
                                // Produced later; register interest.
                                st.waiters.entry((d, dst)).or_default().push(t.id);
                            }
                        }
                    }
                }
                for (d, src, dst) in to_deliver {
                    if src == dst {
                        made_present.push((req, d, dst));
                    } else {
                        let path = env
                            .path_ecmp(src, dst, xfer_salt(req, d))
                            .expect("disconnected topology");
                        egress_log.push((src, requests[req].dag.data(d).bytes));
                        queue.schedule_at(now + path.latency, Ev::StartFlow { req, item: d, dst });
                    }
                }
                // Tasks with no inputs are immediately ready.
                for t in r.dag.tasks() {
                    if states[req].missing[t.id.0 as usize] == 0 {
                        let dev = r.placement.device(t.id);
                        device_q[dev.0 as usize].push_back((req, t.id));
                        dispatch_devices.push(dev.0 as usize);
                    }
                }
            }
            Ev::StartFlow { req, item, dst } => {
                let r = &requests[req];
                let bytes = r.dag.data(item).bytes;
                // Source: home or producer's node — only needed for the
                // path; recompute from whichever is set.
                let src = match r.dag.producer(item) {
                    None => r.dag.data(item).home.expect("external item has home"),
                    Some(p) => env.node_of(r.placement.device(p)),
                };
                let path = env
                    .path_ecmp(src, dst, xfer_salt(req, item))
                    .expect("disconnected topology");
                match network.start(now, &path, bytes) {
                    Some(fid) => {
                        flow_dest.insert(fid, (req, item, dst));
                        network_changed = true;
                    }
                    None => made_present.push((req, item, dst)),
                }
            }
            Ev::FlowDone(fid) => {
                // Only the currently pending completion is live; stale
                // events were cancelled.
                debug_assert_eq!(pending_completion.map(|(_, f)| f), Some(fid));
                pending_completion = None;
                network.remove(now, fid);
                let (req, item, dst) = flow_dest.remove(&fid).expect("unknown flow");
                made_present.push((req, item, dst));
                network_changed = true;
            }
            Ev::TaskFinished { req, task } => {
                let r = &requests[req];
                let dev = r.placement.device(task);
                let spec = &env.fleet.device(dev).spec;
                let need = r.dag.task(task).occupancy(spec.cores);
                free_cores[dev.0 as usize] += need;

                // Fault injection: this attempt may fail at completion.
                if let (Some(fs), Some(rng)) = (faults, fault_rng.as_mut()) {
                    let tries = attempts.entry((req, task.0)).or_insert(1);
                    if rng.chance(fs.fail_prob) {
                        assert!(
                            *tries < fs.max_attempts,
                            "task {} of request {req} exhausted {} attempts",
                            task,
                            fs.max_attempts
                        );
                        *tries += 1;
                        trace.failed_attempts += 1;
                        states[req].started[task.0 as usize] = false;
                        queue.schedule_at(now + fs.retry_delay, Ev::RetryTask { req, task });
                        // Cores were already freed above; dispatch waiting
                        // work on this device.
                        dispatch_devices.push(dev.0 as usize);
                        // Fall through to the dispatch drain below without
                        // publishing outputs.
                        dispatch_devices.sort_unstable();
                        dispatch_devices.dedup();
                        for di in dispatch_devices.drain(..) {
                            dispatch_queue(
                                env,
                                requests,
                                &mut states,
                                &mut device_q,
                                &mut free_cores,
                                &mut trace,
                                &mut energy,
                                &mut cost,
                                &mut queue,
                                di,
                                now,
                            );
                        }
                        continue;
                    }
                }

                let st = &mut states[req];
                st.unfinished -= 1;
                if st.unfinished == 0 {
                    trace.request_finish[req] = now;
                }
                // Publish outputs to their consumers.
                let my_node = env.node_of(dev);
                let mut to_deliver: Vec<(DataId, NodeId)> = Vec::new();
                for &out in &r.dag.task(task).outputs {
                    // All nodes that registered interest in this item.
                    let dests: Vec<NodeId> = st
                        .waiters
                        .keys()
                        .filter(|(d, _)| *d == out)
                        .map(|&(_, n)| n)
                        .collect();
                    for dst in dests {
                        match st.items.entry((out, dst)) {
                            Entry::Occupied(_) => {}
                            Entry::Vacant(v) => {
                                v.insert(ItemState::InFlight);
                                to_deliver.push((out, dst));
                            }
                        }
                    }
                }
                for (d, dst) in to_deliver {
                    if dst == my_node {
                        made_present.push((req, d, dst));
                    } else {
                        let path = env
                            .path_ecmp(my_node, dst, xfer_salt(req, d))
                            .expect("disconnected topology");
                        egress_log.push((my_node, r.dag.data(d).bytes));
                        queue.schedule_at(now + path.latency, Ev::StartFlow { req, item: d, dst });
                    }
                }
            }
            Ev::RetryTask { req, task } => {
                let dev = requests[req].placement.device(task);
                device_q[dev.0 as usize].push_back((req, task));
                dispatch_devices.push(dev.0 as usize);
            }
        }

        // Drain presence notifications -> may ready tasks.
        for (req, item, node) in made_present {
            let r = &requests[req];
            let st = &mut states[req];
            st.items.insert((item, node), ItemState::Present);
            if let Some(waiters) = st.waiters.remove(&(item, node)) {
                for t in waiters {
                    // A waiter only counts if this task actually runs here.
                    let dev = r.placement.device(t);
                    if env.node_of(dev) != node {
                        continue;
                    }
                    let m = &mut st.missing[t.0 as usize];
                    debug_assert!(*m > 0);
                    *m -= 1;
                    if *m == 0 {
                        device_q[dev.0 as usize].push_back((req, t));
                        dispatch_devices.push(dev.0 as usize);
                    }
                }
            }
        }

        // Dispatch: first-fit scan of each touched device queue, plus any
        // device that just freed cores.
        if let Ev::TaskFinished { req, task } = &ev {
            let dev = requests[*req].placement.device(*task);
            dispatch_devices.push(dev.0 as usize);
        }
        dispatch_devices.sort_unstable();
        dispatch_devices.dedup();
        for di in dispatch_devices {
            dispatch_queue(
                env,
                requests,
                &mut states,
                &mut device_q,
                &mut free_cores,
                &mut trace,
                &mut energy,
                &mut cost,
                &mut queue,
                di,
                now,
            );
        }

        // Re-arm the single pending flow-completion event.
        if network_changed {
            if let Some((eid, _)) = pending_completion.take() {
                queue.cancel(eid);
            }
            if let Some((t, fid)) = network.next_completion() {
                let eid = queue.schedule_at(t.max(now), Ev::FlowDone(fid));
                pending_completion = Some((eid, fid));
            }
        }
    }

    for st in &states {
        assert_eq!(st.unfinished, 0, "deadlock: tasks never became ready");
    }

    // Aggregate metrics.
    let mut bytes_moved = 0u64;
    for &(src, bytes) in &egress_log {
        bytes_moved += bytes;
        if let Some(&dev) = env.fleet.at_node(src).first() {
            cost.record_egress(&env.fleet, dev, bytes);
        }
    }
    trace.bytes_moved = bytes_moved;
    trace.transfers = egress_log.len() as u64;
    let makespan = trace.makespan();
    let metrics = Metrics {
        makespan_s: makespan.as_secs_f64(),
        energy_j: energy.used_devices_joules(&env.fleet, makespan),
        cost_usd: cost.total_usd(),
        bytes_moved,
    };
    SimOutcome { trace, metrics }
}

/// First-fit scan of one device's ready queue: start every queued task
/// that fits in the currently free cores.
#[allow(clippy::too_many_arguments)]
fn dispatch_queue(
    env: &Env,
    requests: &[StreamRequest],
    states: &mut [ReqState],
    device_q: &mut [VecDeque<(usize, TaskId)>],
    free_cores: &mut [u32],
    trace: &mut ExecutionTrace,
    energy: &mut EnergyMeter,
    cost: &mut CostMeter,
    queue: &mut EventQueue<Ev>,
    di: usize,
    now: SimTime,
) {
    let spec = &env.fleet.devices()[di].spec;
    let mut i = 0;
    while i < device_q[di].len() {
        let (req, t) = device_q[di][i];
        let task = requests[req].dag.task(t);
        let need = task.occupancy(spec.cores);
        if need <= free_cores[di] && !states[req].started[t.0 as usize] {
            device_q[di].remove(i);
            free_cores[di] -= need;
            states[req].started[t.0 as usize] = true;
            let dur = spec.compute_time_parallel(task.work_flops, task.parallelism);
            let dev_id = requests[req].placement.device(t);
            trace.records.push(TaskRecord {
                request: req,
                task: t,
                device: dev_id,
                cores: need,
                start: now,
                finish: now + dur,
            });
            energy.record_busy(&env.fleet, dev_id, need, dur);
            cost.record_occupancy(&env.fleet, dev_id, need, dur);
            queue.schedule_at(now + dur, Ev::TaskFinished { req, task: t });
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_model::{standard_fleet, DeviceClass, Fleet};
    use continuum_net::{continuum, ContinuumSpec, Tier, Topology};
    use continuum_placement::{evaluate, HeftPlacer, Placer};
    use continuum_sim::SimDuration;

    /// Two-node world: edge (slow) and cloud (fast) joined by one link.
    fn two_node(bandwidth: f64) -> (Env, NodeId, NodeId) {
        let mut topo = Topology::new();
        let e = topo.add_node("edge", Tier::Edge);
        let c = topo.add_node("cloud", Tier::Cloud);
        topo.add_link(e, c, SimDuration::from_millis(10), bandwidth);
        let mut fleet = Fleet::new();
        fleet.add_class(e, DeviceClass::EdgeGateway);
        fleet.add_class(c, DeviceClass::CloudVm);
        (Env::new(topo, fleet), e, c)
    }

    fn local_task_dag(node: NodeId, work: f64) -> Dag {
        let mut g = Dag::new("one");
        let input = g.add_input("in", 1000, node);
        let out = g.add_item("out", 10);
        g.add_task("t", work, vec![input], vec![out]);
        g
    }

    #[test]
    fn single_local_task_time_matches_spec() {
        let (env, e, _) = two_node(1e9);
        let dag = local_task_dag(e, 1.2e10);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0)],
        };
        let out = simulate(&env, &dag, &placement);
        let spec = &env.fleet.device(continuum_model::DeviceId(0)).spec;
        let expected = spec.compute_time(1.2e10).as_secs_f64();
        assert!((out.metrics.makespan_s - expected).abs() < 1e-6);
        assert_eq!(out.trace.bytes_moved, 0);
    }

    #[test]
    fn remote_task_pays_latency_and_bandwidth() {
        let (env, e, _c) = two_node(1e6);
        let dag = local_task_dag(e, 6e11);
        // Run on the cloud device (index 1): the 1000-byte input must move.
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1)],
        };
        let out = simulate(&env, &dag, &placement);
        let spec = &env.fleet.device(continuum_model::DeviceId(1)).spec;
        let expected = 0.010 + 1000.0 / 1e6 + spec.compute_time(6e11).as_secs_f64();
        assert!(
            (out.metrics.makespan_s - expected).abs() < 1e-3,
            "got {} want {}",
            out.metrics.makespan_s,
            expected
        );
        assert_eq!(out.trace.bytes_moved, 1000);
        assert_eq!(out.trace.transfers, 1);
    }

    #[test]
    fn queueing_serializes_beyond_core_count() {
        let (env, e, _) = two_node(1e9);
        // 9 independent 1-core tasks on the 4-core edge gateway.
        let mut g = Dag::new("fanout");
        let input = g.add_input("in", 10, e);
        for i in 0..9 {
            let out = g.add_item(format!("o{i}"), 1);
            g.add_task(format!("t{i}"), 3e9, vec![input], vec![out]);
        }
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0); 9],
        };
        let out = simulate(&env, &g, &placement);
        let one = env
            .fleet
            .device(continuum_model::DeviceId(0))
            .spec
            .compute_time(3e9);
        // 9 tasks on 4 cores -> 3 waves.
        let expected = one.as_secs_f64() * 3.0;
        assert!(
            (out.metrics.makespan_s - expected).abs() < 1e-6,
            "got {} want {}",
            out.metrics.makespan_s,
            expected
        );
    }

    #[test]
    fn concurrent_transfers_share_the_link() {
        let (env, e, _c) = two_node(1e6);
        // Two tasks in the cloud, each pulling a distinct 1 MB input from
        // the edge: fair sharing doubles the serialization time.
        let mut g = Dag::new("contend");
        let i1 = g.add_input("i1", 1_000_000, e);
        let i2 = g.add_input("i2", 1_000_000, e);
        let o1 = g.add_item("o1", 1);
        let o2 = g.add_item("o2", 1);
        g.add_task("t1", 1e6, vec![i1], vec![o1]);
        g.add_task("t2", 1e6, vec![i2], vec![o2]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1), continuum_model::DeviceId(1)],
        };
        let out = simulate(&env, &g, &placement);
        // Both transfers share 1e6 B/s: each effectively 0.5e6 B/s -> 2s,
        // plus 10ms latency, plus ~1.7ms compute.
        assert!(
            out.metrics.makespan_s > 2.0,
            "contention not modeled: {}",
            out.metrics.makespan_s
        );
        assert!(out.metrics.makespan_s < 2.1);
    }

    #[test]
    fn same_item_to_same_node_transfers_once() {
        let (env, e, _c) = two_node(1e6);
        let mut g = Dag::new("dedupe");
        let input = g.add_input("in", 1_000_000, e);
        let o1 = g.add_item("o1", 1);
        let o2 = g.add_item("o2", 1);
        g.add_task("t1", 1e6, vec![input], vec![o1]);
        g.add_task("t2", 1e6, vec![input], vec![o2]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(1), continuum_model::DeviceId(1)],
        };
        let out = simulate(&env, &g, &placement);
        assert_eq!(out.trace.transfers, 1);
        assert_eq!(out.trace.bytes_moved, 1_000_000);
    }

    #[test]
    fn dependencies_respected_on_real_workflow() {
        let built = continuum(&ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = continuum_sim::Rng::new(19);
        let dag = continuum_workflow::layered_random(
            &mut rng,
            &continuum_workflow::LayeredSpec {
                tasks: 80,
                ..Default::default()
            },
        );
        let placement = HeftPlacer::default().place(&env, &dag);
        let out = simulate(&env, &dag, &placement);
        assert!(out.trace.respects_dependencies(&[&dag]));
        assert_eq!(out.trace.records.len(), dag.len());
    }

    #[test]
    fn simulation_close_to_estimate_without_contention() {
        // A chain has no concurrent transfers or queueing, so the simulated
        // makespan must match the analytic estimate almost exactly.
        let (env, e, _) = two_node(1e8);
        let mut g = Dag::new("chain");
        let mut prev = g.add_input("in", 1 << 20, e);
        for i in 0..5 {
            let out = g.add_item(format!("d{i}"), 1 << 20);
            g.add_task(format!("t{i}"), 1e10, vec![prev], vec![out]);
            prev = out;
        }
        let placement = HeftPlacer::default().place(&env, &g);
        let (sched, est) = evaluate(&env, &g, &placement);
        let sim = simulate(&env, &g, &placement);
        assert!(sched.respects_dependencies(&g));
        let rel = (sim.metrics.makespan_s - est.makespan_s).abs() / est.makespan_s;
        assert!(
            rel < 0.01,
            "sim {} vs est {}",
            sim.metrics.makespan_s,
            est.makespan_s
        );
    }

    #[test]
    fn stream_requests_tracked_independently() {
        let (env, e, _) = two_node(1e9);
        let mk = |arr: u64| StreamRequest {
            arrival: SimTime::from_secs(arr),
            dag: local_task_dag(e, 1.2e10),
            placement: Placement {
                assignment: vec![continuum_model::DeviceId(0)],
            },
        };
        let out = simulate_stream(&env, &[mk(0), mk(10)]);
        let lats = out.trace.latencies_s();
        assert_eq!(lats.len(), 2);
        // Both requests see an idle device: equal latency.
        assert!((lats[0] - lats[1]).abs() < 1e-9);
        assert!(out.trace.request_finish[1] > SimTime::from_secs(10));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use continuum_model::{standard_fleet, DeviceClass, Fleet};
    use continuum_net::{Tier, Topology};
    use continuum_placement::{HeftPlacer, Placer};
    use continuum_sim::SimDuration;

    fn world() -> (Env, Dag, Placement) {
        let built = continuum_net::continuum(&continuum_net::ContinuumSpec::default());
        let env = Env::new(built.topology.clone(), standard_fleet(&built));
        let mut rng = continuum_sim::Rng::new(99);
        let dag = continuum_workflow::layered_random(
            &mut rng,
            &continuum_workflow::LayeredSpec {
                tasks: 50,
                ..Default::default()
            },
        );
        let placement = HeftPlacer::default().place(&env, &dag);
        (env, dag, placement)
    }

    fn run_with(env: &Env, dag: &Dag, placement: &Placement, prob: f64) -> SimOutcome {
        let reqs = [StreamRequest {
            arrival: SimTime::ZERO,
            dag: dag.clone(),
            placement: placement.clone(),
        }];
        let faults = FaultSpec {
            fail_prob: prob,
            ..Default::default()
        };
        simulate_stream_with_faults(env, &reqs, Some(&faults))
    }

    #[test]
    fn zero_prob_matches_fault_free() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        let zero = run_with(&env, &dag, &placement, 0.0);
        assert_eq!(zero.trace.failed_attempts, 0);
        assert_eq!(clean.metrics.makespan_s, zero.metrics.makespan_s);
    }

    #[test]
    fn failures_inflate_makespan_and_are_counted() {
        let (env, dag, placement) = world();
        let clean = simulate(&env, &dag, &placement);
        let faulty = run_with(&env, &dag, &placement, 0.25);
        assert!(faulty.trace.failed_attempts > 0);
        assert!(
            faulty.metrics.makespan_s > clean.metrics.makespan_s,
            "faulty {} !> clean {}",
            faulty.metrics.makespan_s,
            clean.metrics.makespan_s
        );
        // Retried work burns more energy.
        assert!(faulty.metrics.energy_j > clean.metrics.energy_j);
        // All tasks still complete exactly once (final records).
        assert!(faulty.trace.respects_dependencies(&[&dag]));
        assert_eq!(
            faulty.trace.records.len(),
            dag.len() + faulty.trace.failed_attempts as usize
        );
    }

    #[test]
    fn faults_deterministic_for_seed() {
        let (env, dag, placement) = world();
        let a = run_with(&env, &dag, &placement, 0.2);
        let b = run_with(&env, &dag, &placement, 0.2);
        assert_eq!(a.trace.failed_attempts, b.trace.failed_attempts);
        assert_eq!(a.metrics.makespan_s, b.metrics.makespan_s);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn attempt_limit_enforced() {
        // Single-task DAG on one device with certain-ish failure and a
        // limit of 2 attempts.
        let mut topo = Topology::new();
        let n = topo.add_node("x", Tier::Edge);
        let mut fleet = Fleet::new();
        fleet.add_class(n, DeviceClass::EdgeGateway);
        let env = Env::new(topo, fleet);
        let mut dag = Dag::new("one");
        let input = dag.add_input("in", 1, n);
        let out = dag.add_item("out", 1);
        dag.add_task("t", 1e9, vec![input], vec![out]);
        let placement = Placement {
            assignment: vec![continuum_model::DeviceId(0)],
        };
        let reqs = [StreamRequest {
            arrival: SimTime::ZERO,
            dag,
            placement,
        }];
        let faults = FaultSpec {
            fail_prob: 0.999999,
            retry_delay: SimDuration::from_millis(1),
            max_attempts: 2,
            seed: 1,
        };
        simulate_stream_with_faults(&env, &reqs, Some(&faults));
    }
}
